//! Sweep failover under `kill -9`: a sharded fleet runs the DVFS
//! autotuner cells, loses one daemon mid-sweep, replays the dead
//! shard's WAL into a replacement, and the energy-delay Pareto
//! frontier must come out **bitwise-equal** to an uninterrupted sweep
//! — crash recovery may cost time, never results.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use hpceval::fleet::sweep::{cell_to_job, result_to_cell};
use hpceval::fleet::{run_sweep, Fleet, FleetConfig, Registry, Router, SweepConfig};
use hpceval::tune::{kernel_frontiers, plan_sweep, CellResult, KernelFrontier, SweepOptions};

const SHARDS: u64 = 2;

/// A `hpceval fleet serve` subprocess on an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
    restored: usize,
}

impl Daemon {
    fn spawn(wal: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hpceval"))
            .args(["fleet", "serve", "--wal"])
            .arg(wal)
            .args(["--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fleet serve");
        // Banner: "fleet daemon listening on ADDR (N job(s) restored from WAL)"
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon banner");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        let restored = line
            .split('(')
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"));
        Daemon { child, addr, restored }
    }

    /// SIGKILL — no shutdown handshake, no WAL flush courtesy.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Block until the daemon exits on its own (post-shutdown), so the
    /// WAL is quiescent before anyone replays it.
    fn wait(&mut self) {
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The sweep under test: one server, three kernels with different
/// process constraints, the full three-state DVFS ladder.
fn sweep_cells() -> Vec<hpceval::tune::TuneCell> {
    let opts = SweepOptions {
        servers: vec!["Xeon-E5462".to_string()],
        kernels: vec!["ep".to_string(), "stream".to_string(), "mg".to_string()],
        ..SweepOptions::default()
    };
    plan_sweep(&opts).expect("plan")
}

fn tmp_wal(tag: &str, shard: u64) -> PathBuf {
    std::env::temp_dir().join(format!("hpceval-tunekill-{}-{tag}-{shard}.wal", std::process::id()))
}

/// The uninterrupted reference sweep, via the in-process driver.
fn baseline_frontiers() -> Vec<KernelFrontier> {
    let cells = sweep_cells();
    let results = run_sweep(&cells, &SweepConfig::default()).expect("clean sweep");
    kernel_frontiers(&results)
}

/// Submit the cells through a router over subprocess shard daemons,
/// kill one shard mid-sweep, replay its WAL into a replacement, drain,
/// and read every cell's measurement back out of the WALs.
fn kill9_frontiers() -> Vec<KernelFrontier> {
    let cells = sweep_cells();
    let wals: Vec<_> = (0..SHARDS).map(|s| tmp_wal("kill", s)).collect();
    for w in &wals {
        let _ = std::fs::remove_file(w);
    }
    let mut shards: Vec<_> = wals.iter().map(|w| Daemon::spawn(w)).collect();
    let addrs: Vec<_> = shards.iter().map(|d| d.addr.clone()).collect();
    let router = Router::connect(&addrs).unwrap();
    // One submit per cell keeps the router's key sequence — and thus
    // the positional id↔cell mapping — deterministic.
    let mut ids = Vec::with_capacity(cells.len());
    for cell in &cells {
        ids.push(router.submit(vec![cell_to_job(cell)]).expect("submit")[0]);
    }

    // Give the shards a moment to start crunching, then murder shard 0
    // with no warning and replay its WAL into a replacement daemon at
    // the same shard position (global ids bake in the shard index).
    std::thread::sleep(Duration::from_millis(15));
    shards[0].kill9();
    drop(router);
    let mut replacement = Daemon::spawn(&wals[0]);
    assert!(
        replacement.restored > 0,
        "replacement must restore the dead shard's jobs from its WAL"
    );
    let router = Router::connect(&[replacement.addr.clone(), shards[1].addr.clone()]).unwrap();
    let jobs = router.drain().expect("drain");
    assert_eq!(jobs.len(), cells.len(), "router must see every cell");
    for j in &jobs {
        assert_eq!(j.state, "Done", "job {} must finish clean, got {}", j.id, j.state);
    }
    router.shutdown_shards().expect("shutdown");
    replacement.wait();
    shards[1].wait();

    // The wire deliberately omits per-cell outputs; read them the way
    // the sweep driver does — replay the (now quiescent) WALs and pull
    // each job's full result in-process.
    let fleets: Vec<Arc<Fleet>> = wals
        .iter()
        .map(|w| Fleet::open(FleetConfig::default(), Registry::with_presets(), w).expect("replay"))
        .collect();
    let results: Vec<CellResult> = cells
        .iter()
        .zip(&ids)
        .map(|(cell, &global)| {
            // Invert the router's global-id bijection for SHARDS shards.
            let (shard, local) = ((global % SHARDS) as usize, global / SHARDS);
            let result = fleets[shard]
                .result_of(local)
                .unwrap_or_else(|| panic!("job {global} has no result after replay"));
            result_to_cell(cell, &result)
                .unwrap_or_else(|| panic!("job {global} lost its cell measurement"))
        })
        .collect();
    for w in &wals {
        let _ = std::fs::remove_file(w);
    }
    kernel_frontiers(&results)
}

#[test]
fn pareto_frontier_survives_kill9_of_a_shard_bitwise() {
    let baseline = baseline_frontiers();
    assert!(!baseline.is_empty(), "sweep cells must produce frontiers");
    let recovered = kill9_frontiers();
    assert_eq!(
        recovered, baseline,
        "WAL replay into a replacement shard must reproduce the frontier bit for bit"
    );
}
