//! Reproduction of the §V-C3 ranking comparison — including the paper's
//! internal arithmetic inconsistency (experiment R1 of EXPERIMENTS.md).

use hpceval::core::rankings::compare;
use hpceval::machine::presets;

#[test]
fn green500_ranking_is_4870_e5462_8347() {
    let cmp = compare(&presets::all_servers());
    assert_eq!(cmp.ranking_green500(), vec!["Xeon-4870", "Xeon-E5462", "Opteron-8347"]);
}

#[test]
fn specpower_ranking_is_e5462_4870_8347() {
    let cmp = compare(&presets::all_servers());
    assert_eq!(cmp.ranking_specpower(), vec!["Xeon-E5462", "Xeon-4870", "Opteron-8347"]);
}

#[test]
fn paper_printed_bottom_rows_reproduce() {
    let cmp = compare(&presets::all_servers());
    let get = |n: &str| cmp.scores.iter().find(|s| s.server == n).expect("server present");
    // Table IV prints the *sum* (0.639); Tables V/VI print the mean.
    assert!((get("Xeon-E5462").five_state_sum_ppw - 0.639).abs() < 0.06);
    assert!((get("Opteron-8347").five_state_mean_ppw - 0.0251).abs() < 0.004);
    assert!((get("Xeon-4870").five_state_mean_ppw - 0.0975).abs() < 0.010);
}

#[test]
fn consistent_arithmetic_reverses_the_papers_headline_ranking() {
    // Reproduction finding: the paper ranks its own method
    // XeonE5462 > Xeon4870 > Opteron8347 only because Table IV's score
    // is a sum while the others are means. Under the stated method
    // (mean PPW), the five-state ranking matches the Green500 order.
    let cmp = compare(&presets::all_servers());
    assert_eq!(cmp.ranking_ours(), cmp.ranking_green500());
    let e = cmp.scores.iter().find(|s| s.server == "Xeon-E5462").expect("present");
    let x = cmp.scores.iter().find(|s| s.server == "Xeon-4870").expect("present");
    assert!(x.five_state_mean_ppw > e.five_state_mean_ppw);
    // …while the *printed* numbers (sum for the E5462) would put the
    // E5462 first, as the paper concludes.
    assert!(e.five_state_sum_ppw > x.five_state_mean_ppw);
}

#[test]
fn opteron_finishes_last_everywhere() {
    let cmp = compare(&presets::all_servers());
    for ranking in [cmp.ranking_ours(), cmp.ranking_green500(), cmp.ranking_specpower()] {
        assert_eq!(ranking.last().map(String::as_str), Some("Opteron-8347"));
    }
}

#[test]
fn specpower_scores_scale_with_paper() {
    let cmp = compare(&presets::all_servers());
    let get =
        |n: &str| cmp.scores.iter().find(|s| s.server == n).expect("present").specpower_ops_per_w;
    assert!((get("Xeon-E5462") - 247.0).abs() < 35.0);
    assert!((get("Xeon-4870") - 139.0).abs() < 25.0);
    assert!((get("Opteron-8347") - 22.2).abs() < 8.0);
}
