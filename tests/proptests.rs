//! Cross-crate property-based tests (proptest) on the invariants the
//! reproduction rests on.

use proptest::prelude::*;

use hpceval::kernels::hpl::lu;
use hpceval::kernels::rng::NpbRng;
use hpceval::machine::presets;
use hpceval::machine::roofline::PerfModel;
use hpceval::machine::spec::{DvfsCurve, DvfsState};
use hpceval::machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval::power::analysis::{ProgramWindow, TraceAnalysis};
use hpceval::power::calibration::PowerCalibration;
use hpceval::power::meter::{PowerTrace, Wt210};
use hpceval::power::model::PowerModel;
use hpceval::regression::matrix::Matrix;
use hpceval::regression::stats::r_squared;
use hpceval::tune::{
    dominates, kernel_frontiers, pareto_frontier, CellMeasure, CellResult, TuneCell,
};

fn arb_signature() -> impl Strategy<Value = WorkloadSignature> {
    (
        1e9..1e15f64, // work_ops
        0.0..1e13f64, // dram_bytes
        1e6..5e9f64,  // footprint
        0.0..0.5f64,  // comm fraction
        0.05..1.0f64, // intensity
        0.0..1.0f64,  // vector fraction
    )
        .prop_map(|(ops, bytes, footprint, comm, intensity, vf)| WorkloadSignature {
            name: "arb".to_string(),
            reported_flops: ops,
            work_ops: ops,
            dram_bytes: bytes,
            footprint_bytes: footprint,
            footprint_per_proc_bytes: 0.0,
            footprint_scratch_bytes: 0.0,
            comm_fraction: comm,
            cpu_intensity: intensity,
            kind: ComputeKind::Mixed(vf),
            locality: LocalityProfile::streaming(),
        })
}

/// Sweep-cell results with arbitrary positive (energy, time) points —
/// the shape `tune`'s exact Pareto filter must stay correct on. The
/// coordinates come off a coarse integer grid so exact ties (distinct
/// cells with identical measures) arise often, exercising the
/// both-survive rule; a few kernel ids force the grouping path.
fn arb_cell_results() -> impl Strategy<Value = Vec<CellResult>> {
    let point = (0usize..3, 0u32..6, 1u32..=16, 1u64..500, 1u64..200);
    prop::collection::vec(point, 1..48).prop_map(|points| {
        points
            .into_iter()
            .map(|(k, state, procs, e, t)| {
                let energy_j = e as f64 * 0.5;
                let time_s = t as f64 * 0.25;
                let gflops = 100.0 / time_s;
                CellResult {
                    cell: TuneCell {
                        server: "Xeon-E5462".to_string(),
                        kernel: ["ep", "cg", "dgemm"][k].to_string(),
                        freq_state: state,
                        processes: procs,
                        seed: 1,
                    },
                    measure: CellMeasure {
                        freq_mhz: 2000 + 400 * state,
                        gflops,
                        time_s,
                        power_w: energy_j / time_s,
                        energy_j,
                        edp: energy_j * time_s,
                        ppw: gflops / (energy_j / time_s),
                    },
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Running anything costs at least idle power, at most a sane cap.
    #[test]
    fn power_bounded_below_by_idle(sig in arb_signature(), p in 1u32..=40) {
        for spec in presets::all_servers() {
            let p = p.min(spec.total_cores());
            let perf = PerfModel::new(spec.clone());
            let power = PowerModel::new(spec.clone());
            let est = perf.execute(&sig, p);
            let w = power.power_w(&sig, &est);
            prop_assert!(w >= power.idle_w(), "{}: {w} < idle", spec.name);
            prop_assert!(w < power.idle_w() + 1200.0, "{}: {w} absurd", spec.name);
        }
    }

    /// More processes never slow a workload down beyond the modeled
    /// communication overhead (once bandwidth saturates, extra ranks
    /// only add coordination cost — bounded by the comm fraction), and
    /// no parallel run is slower than the serial one.
    #[test]
    fn roofline_time_nearly_monotone_in_processes(sig in arb_signature()) {
        let spec = presets::xeon_4870();
        let perf = PerfModel::new(spec.clone());
        let serial = perf.execute(&sig, 1).time_s;
        let mut last = f64::INFINITY;
        for p in 1..=spec.total_cores() {
            let est = perf.execute(&sig, p);
            prop_assert!(
                est.time_s <= serial * 1.0000001,
                "p={p}: {} slower than serial {serial}",
                est.time_s
            );
            prop_assert!(
                est.time_s <= last * (1.0 + sig.comm_fraction),
                "p={p}: {} jumped from {last}",
                est.time_s
            );
            last = est.time_s;
        }
    }

    /// The LCG jump-ahead equals sequential draws for arbitrary offsets.
    #[test]
    fn rng_jump_equals_sequential(k in 0u64..5000, seed in 1u64..(1 << 40)) {
        let mut seq = NpbRng::new(seed);
        for _ in 0..k {
            seq.next_f64();
        }
        let jumped = NpbRng::new(seed).at_offset(k);
        prop_assert_eq!(seq.state(), jumped.state());
    }

    /// LU solve round-trips A·x = b for random diagonally dominant
    /// systems at any block size.
    #[test]
    fn lu_solves_dominant_systems(n in 2usize..24, nb in 1usize..8, seed in 0u64..1000) {
        let mut a = lu::Matrix::random(n, seed);
        // Lift the diagonal to guarantee nonsingularity.
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        let mut rng = NpbRng::new(seed + 1);
        let x_true: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let b = a.matvec(&x_true);
        let f = lu::factor(a, nb, 1).expect("diagonally dominant");
        let x = f.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    /// CSV serialization round-trips arbitrary traces (within the
    /// printed precision).
    #[test]
    fn trace_csv_round_trip(samples in prop::collection::vec((0.0..1e5f64, 0.0..2000.0f64), 1..100)) {
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        sorted.dedup_by(|a, b| a.0 == b.0);
        let mut t = PowerTrace::new();
        for (ts, w) in &sorted {
            t.push(*ts, *w);
        }
        let back = PowerTrace::from_csv(&t.to_csv()).expect("own CSV is valid");
        prop_assert_eq!(back.len(), t.len());
        for (a, b) in t.samples.iter().zip(&back.samples) {
            prop_assert!((a.t_s - b.t_s).abs() <= 5e-4 + 1e-9);
            prop_assert!((a.watts - b.watts).abs() <= 5e-5 + 1e-9);
        }
    }

    /// Trimming never moves the mean outside the sample min/max.
    #[test]
    fn trimmed_mean_is_bounded(level in 10.0..1000.0f64, noise in 0.0..10.0f64, seed in 0u64..500) {
        let mut m = Wt210::new(seed).with_noise(noise);
        let trace = m.record(0.0, 120.0, move |_| level);
        let lo = trace.samples.iter().map(|s| s.watts).fold(f64::MAX, f64::min);
        let hi = trace.samples.iter().map(|s| s.watts).fold(f64::MIN, f64::max);
        let st = TraceAnalysis::new(trace)
            .analyze(ProgramWindow { start_s: 0.0, end_s: 121.0 })
            .expect("trace populated");
        prop_assert!(st.mean_w >= lo - 1e-9 && st.mean_w <= hi + 1e-9);
    }

    /// OLS recovers planted coefficients exactly on noise-free data.
    #[test]
    fn ols_recovers_planted_model(c0 in -5.0..5.0f64, c1 in -5.0..5.0f64, icpt in -10.0..10.0f64) {
        let n = 40;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = ((i * 7 + 3) % 13) as f64 - 6.0;
            let b = ((i * 5 + 1) % 11) as f64 - 5.0;
            data.extend([a, b]);
            y.push(c0 * a + c1 * b + icpt);
        }
        let x = Matrix::from_rows(n, 2, data);
        let (model, summary) =
            hpceval::regression::ols::fit(&x, &y, &[0, 1]).expect("full rank");
        prop_assert!((model.coefficients[0] - c0).abs() < 1e-8);
        prop_assert!((model.coefficients[1] - c1).abs() < 1e-8);
        prop_assert!((model.intercept - icpt).abs() < 1e-7);
        prop_assert!(summary.r_square > 1.0 - 1e-9 || (c0.abs() + c1.abs()) < 1e-9);
    }

    /// R² of a prediction equal to the measurement is 1; shuffling
    /// degrades it.
    #[test]
    fn r_squared_identity(values in prop::collection::vec(-100.0..100.0f64, 3..50)) {
        // Need nonzero variance.
        let spread = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1e-6);
        prop_assert!((r_squared(&values, &values) - 1.0).abs() < 1e-12);
    }

    /// Cache replay orders synthetic access patterns the way the
    /// analytic locality presets claim: a reused tile (dense-blocked)
    /// keeps a higher L1 hit rate than a sequential sweep (streaming),
    /// which beats uniform-random pointer chasing — for any footprint
    /// well past L1 and any pass count.
    #[test]
    fn replayed_l1_ordering_matches_the_locality_presets(
        footprint_kib in 256usize..1024,
        passes in 2u32..4,
        seed in 0u64..1_000,
    ) {
        use hpceval::trace::{replay, ChunkTrace, Region, ReplayOptions, Trace, TraceEvent, TraceMode};

        let synthetic = |events: Vec<TraceEvent>| Trace {
            region: Region::Stream,
            mode: TraceMode::Full,
            seed: 0,
            sample_one_in: 1,
            chunks: vec![ChunkTrace { id: 0, events }],
            dropped: 0,
        };
        let spec = presets::xeon_4870(); // 32 KiB L1
        let doubles = (footprint_kib << 10) / 8;

        // Dense-blocked: one 16 KiB tile revisited every pass.
        let blocked: Vec<TraceEvent> =
            (0..passes).map(|_| TraceEvent::read(0, 8, (16 << 10) / 8)).collect();
        // Streaming: sequential unit-stride sweeps of the footprint.
        let streaming: Vec<TraceEvent> =
            (0..passes).map(|_| TraceEvent::read(0, 8, doubles as u32)).collect();
        // Random: as many single accesses, scattered over the footprint.
        let mut state = seed;
        let random: Vec<TraceEvent> = (0..u64::from(passes) * doubles as u64)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
                TraceEvent::read((state >> 16) % ((footprint_kib as u64) << 10), 0, 1)
            })
            .collect();

        let l1 = |events| {
            replay(&synthetic(events), &spec, ReplayOptions::default()).l1_hit_ratio()
        };
        let (b, s, r) = (l1(blocked), l1(streaming), l1(random));
        prop_assert!(b > s + 0.02, "blocked {b} must beat streaming {s}");
        prop_assert!(s > r + 0.1, "streaming {s} must beat random {r}");
    }
}

proptest! {
    // Each case runs real kernel captures; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The analytic locality presets and the trace-replay measurements
    /// agree on DGEMM and STREAM within a documented tolerance — for
    /// any capture seed and sampling rate. The bounds are deliberately
    /// loose (the presets are hand-tuned splits, the replay measures
    /// line-granular spatial locality), but tight enough that a replay
    /// regression that flips a kernel's character (cache-resident vs
    /// streaming) trips them.
    #[test]
    fn measured_and_analytic_localities_agree_for_dgemm_and_stream(
        seed in 0u64..(1 << 48),
        sample_one_in in 1u32..4,
    ) {
        use hpceval::core::trace_experiment::{analytic_locality, capture_kernel, replay_options};
        use hpceval::trace::{replay, CaptureConfig, Region, TraceMode};

        let spec = presets::xeon_4870();
        let config = CaptureConfig {
            mode: TraceMode::Sampled,
            seed,
            sample_one_in,
            ..CaptureConfig::default()
        };
        let mut l1 = [0.0f64; 2];
        for (i, region) in [Region::Dgemm, Region::Stream].into_iter().enumerate() {
            let trace = capture_kernel(region, config).expect("sampled capture runs");
            let counters = replay(&trace, &spec, replay_options(region));
            let analytic = analytic_locality(region);
            // An unlucky sampling subset can be empty; the profile then
            // falls back to the analytic preset, which agrees trivially.
            let measured = counters.locality_profile(&analytic);
            prop_assert!(
                (measured.l1_hit - analytic.l1_hit).abs() <= 0.30,
                "{}: measured l1 {} vs analytic {}",
                region.name(), measured.l1_hit, analytic.l1_hit
            );
            prop_assert!(
                (measured.mem - analytic.mem).abs() <= 0.25,
                "{}: measured mem {} vs analytic {}",
                region.name(), measured.mem, analytic.mem
            );
            l1[i] = measured.l1_hit;
        }
        // Whatever the subset, blocked DGEMM out-hits streaming STREAM.
        prop_assert!(l1[0] > l1[1], "dgemm l1 {} must beat stream l1 {}", l1[0], l1[1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No frontier point is dominated by ANY input point — frontier
    /// membership is exact, not a sort-based approximation.
    #[test]
    fn frontier_points_are_never_dominated(cells in arb_cell_results()) {
        let f = pareto_frontier(&cells);
        prop_assert!(!f.is_empty(), "non-empty input must yield a frontier");
        for kept in &f {
            for c in &cells {
                prop_assert!(
                    !dominates(&c.measure, &kept.measure),
                    "frontier point {:?} dominated by {:?}",
                    kept.cell,
                    c.cell
                );
            }
        }
    }

    /// Every dropped point is dominated by some *frontier* point:
    /// dominance chains always terminate on the frontier, so nothing
    /// is discarded without an on-frontier witness.
    #[test]
    fn dropped_points_are_dominated_by_the_frontier(cells in arb_cell_results()) {
        let f = pareto_frontier(&cells);
        for c in &cells {
            if !f.contains(c) {
                prop_assert!(
                    f.iter().any(|k| dominates(&k.measure, &c.measure)),
                    "dropped {:?} has no dominating frontier point",
                    c
                );
            }
        }
    }

    /// The frontier — and the per-kernel optima derived from it — is
    /// bitwise identical under any input permutation. This is the
    /// property the WAL crash-replay rests on: cells completing in a
    /// reshuffled order after a kill must reproduce the report.
    #[test]
    fn frontier_is_invariant_under_permutation(
        cells in arb_cell_results(),
        seed in 0u64..(1 << 32),
    ) {
        let want = pareto_frontier(&cells);
        let want_groups = kernel_frontiers(&cells);
        let mut shuffled = cells;
        // Deterministic Fisher–Yates driven by the generated seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(pareto_frontier(&shuffled), want);
        prop_assert_eq!(kernel_frontiers(&shuffled), want_groups);
    }

    /// On any well-formed DVFS ladder (ascending clocks, non-decreasing
    /// voltage) the dynamic-power ratio f·V² is strictly monotone in
    /// the state index, exactly 1.0 at the nominal top state, and < 1.0
    /// for every state below it: a lower frequency state never draws
    /// more dynamic power.
    #[test]
    fn dvfs_power_ratio_is_monotone_on_arbitrary_ladders(
        f0 in 600u32..1600,
        v0 in 0.7..1.1f64,
        steps in prop::collection::vec((50u32..500, 0.0..0.15f64), 1..5),
    ) {
        let mut states = vec![DvfsState { freq_mhz: f0, volts: v0 }];
        for (df, dv) in steps {
            let last = *states.last().unwrap();
            states.push(DvfsState { freq_mhz: last.freq_mhz + df, volts: last.volts + dv });
        }
        let nominal = states.len() - 1;
        let curve = DvfsCurve { states, nominal };
        prop_assert_eq!(curve.power_ratio(nominal), 1.0);
        let ratios: Vec<f64> = (0..curve.len()).map(|i| curve.power_ratio(i)).collect();
        for w in ratios.windows(2) {
            prop_assert!(w[0] < w[1], "f·V² must grow with the clock: {:?}", ratios);
        }
        for (i, r) in ratios.iter().enumerate() {
            if i != nominal {
                prop_assert!(*r < 1.0, "state {} below nominal must scale down, got {}", i, r);
            }
        }
    }

    /// Stepping down any preset's DVFS ladder never raises the
    /// roofline or the dynamic power: the compute ceilings and the
    /// dynamic calibration terms shrink monotonically with the state
    /// index, the memory-side constants stay put (DRAM and uncore keep
    /// their clocks), and the modeled execution time of an arbitrary
    /// workload never improves from downclocking.
    #[test]
    fn dvfs_downclock_never_raises_roofline_or_dynamic_power(
        sig in arb_signature(),
        p in 1u32..=40,
    ) {
        for spec in presets::all_servers() {
            let p = p.min(spec.total_cores());
            let nominal_cal = PowerCalibration::for_server(&spec);
            // (peak_gflops, scalar_gops, core_w, idle_w, time_s) of the
            // previous (slower) state, walking the ladder upward.
            let mut prev: Option<(f64, f64, f64, f64, f64)> = None;
            for idx in 0..spec.dvfs.len() {
                let down = spec.at_dvfs_state(idx).unwrap();
                let cal = PowerCalibration::for_server(&down);
                prop_assert_eq!(down.mem_bw_gbs, spec.mem_bw_gbs);
                prop_assert_eq!(down.per_core_bw_gbs, spec.per_core_bw_gbs);
                prop_assert_eq!(cal.mem_w_per_gbs, nominal_cal.mem_w_per_gbs);
                prop_assert_eq!(cal.footprint_w, nominal_cal.footprint_w);
                prop_assert_eq!(cal.comm_w_per_core, nominal_cal.comm_w_per_core);
                let est = PerfModel::new(down.clone()).execute(&sig, p);
                if let Some((peak, scalar, core_w, idle_w, time_s)) = prev {
                    prop_assert!(down.peak_gflops() > peak, "{}: compute ceiling follows the clock", spec.name);
                    prop_assert!(down.scalar_gops() > scalar, "{}: scalar ceiling follows the clock", spec.name);
                    prop_assert!(cal.core_w > core_w, "{}: dynamic core watts follow f·V²", spec.name);
                    prop_assert!(cal.idle_w > idle_w, "{}: the dynamic idle share follows f·V²", spec.name);
                    prop_assert!(
                        est.time_s <= time_s * (1.0 + 1e-9),
                        "{}: p={} state {} at a faster clock must not run slower ({} > {})",
                        spec.name, p, idx, est.time_s, time_s
                    );
                }
                prev = Some((down.peak_gflops(), down.scalar_gops(), cal.core_w, cal.idle_w, est.time_s));
            }
        }
    }
}
