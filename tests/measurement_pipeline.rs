//! Failure-injection tests of the measurement substrate: meter
//! dropouts, clock skew, malformed CSV logs, degenerate regression
//! designs, and short-program instability (the paper's LU.A.2 warning).

use hpceval::power::analysis::{ProgramWindow, TraceAnalysis};
use hpceval::power::meter::{PowerTrace, Wt210};
use hpceval::regression::matrix::Matrix;
use hpceval::regression::stepwise::forward_stepwise;

#[test]
fn dropouts_do_not_bias_the_trimmed_mean() {
    let mut healthy = Wt210::new(1).with_noise(2.0);
    let mut flaky = Wt210::new(1).with_noise(2.0).with_dropout(0.3);
    let t1 = healthy.record(0.0, 600.0, |_| 250.0);
    let t2 = flaky.record(0.0, 600.0, |_| 250.0);
    let win = ProgramWindow { start_s: 0.0, end_s: 601.0 };
    let m1 = TraceAnalysis::new(t1).analyze(win).expect("healthy trace populated");
    let m2 = TraceAnalysis::new(t2).analyze(win).expect("flaky trace still populated");
    assert!(m2.samples < m1.samples, "dropout must lose samples");
    assert!((m1.mean_w - m2.mean_w).abs() < 1.0, "{} vs {}", m1.mean_w, m2.mean_w);
}

#[test]
fn clock_skew_shifts_the_window_off_the_program() {
    // A 30 s clock offset on a 60 s program puts half the samples
    // outside the extraction window — the failure the paper's clock
    // synchronization step (3) exists to prevent.
    let mut skewed = Wt210::new(2).with_clock_offset(30.0);
    let trace = skewed.record(0.0, 60.0, |_| 300.0);
    let win = ProgramWindow { start_s: 0.0, end_s: 61.0 };
    let m = TraceAnalysis::new(trace).analyze(win).expect("some samples remain");
    assert!(m.raw_samples < 40, "skew must cut the window: {}", m.raw_samples);
}

#[test]
fn total_dropout_yields_no_analysis() {
    let mut dead = Wt210::new(3).with_dropout(1.0);
    let trace = dead.record(0.0, 100.0, |_| 100.0);
    assert!(trace.is_empty());
    let a = TraceAnalysis::new(trace);
    assert!(a.analyze(ProgramWindow { start_s: 0.0, end_s: 100.0 }).is_none());
}

#[test]
fn malformed_csv_is_rejected_not_mangled() {
    for bad in [
        "",                        // empty
        "watts,time_s\n1,2\n",     // wrong header order
        "time_s,watts\n1.0\n",     // missing column
        "time_s,watts\nx,y\n",     // non-numeric
        "time_s,watts\ninf,nan\n", // non-finite
    ] {
        assert!(PowerTrace::from_csv(bad).is_none(), "accepted: {bad:?}");
    }
}

#[test]
fn merge_of_overlapping_logs_stays_ordered() {
    let mut m1 = Wt210::new(4);
    let mut m2 = Wt210::new(5);
    let a = m1.record(0.0, 100.0, |_| 1.0);
    let b = m2.record(50.5, 100.0, |_| 2.0);
    let merged = PowerTrace::merge([a, b]);
    assert!(merged.samples.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    assert_eq!(merged.len(), 101 + 101);
}

#[test]
fn singular_design_matrix_fails_cleanly() {
    // Two duplicated predictors and a constant column.
    let n = 50;
    let mut data = Vec::new();
    let mut y = Vec::new();
    for i in 0..n {
        let v = i as f64;
        data.extend([v, v, 3.0]);
        y.push(v);
    }
    let x = Matrix::from_rows(n, 3, data);
    // Stepwise survives by picking one usable column.
    let rep = forward_stepwise(&x, &y, 1e-4).expect("one informative column exists");
    assert_eq!(rep.model.columns.len(), 1);
    // A direct least-squares on the full singular design refuses.
    assert!(x.with_intercept().least_squares(&y).is_none());
}

#[test]
fn short_programs_have_few_samples_after_trimming() {
    // The paper: "the duration of LU.A.2 ... is 1.01s. The stability and
    // accuracy are difficult to maintain." A 2-second window at 1 Hz
    // leaves ≤ 3 samples.
    let mut m = Wt210::new(6).with_noise(2.0);
    let trace = m.record(0.0, 600.0, |_| 180.0);
    let a = TraceAnalysis::new(trace);
    let s = a.analyze(ProgramWindow { start_s: 100.0, end_s: 102.0 }).expect("non-empty");
    assert!(s.samples <= 3, "{} samples", s.samples);
}
