//! Shard failover under `kill -9`: a sharded fleet loses one daemon
//! mid-load, a replacement replays the dead shard's WAL, and the
//! router's merged §V ranking must come out **bitwise-equal** to an
//! uninterrupted run — crash recovery may cost time, never results.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hpceval::fleet::{JobKind, RankedServer, Router};

/// A `hpceval fleet serve` subprocess on an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
    restored: usize,
}

impl Daemon {
    fn spawn(wal: &Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_hpceval"))
            .args(["fleet", "serve", "--wal"])
            .arg(wal)
            .args(["--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fleet serve");
        // Banner: "fleet daemon listening on ADDR (N job(s) restored from WAL)"
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("daemon banner");
        let addr = line
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        let restored = line
            .split('(')
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"));
        Daemon { child, addr, restored }
    }

    /// SIGKILL — no shutdown handshake, no WAL flush courtesy.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The deterministic load: two seeded Evaluate jobs per preset server.
/// Submitted one at a time so the router's key sequence (and thus the
/// shard assignment) is identical in both runs.
fn workload() -> Vec<JobKind> {
    let mut jobs = Vec::new();
    for (i, server) in ["xeon-e5462", "opteron-8347", "xeon-4870"].iter().enumerate() {
        for k in 0..2u64 {
            jobs.push(JobKind::Evaluate {
                server: (*server).to_string(),
                seed: 100 + 2 * i as u64 + k,
            });
        }
    }
    jobs
}

fn tmp_wal(tag: &str, shard: usize) -> PathBuf {
    std::env::temp_dir().join(format!("hpceval-failover-{}-{tag}-{shard}.wal", std::process::id()))
}

/// Everything that must survive a crash, bit for bit.
fn fingerprint(rows: &[RankedServer]) -> Vec<(String, u64, bool)> {
    rows.iter().map(|r| (r.server.clone(), r.ppw.to_bits(), r.degraded)).collect()
}

fn drain_and_rank(router: &Router) -> Vec<(String, u64, bool)> {
    let jobs = router.drain().expect("drain");
    assert_eq!(jobs.len(), workload().len(), "router must see every job");
    for j in &jobs {
        assert_eq!(j.state, "Done", "job {} must finish clean, got {}", j.id, j.state);
    }
    fingerprint(&router.ranking().expect("ranking"))
}

fn uninterrupted_run() -> Vec<(String, u64, bool)> {
    let wals: Vec<_> = (0..2).map(|s| tmp_wal("base", s)).collect();
    for w in &wals {
        let _ = std::fs::remove_file(w);
    }
    let shards: Vec<_> = wals.iter().map(|w| Daemon::spawn(w)).collect();
    let router =
        Router::connect(&shards.iter().map(|d| d.addr.clone()).collect::<Vec<_>>()).unwrap();
    for job in workload() {
        router.submit(vec![job]).expect("submit");
    }
    let rows = drain_and_rank(&router);
    router.shutdown_shards().expect("shutdown");
    for w in &wals {
        let _ = std::fs::remove_file(w);
    }
    rows
}

fn kill9_failover_run() -> Vec<(String, u64, bool)> {
    let wals: Vec<_> = (0..2).map(|s| tmp_wal("kill", s)).collect();
    for w in &wals {
        let _ = std::fs::remove_file(w);
    }
    let mut shards: Vec<_> = wals.iter().map(|w| Daemon::spawn(w)).collect();
    let addrs: Vec<_> = shards.iter().map(|d| d.addr.clone()).collect();
    let router = Router::connect(&addrs).unwrap();
    for job in workload() {
        router.submit(vec![job]).expect("submit");
    }

    // Give the shards a moment to start crunching, then murder shard 0
    // with no warning and replay its WAL into a replacement daemon at
    // the same shard position (global ids bake in the shard index).
    std::thread::sleep(Duration::from_millis(25));
    shards[0].kill9();
    drop(router);
    let replacement = Daemon::spawn(&wals[0]);
    assert!(
        replacement.restored > 0,
        "replacement must restore the dead shard's jobs from its WAL"
    );
    let router = Router::connect(&[replacement.addr.clone(), shards[1].addr.clone()]).unwrap();
    let rows = drain_and_rank(&router);
    router.shutdown_shards().expect("shutdown");
    for w in &wals {
        let _ = std::fs::remove_file(w);
    }
    rows
}

#[test]
fn ranking_survives_kill9_of_a_shard_bitwise() {
    let baseline = uninterrupted_run();
    assert!(!baseline.is_empty(), "evaluate jobs must produce ranking rows");
    let recovered = kill9_failover_run();
    assert_eq!(
        recovered, baseline,
        "WAL replay into a replacement shard must reproduce the merged ranking bit for bit"
    );
}
