//! End-to-end reproduction of the five-state evaluation (Tables IV–VI)
//! across all three servers, through every layer: kernel signatures →
//! roofline → power model → WT210 metering → trim-10 % analysis → PPW.

use hpceval::core::evaluation::Evaluator;
use hpceval::machine::presets;

#[test]
fn all_three_servers_reproduce_their_tables() {
    // (server, paper mean-PPW, idle W, full-core full-memory HPL W)
    let cases = [
        ("Xeon-E5462", 0.0639, 134.37, 235.32),
        ("Opteron-8347", 0.0251, 311.52, 529.53),
        ("Xeon-4870", 0.0975, 642.23, 1119.60),
    ];
    for (name, score, idle_w, hpl_w) in cases {
        let spec = presets::by_name(name).expect("preset exists");
        let full = spec.total_cores();
        let table = Evaluator::new(spec).run();

        assert_eq!(table.rows.len(), 10, "{name}: ten rows");
        let idle = &table.rows[0];
        assert!((idle.power_w - idle_w).abs() < 6.0, "{name} idle: {}", idle.power_w);
        assert_eq!(idle.ppw, 0.0, "{name}: no-load PPW must be zero");

        let hpl = table
            .rows
            .iter()
            .find(|r| r.program == format!("HPL P{full} Mf"))
            .expect("full HPL row present");
        assert!(
            (hpl.power_w - hpl_w).abs() / hpl_w < 0.06,
            "{name} HPL full: {} vs {hpl_w}",
            hpl.power_w
        );

        let got = table.final_score();
        assert!((got - score).abs() / score < 0.15, "{name} score {got:.4} vs paper {score}");
    }
}

#[test]
fn rows_are_ordered_idle_ep_hpl() {
    let t = Evaluator::new(presets::opteron_8347()).run();
    let labels: Vec<&str> = t.rows.iter().map(|r| r.program.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "Idle",
            "ep.C.1",
            "ep.C.8",
            "ep.C.16",
            "HPL P1 Mh",
            "HPL P8 Mh",
            "HPL P16 Mh",
            "HPL P1 Mf",
            "HPL P8 Mf",
            "HPL P16 Mf"
        ]
    );
}

#[test]
fn ppw_increases_with_cores_within_each_program_family() {
    // Paper Fig 10(b): PPW rises with parallelism for both EP and HPL.
    for spec in presets::all_servers() {
        let name = spec.name.clone();
        let t = Evaluator::new(spec).run();
        let ppw = |label: &str| {
            t.rows.iter().find(|r| r.program == label).map(|r| r.ppw).expect("row exists")
        };
        let full = presets::by_name(&name).expect("preset").total_cores();
        let half = full / 2;
        assert!(ppw(&format!("ep.C.{half}")) >= ppw("ep.C.1"), "{name} EP half vs 1");
        assert!(ppw(&format!("ep.C.{full}")) >= ppw(&format!("ep.C.{half}")), "{name} EP");
        assert!(ppw(&format!("HPL P{full} Mf")) > ppw(&format!("HPL P{half} Mf")), "{name} HPL Mf");
        assert!(ppw(&format!("HPL P{half} Mf")) > ppw("HPL P1 Mf"), "{name} HPL Mf half");
    }
}

#[test]
fn half_memory_and_full_memory_ppw_nearly_equal() {
    // The paper's core finding: memory utilization barely changes
    // power, so Mh and Mf rows have nearly identical PPW.
    for spec in presets::all_servers() {
        let name = spec.name.clone();
        let full = spec.total_cores();
        let t = Evaluator::new(spec).run();
        let get = |label: String| t.rows.iter().find(|r| r.program == label).expect("row exists");
        let mh = get(format!("HPL P{full} Mh"));
        let mf = get(format!("HPL P{full} Mf"));
        let rel = (mh.ppw - mf.ppw).abs() / mf.ppw;
        assert!(rel < 0.08, "{name}: Mh vs Mf PPW differs {:.1} %", rel * 100.0);
    }
}

#[test]
fn evaluation_is_deterministic() {
    let a = Evaluator::new(presets::xeon_e5462()).run();
    let b = Evaluator::new(presets::xeon_e5462()).run();
    assert_eq!(a, b);
}
