//! The paper's §IV-D findings (1)–(4), asserted across servers — the
//! empirical basis for choosing HPL + EP as the evaluation pair.

use hpceval::core::motivation::{power_study, sweep_procs};
use hpceval::kernels::npb::{Class, Program};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;

#[test]
fn finding_1_hpl_power_grows_fastest_and_tops_the_chart() {
    for spec in [presets::xeon_e5462(), presets::opteron_8347()] {
        let name = spec.name.clone();
        let full = spec.total_cores();
        let study = power_study(&spec, Class::C);
        let hpl_full = study.find("hpl", full).expect("HPL at full cores").power_w;
        for bar in &study.bars {
            assert!(
                bar.power_w <= hpl_full + 1.0,
                "{name}: {} ({:.1} W) above HPL.{full} ({hpl_full:.1} W)",
                bar.label,
                bar.power_w
            );
        }
        // Growth: HPL 1->full beats every NPB program's growth.
        let growth = |prog: &str| -> Option<f64> {
            Some(study.find(prog, full)?.power_w - study.find(prog, 1)?.power_w)
        };
        let hpl_growth = growth("hpl").expect("HPL runs at 1 and full");
        for prog in ["ep", "lu", "mg", "is"] {
            if let Some(g) = growth(prog) {
                assert!(g <= hpl_growth + 1.0, "{name}: {prog} grows {g:.1} > {hpl_growth:.1}");
            }
        }
    }
}

#[test]
fn finding_2_ep_power_grows_slowest() {
    for spec in [presets::xeon_e5462(), presets::opteron_8347()] {
        let name = spec.name.clone();
        let full = spec.total_cores();
        let study = power_study(&spec, Class::C);
        let ep_growth = study.find("ep", full).expect("ep at full").power_w
            - study.find("ep", 1).expect("ep at 1").power_w;
        for prog in ["hpl", "lu", "mg"] {
            let g = study.find(prog, full).expect("runs at full").power_w
                - study.find(prog, 1).expect("runs at 1").power_w;
            assert!(ep_growth <= g + 1.0, "{name}: EP grows {ep_growth:.1} > {prog} {g:.1}");
        }
    }
}

#[test]
fn finding_3_only_hpl_and_ep_cover_every_core_count() {
    for spec in presets::all_servers() {
        let total = spec.total_cores();
        for p in 1..=total {
            // HPL and EP always runnable.
            assert!(hpceval::kernels::hpl::HplConfig::tuned(10_000, p).constraint().allows(p));
            assert!(Program::Ep.benchmark(Class::C).constraint().allows(p));
        }
        // And at least one process count excludes every other program.
        for prog in Program::ALL {
            if prog == Program::Ep {
                continue;
            }
            let excluded = (1..=total).any(|p| !prog.benchmark(Class::C).constraint().allows(p));
            assert!(excluded, "{prog:?} unexpectedly unconstrained");
        }
    }
}

#[test]
fn finding_4_program_power_is_bracketed_by_ep_and_hpl() {
    let spec = presets::xeon_e5462();
    let study = power_study(&spec, Class::C);
    for &p in &sweep_procs(spec.total_cores()) {
        let Some(ep) = study.find("ep", p) else { continue };
        let Some(hpl) = study.find("hpl", p) else { continue };
        for bar in study.at_procs(p) {
            if bar.program == "specpower" {
                continue; // not an HPC code; the paper brackets NPB only
            }
            assert!(
                bar.power_w >= ep.power_w - 1.0 && bar.power_w <= hpl.power_w + 1.0,
                "p={p}: {} = {:.1} W outside [{:.1}, {:.1}]",
                bar.label,
                bar.power_w,
                ep.power_w,
                hpl.power_w
            );
        }
    }
}
