//! End-to-end reproduction of the §VI regression experiment:
//! HPCC-trained, NPB-validated, with the paper's headline statistics.

use hpceval::core::regression_experiment::run_experiment;
use hpceval::machine::presets;

#[test]
fn full_experiment_reproduces_paper_statistics() {
    let exp = run_experiment(&presets::xeon_4870(), 42).expect("training succeeds");

    // Table VII: n ≈ 6056, R² ≈ 0.94 (ours runs slightly cleaner).
    assert!((4500..8000).contains(&exp.observations), "n = {}", exp.observations);
    let s = exp.model.summary();
    assert!(s.r_square > 0.88, "training R² {}", s.r_square);
    assert!(s.multiple_r > 0.93);
    assert!(s.standard_error > 0.0 && s.standard_error < 0.5);

    // Table VIII: b2 (instructions) dominates; intercept ~0 on
    // normalized data (paper: C = 2.37e-14).
    let b = exp.model.coefficients();
    let max_mag = b.iter().map(|v| v.abs()).fold(f64::MIN, f64::max);
    assert!((b[1].abs() - max_mag).abs() < 1e-12, "b2 largest: {b:?}");
    assert!(exp.model.report.model.intercept.abs() < 1e-6);

    // Figs 12/13: 82 configurations; R² in the >0.5 band, well below
    // training.
    assert_eq!(exp.npb_b.points.len(), 82);
    assert!(exp.npb_b.r2 > 0.5 && exp.npb_b.r2 < 0.85, "B: {}", exp.npb_b.r2);
    assert!(exp.npb_c.r2 > 0.45 && exp.npb_c.r2 < 0.85, "C: {}", exp.npb_c.r2);
    assert!(exp.npb_b.r2 < s.r_square - 0.15);
}

#[test]
fn differences_center_near_zero_but_spread() {
    // Fig 13: the difference series straddles zero with real outliers.
    let exp = run_experiment(&presets::xeon_4870(), 42).expect("training succeeds");
    let diffs: Vec<f64> = exp.npb_b.points.iter().map(|p| p.difference()).collect();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    assert!(mean.abs() < 0.45, "systematic bias {mean}");
    let max = diffs.iter().cloned().fold(f64::MIN, f64::max);
    let min = diffs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max > 0.2 && min < -0.2, "no spread: [{min}, {max}]");
}

#[test]
fn ep_is_among_the_worst_fit_programs() {
    // §VI-C singles out EP and SP.
    let exp = run_experiment(&presets::xeon_4870(), 42).expect("training succeeds");
    let mean_abs = |prefix: &str| {
        let v: Vec<f64> = exp
            .npb_b
            .points
            .iter()
            .filter(|p| p.label.starts_with(prefix))
            .map(|p| p.difference().abs())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let ep = mean_abs("ep.");
    for prog in ["bt.", "ft.", "lu.", "mg.", "is."] {
        assert!(ep > mean_abs(prog), "{prog} fits worse than EP");
    }
}

#[test]
fn experiment_is_seed_reproducible() {
    let a = run_experiment(&presets::xeon_4870(), 7).expect("training succeeds");
    let b = run_experiment(&presets::xeon_4870(), 7).expect("training succeeds");
    assert_eq!(a.model.coefficients(), b.model.coefficients());
    assert_eq!(a.npb_b.r2, b.npb_b.r2);
}

#[test]
fn different_seeds_stay_in_band() {
    // The headline R² values must be stable properties of the setup,
    // not one lucky draw.
    for seed in [1u64, 99, 12345] {
        let exp = run_experiment(&presets::xeon_4870(), seed).expect("training succeeds");
        assert!(
            exp.npb_b.r2 > 0.45 && exp.npb_b.r2 < 0.9,
            "seed {seed}: B validation {}",
            exp.npb_b.r2
        );
    }
}
