//! CLI contract tests: the `hpceval` binary must reject unknown
//! subcommands and malformed flags with usage text and a non-zero exit,
//! and its fleet subcommands must work end-to-end over a real socket.

use std::process::{Command, Output};

fn hpceval(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hpceval"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    for args in [&["frobnicate"][..], &[][..], &["--help-me"][..]] {
        let out = hpceval(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(stderr(&out).contains("usage: hpceval"), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn malformed_fleet_invocations_print_fleet_usage_and_fail() {
    let cases: &[&[&str]] = &[
        &["fleet"],                                             // missing subcommand
        &["fleet", "explode"],                                  // unknown subcommand
        &["fleet", "serve"],                                    // missing required --wal
        &["fleet", "serve", "--wal"],                           // flag without value
        &["fleet", "serve", "--wal", "x", "--bogus", "1"],      // unknown flag
        &["fleet", "serve", "--wal", "x", "--crash-p", "lots"], // bad number
        &["fleet", "submit"],                                   // no job specs
        &["fleet", "submit", "fly:xeon-e5462"],                 // unknown kind
        &["fleet", "submit", "evaluate"],                       // spec lacks server
        &["fleet", "status", "--job", "one"],                   // non-numeric id
        &["fleet", "drain", "extra"],                           // stray positional
    ];
    for args in cases {
        let out = hpceval(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            stderr(&out).contains("usage: hpceval fleet"),
            "{args:?} must print fleet usage, got: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unknown_server_still_fails_cleanly() {
    let out = hpceval(&["evaluate", "cray-1"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown server"));
}

#[test]
fn servers_listing_succeeds() {
    let out = hpceval(&["servers"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Xeon-E5462", "Opteron-8347", "Xeon-4870"] {
        assert!(text.contains(name), "{text}");
    }
}

/// The CI smoke entry point: a daemon on an ephemeral port, submits over
/// TCP, one injected node crash, drains to all-Done|Degraded, exits 0.
#[test]
fn fleet_smoke_passes() {
    let out = hpceval(&["fleet", "smoke", "--seed", "2015"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {text}\nstderr: {}", stderr(&out));
    assert!(text.contains("smoke: OK"), "{text}");
}

/// status/drain against a daemon that isn't there must fail, not hang.
#[test]
fn client_commands_fail_fast_without_a_daemon() {
    // Port 9 (discard) is a safe "nothing listens here" target.
    for sub in ["status", "drain", "shutdown"] {
        let out = hpceval(&["fleet", sub, "--addr", "127.0.0.1:9"]);
        assert!(!out.status.success(), "{sub} must fail");
        assert!(stderr(&out).contains("cannot reach fleet daemon"), "{}", stderr(&out));
    }
}
