//! CLI contract tests: the `hpceval` binary must reject unknown
//! subcommands and malformed flags with usage text and a non-zero exit,
//! and its fleet subcommands must work end-to-end over a real socket.

use std::process::{Command, Output};

fn hpceval(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hpceval"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).to_string()
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    for args in [&["frobnicate"][..], &[][..], &["--help-me"][..]] {
        let out = hpceval(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(stderr(&out).contains("usage: hpceval"), "{args:?}: {}", stderr(&out));
    }
}

#[test]
fn malformed_fleet_invocations_print_fleet_usage_and_fail() {
    let cases: &[&[&str]] = &[
        &["fleet"],                                             // missing subcommand
        &["fleet", "explode"],                                  // unknown subcommand
        &["fleet", "serve"],                                    // missing required --wal
        &["fleet", "serve", "--wal"],                           // flag without value
        &["fleet", "serve", "--wal", "x", "--bogus", "1"],      // unknown flag
        &["fleet", "serve", "--wal", "x", "--crash-p", "lots"], // bad number
        &["fleet", "submit"],                                   // no job specs
        &["fleet", "submit", "fly:xeon-e5462"],                 // unknown kind
        &["fleet", "submit", "evaluate"],                       // spec lacks server
        &["fleet", "status", "--job", "one"],                   // non-numeric id
        &["fleet", "drain", "extra"],                           // stray positional
        &["fleet", "route"],                                    // missing required --shards
        &["fleet", "route", "--shards", ","],                   // no addresses in list
        &["fleet", "route", "--relay", "x"],                    // unknown flag
        &["fleet", "bench", "--ops", "many"],                   // bad number
        &["fleet", "bench", "--tolerance", "-1"],               // negative tolerance
        &["fleet", "bench", "extra"],                           // stray positional
        &["fleet", "bench", "--shards", "0"],                   // zero shard count
        &["fleet", "bench", "--shards", "2,x"],                 // junk in the list
        &["fleet", "bench", "--clients", ""],                   // empty list
        &["fleet", "bench", "--pipeline-depth", "x"],           // non-numeric depth
        &["fleet", "bench", "--pipeline-depth", "0"],           // zero depth
    ];
    for args in cases {
        let out = hpceval(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            stderr(&out).contains("usage: hpceval fleet"),
            "{args:?} must print fleet usage, got: {}",
            stderr(&out)
        );
    }
}

#[test]
fn unknown_server_still_fails_cleanly() {
    let out = hpceval(&["evaluate", "cray-1"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown server"));
}

#[test]
fn servers_listing_succeeds() {
    let out = hpceval(&["servers"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Xeon-E5462", "Opteron-8347", "Xeon-4870"] {
        assert!(text.contains(name), "{text}");
    }
}

/// The CI smoke entry point: a daemon on an ephemeral port, submits over
/// TCP, one injected node crash, drains to all-Done|Degraded, exits 0.
#[test]
fn fleet_smoke_passes() {
    let out = hpceval(&["fleet", "smoke", "--seed", "2015"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {text}\nstderr: {}", stderr(&out));
    assert!(text.contains("smoke: OK"), "{text}");
}

#[test]
fn malformed_trace_invocations_print_trace_usage_and_fail() {
    let cases: &[&[&str]] = &[
        &["trace"],                                       // missing subcommand
        &["trace", "explode"],                            // unknown subcommand
        &["trace", "capture"],                            // missing kernel
        &["trace", "capture", "ua"],                      // unknown kernel
        &["trace", "capture", "dgemm", "extra"],          // stray positional
        &["trace", "capture", "dgemm", "--mode", "?"],    // bad mode
        &["trace", "capture", "dgemm", "--mode", "off"],  // off captures nothing
        &["trace", "capture", "dgemm", "--bogus", "1"],   // unknown flag
        &["trace", "replay", "cg", "--server", "cray-1"], // unknown server
        &["trace", "replay", "cg", "--seed", "many"],     // bad number
        &["trace", "stats", "extra"],                     // stray positional
    ];
    for args in cases {
        let out = hpceval(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            stderr(&out).contains("usage: hpceval trace"),
            "{args:?} must print trace usage, got: {}",
            stderr(&out)
        );
    }
}

/// `trace capture`/`trace replay` print one line of JSON with the
/// pinned keys; the sampled capture is reproducible run-to-run.
#[test]
fn trace_capture_and_replay_emit_json() {
    let out = hpceval(&["trace", "capture", "is", "--mode", "sampled"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for key in ["\"kernel\":\"is\"", "\"mode\":\"sampled\"", "\"accesses\":", "\"encoded_bytes\":"]
    {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    let again = hpceval(&["trace", "capture", "is", "--mode", "sampled"]);
    assert_eq!(text, String::from_utf8_lossy(&again.stdout), "capture must be deterministic");

    let out = hpceval(&["trace", "replay", "stream", "--server", "xeon-e5462"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout);
    for key in ["\"server\":\"Xeon-E5462\"", "\"mem_reads\":", "\"measured\":{\"l1_hit\":"] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
}

#[test]
fn malformed_tune_invocations_print_tune_usage_and_fail() {
    let cases: &[&[&str]] = &[
        &["tune"],                                  // missing subcommand
        &["tune", "explode"],                       // unknown subcommand
        &["tune", "report", "--servers", "cray-1"], // unknown server
        &["tune", "report", "--kernels", "warp"],   // unknown kernel
        &["tune", "report", "--servers", ","],      // empty list
        &["tune", "report", "--seed", "many"],      // bad number
        &["tune", "report", "--bogus", "1"],        // unknown flag
        &["tune", "report", "extra"],               // stray positional
        &["tune", "sweep", "--crash-p", "lots"],    // bad number
        &["tune", "frontier", "--check", "x"],      // check not a frontier flag
        &["tune", "smoke", "--shards", "0"],        // shardless sweep
        &["tune", "smoke", "--seed", "1"],          // smoke has no --seed
    ];
    for args in cases {
        let out = hpceval(args);
        assert!(!out.status.success(), "{args:?} must fail");
        assert!(
            stderr(&out).contains("usage: hpceval tune"),
            "{args:?} must print tune usage, got: {}",
            stderr(&out)
        );
    }
}

/// The tune CI smoke entry point: a tiny fault-injected sweep through
/// sharded daemons, bitwise-checked against in-process measurement.
#[test]
fn tune_smoke_passes() {
    let out = hpceval(&["tune", "smoke"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {text}\nstderr: {}", stderr(&out));
    assert!(text.contains("tune smoke: OK"), "{text}");
}

/// `tune report` prints the strict-JSON report and self-checks against
/// its own output at zero drift.
#[test]
fn tune_report_emits_json_and_self_checks() {
    let args =
        &["tune", "report", "--servers", "Xeon-E5462", "--kernels", "ep", "--max-states", "2"];
    let out = hpceval(args);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for key in [
        "\"section_v_score\"",
        "\"frontier\"",
        "\"energy_optimal\"",
        "\"edp_optimal\"",
        "\"Xeon-E5462.energy_opt_j\"",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    let baseline = std::env::temp_dir().join(format!("tune-cli-{}.json", std::process::id()));
    std::fs::write(&baseline, &text).unwrap();
    let mut check = args.to_vec();
    let path = baseline.to_str().unwrap().to_string();
    check.extend(["--check", &path, "--tolerance", "0"]);
    let out = hpceval(&check);
    assert!(out.status.success(), "self-check at zero tolerance: {}", stderr(&out));
    assert_eq!(text, String::from_utf8_lossy(&out.stdout), "report must be deterministic");
    std::fs::remove_file(&baseline).unwrap();
}

/// status/drain against a daemon that isn't there must fail, not hang.
#[test]
fn client_commands_fail_fast_without_a_daemon() {
    // Port 9 (discard) is a safe "nothing listens here" target.
    for sub in ["status", "drain", "shutdown"] {
        let out = hpceval(&["fleet", sub, "--addr", "127.0.0.1:9"]);
        assert!(!out.status.success(), "{sub} must fail");
        assert!(stderr(&out).contains("cannot reach fleet daemon"), "{}", stderr(&out));
    }
}
