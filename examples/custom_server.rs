//! Evaluate a user-defined server, not one of the paper's three.
//!
//! ```sh
//! cargo run --example custom_server
//! ```
//!
//! Defines a hypothetical 2-socket, 8-core machine, gives it the generic
//! power calibration, runs the five-state evaluation and the Green500
//! method on it, and ranks it against the paper's servers — the workflow
//! a practitioner adopting the methodology would follow.

use hpceval::core::evaluation::Evaluator;
use hpceval::core::rankings::{compare, green500_score};
use hpceval::machine::presets;
use hpceval::machine::spec::{CacheLevel, DvfsCurve, MemoryKind, ServerSpec};

fn main() {
    let custom = ServerSpec {
        name: "Custom-2S8C".to_string(),
        processor: "Hypothetical 2.6 GHz".to_string(),
        chips: 2,
        cores_per_chip: 4,
        threads_per_core: 1,
        freq_mhz: 2600,
        flops_per_cycle: 4,
        l1i: CacheLevel::private(32, 8, 64),
        l1d: CacheLevel::private(32, 8, 64),
        l2: CacheLevel::private(256, 8, 64),
        l3: Some(CacheLevel::shared(8 * 1024, 16, 64, 4)),
        memory_gib: 16,
        memory_kind: MemoryKind::Ddr3,
        mem_bw_gbs: 34.0,
        per_core_bw_gbs: 8.5,
        net_mbps: 1000,
        disk_gb: 500,
        power_supplies: 1,
        psu_rating_w: 750.0,
        sustained_vector_eff: 0.88,
        parallel_alpha: 0.04,
        scalar_ipc: 0.9,
        dvfs: DvfsCurve::single(2600),
    };
    println!(
        "custom server: {} cores, {:.1} GFLOPS peak\n",
        custom.total_cores(),
        custom.peak_gflops()
    );

    let table = Evaluator::new(custom.clone()).run();
    print!("{}", table.render());
    println!("\nGreen500-style peak-HPL PPW: {:.4} GFLOPS/W", green500_score(&custom));

    // Rank against the paper's machines under both methods.
    let mut servers = presets::all_servers();
    servers.push(custom);
    let cmp = compare(&servers);
    println!();
    print!("{}", cmp.render());
}
