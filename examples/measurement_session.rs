//! Drive the paper's full §V-C2 measurement procedure end to end.
//!
//! ```sh
//! cargo run --example measurement_session
//! ```
//!
//! Schedules EP and HPL configurations back to back on the simulated
//! Xeon-E5462, records *one continuous* WT210 CSV log across the whole
//! session (idle gaps included), then runs the paper's analysis —
//! parse the merged CSV, extract each program's window, trim 10 %,
//! average — and prints PPW per configuration. Finally it repeats the
//! session with an unsynchronized meter clock to show why the paper's
//! clock-sync step exists.

use hpceval::core::session::{run_session, GAP_S};
use hpceval::kernels::hpl::HplConfig;
use hpceval::kernels::npb::{ep::Ep, Class};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;

fn main() {
    let spec = presets::xeon_e5462();
    let full = spec.total_cores();
    let schedule = vec![
        ("ep.C.1".to_string(), Ep::new(Class::C).signature(), 1),
        (format!("ep.C.{full}"), Ep::new(Class::C).signature(), full),
        (
            format!("HPL P{full} Mh"),
            HplConfig::for_memory_fraction(&spec, 0.5, full).signature(),
            full,
        ),
        (
            format!("HPL P{full} Mf"),
            HplConfig::for_memory_fraction(&spec, 0.92, full).signature(),
            full,
        ),
    ];

    println!(
        "running a {}-program session on {} (gaps of {GAP_S} s)…\n",
        schedule.len(),
        spec.name
    );
    let session = run_session(&spec, &schedule, 2024, 0.0);
    println!(
        "meter log: {} CSV bytes covering {:.0} s\n",
        session.csv.len(),
        session.runs.last().map_or(0.0, |r| r.end_s + GAP_S)
    );

    let results = session.analyze().expect("well-formed session analyzes");
    println!("{:<14} {:>10} {:>12} {:>10}", "Program", "GFLOPS", "Power(W)", "PPW");
    for (run, stats) in &results {
        println!(
            "{:<14} {:>10.3} {:>12.2} {:>10.4}",
            run.label,
            run.gflops,
            stats.mean_w,
            run.gflops / stats.mean_w
        );
    }

    // The failure mode the sync step prevents.
    let skewed = run_session(&spec, &schedule, 2024, 60.0);
    let bad = skewed.analyze().expect("still parses");
    println!("\nwith a 60 s meter clock offset (no sync step):");
    for ((run, good), (_, broken)) in results.iter().zip(&bad) {
        println!(
            "  {:<14} measured {:>7.2} W -> {:>7.2} W (error {:+.1} W)",
            run.label,
            good.mean_w,
            broken.mean_w,
            broken.mean_w - good.mean_w
        );
    }
}
