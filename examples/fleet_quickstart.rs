//! Fleet quickstart: a faulty in-process fleet that still ranks servers.
//!
//! ```sh
//! cargo run --example fleet_quickstart
//! ```
//!
//! Opens a fleet daemon in-process (no TCP needed — see
//! `hpceval fleet serve` for the socket version), submits a five-state
//! evaluation of every Table I preset plus a training run, injects node
//! crashes and meter dropouts, drains the queue, and prints the
//! Green500-style ranking the degraded fleet could still produce. The
//! write-ahead log means a `kill -9` of this process would lose nothing:
//! re-running `Fleet::open` on the same WAL resumes from the last
//! checkpointed state row.

use hpceval::fleet::fault::FaultPlan;
use hpceval::fleet::{Fleet, FleetConfig, JobKind, Registry};

fn main() {
    let wal = std::env::temp_dir().join("hpceval_fleet_quickstart.wal");
    let _ = std::fs::remove_file(&wal); // fresh demo; keep it to see resume

    let config = FleetConfig {
        max_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        crash_holdoff_ms: 2,
        faults: FaultPlan { crash_p: 0.35, straggler_p: 0.2, dropout_p: 0.1, seed: 2015 },
        ..FleetConfig::default()
    };
    let fleet = Fleet::open(config, Registry::with_presets(), &wal).expect("fleet opens");
    let scheduler = fleet.start_scheduler();

    let jobs = vec![
        JobKind::Evaluate { server: "xeon-e5462".into(), seed: 42 },
        JobKind::Evaluate { server: "opteron-8347".into(), seed: 42 },
        JobKind::Evaluate { server: "xeon-4870".into(), seed: 42 },
        JobKind::Train { server: "xeon-e5462".into(), seed: 7 },
    ];
    let ids = fleet.submit(jobs).expect("all servers are known presets");
    println!("submitted jobs {ids:?}; draining under injected faults…\n");

    for job in fleet.drain() {
        println!(
            "  job {:>2}  {:<9} {:<12} {:<9} {} / {} rows{}",
            job.id,
            job.kind,
            job.server,
            job.state,
            job.rows_done,
            job.total_steps,
            if job.notes.is_empty() {
                String::new()
            } else {
                format!("  [{}]", job.notes.join("; "))
            }
        );
    }

    println!("\nranking (mean clean PPW, degraded results flagged, never averaged in):");
    for (name, ppw, degraded) in fleet.ranking() {
        println!("  {name:<12} {ppw:.4} GFLOPS/W{}", if degraded { "  (degraded)" } else { "" });
    }

    let crashes = fleet
        .events()
        .iter()
        .filter(|e| matches!(e.kind, hpceval::fleet::EventKind::NodeCrashed))
        .count();
    println!(
        "\n{} node crash(es) injected; {} telemetry events bridged",
        crashes,
        fleet.telemetry_events().len()
    );

    fleet.request_shutdown();
    scheduler.join().expect("scheduler exits");
    let _ = std::fs::remove_file(&wal);
}
