//! Train the §VI regression power model and use it as a predictor.
//!
//! ```sh
//! cargo run --example power_model
//! ```
//!
//! Trains the forward-stepwise model on HPCC samples from the simulated
//! Xeon-4870, prints the Table VII/VIII artifacts, validates on NPB-B,
//! then demonstrates the intended *use*: predicting the power of a
//! not-yet-measured workload configuration from its PMU feature vector.

use hpceval::core::regression_experiment::{collect_training, train, validate, SAMPLE_INTERVAL_S};
use hpceval::core::server::SimulatedServer;
use hpceval::kernels::npb::{Class, Program};
use hpceval::machine::pmu::PmuCounters;
use hpceval::machine::presets;

fn main() {
    let spec = presets::xeon_4870();
    println!("collecting HPCC training samples on {}…", spec.name);
    let samples = collect_training(&spec, 25, 42);
    println!("  {} observations (paper: 6056)", samples.len());

    let model = train(&samples).expect("HPCC training set is well conditioned");
    let s = model.summary();
    println!("  training R² {:.4} (paper Table VII: 0.9403)", s.r_square);
    print!("  coefficients:");
    for (name, b) in PmuCounters::FEATURE_NAMES.iter().zip(model.coefficients()) {
        print!(" {name}={b:.3}");
    }
    println!("\n");

    // Validate on NPB class B (Fig 12).
    let v = validate(&spec, Class::B, &model, 7);
    println!(
        "NPB-B validation over {} configurations: R² {:.4} (paper: 0.634)\n",
        v.points.len(),
        v.r2
    );

    // Use the model as a predictor for one unmeasured configuration.
    let srv = SimulatedServer::new(spec.clone());
    let mg = Program::Mg.benchmark(Class::C);
    let sig = mg.signature();
    let est = srv.estimate(&sig, 16);
    let features = srv.pmu_rates(&sig, &est).sample(SAMPLE_INTERVAL_S).as_features();
    let predicted = model.predict_normalized(&features);
    let truth = model.normalize_power(srv.true_power_w(&sig, &est));
    println!("prediction demo — mg.C.16 on {}:", spec.name);
    println!("  predicted normalized power {predicted:+.3}");
    println!("  actual    normalized power {truth:+.3}");
    println!(
        "  (denormalized: {:.1} W predicted vs {:.1} W actual)",
        model.normalizer.invert_one(6, predicted),
        model.normalizer.invert_one(6, truth)
    );
}
