//! Quickstart: evaluate one server with the paper's five-state method.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Runs the HPL+EP evaluation (idle; EP.C at 1/half/full cores; HPL at
//! half/full memory × 1/half/full cores) on the simulated Xeon-E5462 and
//! prints a Table-IV-shaped PPW table plus the system score.

use hpceval::core::evaluation::Evaluator;
use hpceval::machine::presets;

fn main() {
    let server = presets::xeon_e5462();
    println!(
        "evaluating {} ({} cores, {:.1} GFLOPS peak)…\n",
        server.name,
        server.total_cores(),
        server.peak_gflops()
    );

    let table = Evaluator::new(server).run();
    print!("{}", table.render());

    println!("\nsystem score (mean PPW): {:.4} GFLOPS/W", table.final_score());
    println!("paper Table IV anchors: idle 134.4 W, ep.C.4 174.0 W, HPL P4 Mf 235.3 W");
}
