//! Run the *real* benchmark implementations and their built-in
//! verifications — the part of the reproduction that is not simulated.
//!
//! ```sh
//! cargo run --example verify_kernels
//! ```
//!
//! Executes a scaled instance of every NPB program, HPL and every HPCC
//! program (LU residuals, FFT round trips, sort permutations, ADI
//! convergence, XOR-replay identities, …) and reports each verdict.

use hpceval::kernels::hpcc;
use hpceval::kernels::hpl::HplConfig;
use hpceval::kernels::npb::{Class, Program};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;

fn main() {
    let threads = 4;
    let mut failures = 0;

    println!("— NPB (scaled instances, class parameterization = C) —");
    for prog in Program::ALL {
        let b = prog.benchmark(Class::C);
        let out = b.verify(threads);
        report(&b.display_name(), out.passed, &out.detail);
        failures += usize::from(!out.passed);
    }

    println!("\n— HPL —");
    let hpl = HplConfig::tuned(30_000, 4);
    let out = hpl.verify(threads);
    report("hpl", out.passed, &out.detail);
    failures += usize::from(!out.passed);

    println!("\n— HPCC (sized for the Xeon-E5462) —");
    for b in hpcc::full_suite(&presets::xeon_e5462()) {
        let out = b.verify(threads);
        report(b.id(), out.passed, &out.detail);
        failures += usize::from(!out.passed);
    }

    println!();
    if failures == 0 {
        println!("all kernels verified.");
    } else {
        println!("{failures} kernel(s) FAILED verification");
        std::process::exit(1);
    }
}

fn report(name: &str, passed: bool, detail: &str) {
    println!("{:<14} {:<5} {}", name, if passed { "ok" } else { "FAIL" }, detail);
}
