//! Stream a live measurement session through the telemetry subsystem.
//!
//! ```sh
//! cargo run --example streaming_monitor
//! ```
//!
//! Where `measurement_session` records a whole WT210 log and analyzes
//! it *after the fact*, this example watches the same §V-C2 procedure
//! as it happens: three simulated copies of the Xeon-E5462 (one clean,
//! one with a flaky meter link, one whose meter clock steps backwards
//! mid-run) feed 1 Hz power samples and 10 s PMU counter deltas into
//! the collector. The monitor keeps sliding-window statistics per
//! server, trains the paper's six-predictor power model online with
//! recursive least squares, and flags every dropout, clock step and
//! power excursion as an event instead of silently averaging over it.

use hpceval::kernels::hpl::HplConfig;
use hpceval::kernels::npb::{ep::Ep, Class};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;
use hpceval::telemetry::{LiveServer, Monitor, SampleSource};

fn main() {
    let spec = presets::xeon_e5462();
    let full = spec.total_cores();
    let schedule = vec![
        ("ep.C.1".to_string(), Ep::new(Class::C).signature(), 1),
        (format!("ep.C.{full}"), Ep::new(Class::C).signature(), full),
        (
            format!("HPL P{full}"),
            HplConfig::for_memory_fraction(&spec, 0.92, full).signature(),
            full,
        ),
    ];

    let sources: Vec<Box<dyn SampleSource>> = vec![
        Box::new(LiveServer::new(0, format!("{}/clean", spec.name), &spec, &schedule, 2024)),
        Box::new(
            LiveServer::new(1, format!("{}/dropout", spec.name), &spec, &schedule, 2025)
                .with_dropout(0.05),
        ),
        Box::new(
            LiveServer::new(2, format!("{}/clock-step", spec.name), &spec, &schedule, 2026)
                .with_clock_jump(90.0, -6.0),
        ),
    ];

    println!(
        "streaming {} programs on 3 copies of {} (dropout + clock-step injected)…\n",
        schedule.len(),
        spec.name
    );
    let report = Monitor::default().run_with(sources, |line| println!("{line}"));
    println!();
    print!("{}", report.render());

    let skew = report.servers[2].stats.clock_skew_rejects;
    let drops = report.servers[1].stats.dropout_events;
    println!("\ninjections detected: {skew} skewed samples rejected, {drops} dropout gaps flagged");
    assert!(skew > 0 && drops > 0, "injected faults must surface as events");
}
