//! # hpceval — HPC-Oriented Power Evaluation Method
//!
//! Façade crate re-exporting the whole workspace: a reproduction of the
//! ICPP 2015 paper *HPC-Oriented Power Evaluation Method* (Zhang & Chen).
//!
//! * [`machine`] — simulated servers (Table I presets), caches, roofline
//!   performance model, PMU counter synthesis.
//! * [`kernels`] — Rust implementations of HPL, the eight NAS Parallel
//!   Benchmarks and the seven HPCC programs.
//! * [`power`] — ground-truth power model, WT210 meter simulation and the
//!   paper's trace-analysis pipeline.
//! * [`trace`] — sampled address-trace capture hooks and trace-driven
//!   cache replay (the measured-locality path into the regression).
//! * [`specpower`] — a SPECpower_ssj2008-like graduated-load workload.
//! * [`regression`] — forward-stepwise multiple linear regression.
//! * [`core`] — the paper's contribution: the HPL+EP five-state power
//!   evaluation method and the HPCC-trained power regression model.
//! * [`telemetry`] — the streaming extension: multi-server sample
//!   ingestion, ring-buffer storage, incremental window statistics and
//!   online (RLS) model training with drift/anomaly detection.
//! * [`fleet`] — fault-tolerant orchestration: a daemon with a
//!   write-ahead-logged job queue, per-state checkpointing, fault
//!   injection with retry/backoff, and a TCP wire protocol + client.
//! * [`tune`] — the DVFS-aware autotuner: deterministic sweep planning
//!   over frequency state × core count × kernel, energy-delay Pareto
//!   frontier analysis, and the `BENCH_tune.json` drift gate.
//!
//! ## Quickstart
//!
//! ```
//! use hpceval::core::evaluation::Evaluator;
//! use hpceval::machine::presets;
//!
//! let server = presets::xeon_e5462();
//! let table = Evaluator::new(server).run();
//! println!("{}", table.render());
//! assert!(table.final_score() > 0.0);
//! ```

pub use hpceval_core as core;
pub use hpceval_fleet as fleet;
pub use hpceval_kernels as kernels;
pub use hpceval_machine as machine;
pub use hpceval_power as power;
pub use hpceval_regression as regression;
pub use hpceval_specpower as specpower;
pub use hpceval_telemetry as telemetry;
pub use hpceval_trace as trace;
pub use hpceval_tune as tune;
