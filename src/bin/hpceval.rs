//! `hpceval` — command-line driver for the power evaluation method.
//!
//! ```text
//! hpceval servers                     list the built-in server presets
//! hpceval evaluate <server>           run the five-state evaluation
//! hpceval green500 <server>           peak-HPL PPW (the Green500 method)
//! hpceval specpower <server>          graduated-load ssj_ops/W
//! hpceval rankings                    all three methods on all presets
//! hpceval study <server>              §IV power study (Fig 3/4 series)
//! hpceval train [seed]                §VI regression on the Xeon-4870
//! hpceval verify                      run every kernel's verification
//! ```

use std::process::ExitCode;

use hpceval::core::evaluation::Evaluator;
use hpceval::core::motivation::power_study;
use hpceval::core::rankings::{compare, green500_score, specpower_score};
use hpceval::core::regression_experiment::run_experiment;
use hpceval::kernels::hpcc;
use hpceval::kernels::hpl::HplConfig;
use hpceval::kernels::npb::{Class, Program};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;
use hpceval::machine::spec::ServerSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("servers") => servers(),
        Some("evaluate") => with_server(&args, evaluate),
        Some("green500") => with_server(&args, |s| {
            println!("{}: Green500-style peak-HPL PPW = {:.4} GFLOPS/W", s.name,
                green500_score(&s));
            ExitCode::SUCCESS
        }),
        Some("specpower") => with_server(&args, |s| {
            println!("{}: SPECpower-style score = {:.1} ssj_ops/W", s.name,
                specpower_score(&s));
            ExitCode::SUCCESS
        }),
        Some("rankings") => rankings(),
        Some("report") => with_server(&args, |s| {
            print!("{}", hpceval::core::report::markdown_report(&s));
            ExitCode::SUCCESS
        }),
        Some("cluster") => with_server(&args, cluster),
        Some("study") => with_server(&args, study),
        Some("train") => match args.get(1) {
            None => train(42),
            Some(raw) => match raw.parse() {
                Ok(seed) => train(seed),
                Err(_) => {
                    eprintln!("seed must be an integer, got {raw:?}");
                    ExitCode::FAILURE
                }
            },
        },
        Some("verify") => verify(),
        _ => {
            eprintln!(
                "usage: hpceval <servers|evaluate|green500|specpower|rankings|study|train|report|cluster|verify> [server|seed]"
            );
            ExitCode::FAILURE
        }
    }
}

fn with_server(args: &[String], f: impl Fn(ServerSpec) -> ExitCode) -> ExitCode {
    let Some(name) = args.get(1) else {
        eprintln!("expected a server name; try `hpceval servers`");
        return ExitCode::FAILURE;
    };
    match presets::by_name(name) {
        Some(spec) => f(spec),
        None => {
            eprintln!("unknown server {name:?}; try `hpceval servers`");
            ExitCode::FAILURE
        }
    }
}

fn servers() -> ExitCode {
    println!("{:<14} {:>6} {:>10} {:>14} {:>10}", "Name", "Cores", "Freq(MHz)",
        "Peak(GFLOPS)", "Mem(GiB)");
    for s in presets::all_servers() {
        println!(
            "{:<14} {:>6} {:>10} {:>14.1} {:>10}",
            s.name,
            s.total_cores(),
            s.freq_mhz,
            s.peak_gflops(),
            s.memory_gib
        );
    }
    ExitCode::SUCCESS
}

fn evaluate(spec: ServerSpec) -> ExitCode {
    let table = Evaluator::new(spec).run();
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cluster(spec: ServerSpec) -> ExitCode {
    use hpceval::core::cluster::{scaling_study, Interconnect};
    println!("cluster scaling of {} nodes over gigabit ethernet:", spec.name);
    println!("{:>6} {:>14} {:>12} {:>12} {:>12}", "Nodes", "HPL(GFLOPS)", "Power(W)",
        "G500 PPW", "5-state PPW");
    for s in scaling_study(&spec, Interconnect::gigabit_ethernet(), &[1, 2, 4, 8, 16, 32]) {
        println!(
            "{:>6} {:>14.1} {:>12.1} {:>12.4} {:>12.4}",
            s.nodes, s.hpl_gflops, s.hpl_power_w, s.green500_ppw, s.five_state_ppw
        );
    }
    ExitCode::SUCCESS
}

fn rankings() -> ExitCode {
    print!("{}", compare(&presets::all_servers()).render());
    ExitCode::SUCCESS
}

fn study(spec: ServerSpec) -> ExitCode {
    print!("{}", power_study(&spec, Class::C).render());
    ExitCode::SUCCESS
}

fn train(seed: u64) -> ExitCode {
    let spec = presets::xeon_4870();
    let Some(exp) = run_experiment(&spec, seed) else {
        eprintln!("training failed: degenerate sample set");
        return ExitCode::FAILURE;
    };
    let s = exp.model.summary();
    println!("trained on {} HPCC observations (seed {seed})", exp.observations);
    println!("  R² {:.4}  adjusted {:.4}  std err {:.4}", s.r_square, s.adjusted_r_square,
        s.standard_error);
    println!("  coefficients (normalized): {:?}", exp.model.coefficients());
    println!("validation: NPB-B R² {:.4}, NPB-C R² {:.4}", exp.npb_b.r2, exp.npb_c.r2);
    ExitCode::SUCCESS
}

fn verify() -> ExitCode {
    let mut failed = 0;
    let mut run = |name: String, out: hpceval::kernels::suite::VerifyOutcome| {
        println!("{:<14} {:<5} {}", name, if out.passed { "ok" } else { "FAIL" }, out.detail);
        if !out.passed {
            failed += 1;
        }
    };
    for prog in Program::ALL {
        let b = prog.benchmark(Class::C);
        run(b.display_name(), b.verify(4));
    }
    let hpl = HplConfig::tuned(30_000, 4);
    run("hpl".to_string(), hpl.verify(4));
    for b in hpcc::full_suite(&presets::xeon_e5462()) {
        run(b.id().to_string(), b.verify(4));
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failed} verification(s) failed");
        ExitCode::FAILURE
    }
}
