//! `hpceval` — command-line driver for the power evaluation method.
//!
//! ```text
//! hpceval servers                     list the built-in server presets
//! hpceval evaluate <server>           run the five-state evaluation
//! hpceval green500 <server>           peak-HPL PPW (the Green500 method)
//! hpceval specpower <server>          graduated-load ssj_ops/W
//! hpceval rankings                    all three methods on all presets
//! hpceval study <server>              §IV power study (Fig 3/4 series)
//! hpceval train [seed]                §VI regression on the Xeon-4870
//! hpceval monitor <server> [seed]     streaming monitor with fault injection
//! hpceval verify                      run every kernel's verification
//! hpceval trace capture|replay|stats  address-trace capture and replay (JSON)
//! hpceval fleet serve|route|submit|status|drain|shutdown|smoke|bench
//!                                     fault-tolerant orchestration daemon
//! hpceval tune sweep|frontier|report|smoke
//!                                     DVFS energy-optimal autotuner (JSON)
//! ```
//!
//! Unknown subcommands and malformed flags print usage and exit
//! non-zero (pinned by `tests/cli.rs`).

use std::process::ExitCode;

use hpceval::core::evaluation::Evaluator;
use hpceval::core::motivation::power_study;
use hpceval::core::rankings::{compare, green500_score, specpower_score};
use hpceval::core::regression_experiment::run_experiment;
use hpceval::kernels::hpcc;
use hpceval::kernels::hpl::HplConfig;
use hpceval::kernels::npb::ep::Ep;
use hpceval::kernels::npb::{Class, Program};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;
use hpceval::machine::spec::ServerSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("servers") => servers(),
        Some("evaluate") => with_server(&args, evaluate),
        Some("green500") => with_server(&args, |s| {
            println!(
                "{}: Green500-style peak-HPL PPW = {:.4} GFLOPS/W",
                s.name,
                green500_score(&s)
            );
            ExitCode::SUCCESS
        }),
        Some("specpower") => with_server(&args, |s| {
            println!("{}: SPECpower-style score = {:.1} ssj_ops/W", s.name, specpower_score(&s));
            ExitCode::SUCCESS
        }),
        Some("rankings") => rankings(),
        Some("report") => with_server(&args, |s| {
            print!("{}", hpceval::core::report::markdown_report(&s));
            ExitCode::SUCCESS
        }),
        Some("cluster") => with_server(&args, cluster),
        Some("study") => with_server(&args, study),
        Some("train") => match args.get(1) {
            None => train(42),
            Some(raw) => match raw.parse() {
                Ok(seed) => train(seed),
                Err(_) => {
                    eprintln!("seed must be an integer, got {raw:?}");
                    ExitCode::FAILURE
                }
            },
        },
        Some("monitor") => with_server(&args, |s| monitor(s, parse_seed(&args, 2))),
        Some("verify") => verify(),
        Some("trace") => trace_cmd(&args[1..]),
        Some("fleet") => fleet_cmd(&args[1..]),
        Some("tune") => tune_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: hpceval <servers|evaluate|green500|specpower|rankings|study|train|monitor|report|cluster|verify|trace|fleet|tune> [server|seed]"
            );
            eprintln!(
                "  monitor <server> [seed]: stream three simulated copies of <server> (one clean,\n\
                 \x20 one with meter dropout, one with a clock step) through the telemetry\n\
                 \x20 collector; prints live windowed power, the online RLS power-model\n\
                 \x20 coefficients, and every detected anomaly."
            );
            ExitCode::FAILURE
        }
    }
}

fn with_server(args: &[String], f: impl Fn(ServerSpec) -> ExitCode) -> ExitCode {
    let Some(name) = args.get(1) else {
        eprintln!("expected a server name; try `hpceval servers`");
        return ExitCode::FAILURE;
    };
    match presets::by_name(name) {
        Some(spec) => f(spec),
        None => {
            eprintln!("unknown server {name:?}; try `hpceval servers`");
            ExitCode::FAILURE
        }
    }
}

fn servers() -> ExitCode {
    println!(
        "{:<14} {:>6} {:>10} {:>14} {:>10}",
        "Name", "Cores", "Freq(MHz)", "Peak(GFLOPS)", "Mem(GiB)"
    );
    for s in presets::all_servers() {
        println!(
            "{:<14} {:>6} {:>10} {:>14.1} {:>10}",
            s.name,
            s.total_cores(),
            s.freq_mhz,
            s.peak_gflops(),
            s.memory_gib
        );
    }
    ExitCode::SUCCESS
}

fn evaluate(spec: ServerSpec) -> ExitCode {
    let table = Evaluator::new(spec).run();
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cluster(spec: ServerSpec) -> ExitCode {
    use hpceval::core::cluster::{scaling_study, Interconnect};
    println!("cluster scaling of {} nodes over gigabit ethernet:", spec.name);
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12}",
        "Nodes", "HPL(GFLOPS)", "Power(W)", "G500 PPW", "5-state PPW"
    );
    for s in scaling_study(&spec, Interconnect::gigabit_ethernet(), &[1, 2, 4, 8, 16, 32]) {
        println!(
            "{:>6} {:>14.1} {:>12.1} {:>12.4} {:>12.4}",
            s.nodes, s.hpl_gflops, s.hpl_power_w, s.green500_ppw, s.five_state_ppw
        );
    }
    ExitCode::SUCCESS
}

fn rankings() -> ExitCode {
    print!("{}", compare(&presets::all_servers()).render());
    ExitCode::SUCCESS
}

fn study(spec: ServerSpec) -> ExitCode {
    print!("{}", power_study(&spec, Class::C).render());
    ExitCode::SUCCESS
}

fn train(seed: u64) -> ExitCode {
    let spec = presets::xeon_4870();
    let Some(exp) = run_experiment(&spec, seed) else {
        eprintln!("training failed: degenerate sample set");
        return ExitCode::FAILURE;
    };
    let s = exp.model.summary();
    println!("trained on {} HPCC observations (seed {seed})", exp.observations);
    println!(
        "  R² {:.4}  adjusted {:.4}  std err {:.4}",
        s.r_square, s.adjusted_r_square, s.standard_error
    );
    println!("  coefficients (normalized): {:?}", exp.model.coefficients());
    println!("validation: NPB-B R² {:.4}, NPB-C R² {:.4}", exp.npb_b.r2, exp.npb_c.r2);
    ExitCode::SUCCESS
}

fn parse_seed(args: &[String], idx: usize) -> u64 {
    args.get(idx).and_then(|raw| raw.parse().ok()).unwrap_or(42)
}

fn monitor(spec: ServerSpec, seed: u64) -> ExitCode {
    use hpceval::telemetry::{LiveServer, Monitor, SampleSource};

    let full = spec.total_cores();
    let schedule = vec![
        ("ep.C.1".to_string(), Ep::new(Class::C).signature(), 1),
        (format!("ep.C.{full}"), Ep::new(Class::C).signature(), full),
        (
            format!("HPL P{full}"),
            HplConfig::for_memory_fraction(&spec, 0.92, full).signature(),
            full,
        ),
    ];
    let sources: Vec<Box<dyn SampleSource>> = vec![
        Box::new(LiveServer::new(0, format!("{}/clean", spec.name), &spec, &schedule, seed)),
        Box::new(
            LiveServer::new(1, format!("{}/dropout", spec.name), &spec, &schedule, seed + 1)
                .with_dropout(0.05),
        ),
        Box::new(
            LiveServer::new(2, format!("{}/clock-step", spec.name), &spec, &schedule, seed + 2)
                .with_clock_jump(90.0, -6.0),
        ),
    ];
    println!(
        "streaming {} programs on 3 copies of {} (seed {seed}; dropout + clock-step injected)",
        schedule.len(),
        spec.name
    );
    let report = Monitor::default().run_with(sources, |line| println!("{line}"));
    print!("{}", report.render());
    // Injections that go undetected are a monitor failure, not a pass.
    let skew_seen = report.servers[2].stats.clock_skew_rejects > 0;
    let dropout_seen = report.servers[1].stats.dropout_events > 0;
    if skew_seen && dropout_seen {
        ExitCode::SUCCESS
    } else {
        eprintln!("injected faults were not detected (skew {skew_seen}, dropout {dropout_seen})");
        ExitCode::FAILURE
    }
}

const TRACE_USAGE: &str = "\
usage: hpceval trace <capture|replay|stats> [flags]
  capture <kernel>  [--mode sampled|full] [--seed N] [--sample-one-in N]
                    capture the kernel's address trace; print a JSON summary
  replay  <kernel>  [--server NAME] [--mode sampled|full] [--seed N] [--sample-one-in N]
                    capture, then replay through the server's miniaturized
                    hierarchy; print replayed counters and the measured
                    locality profile as JSON
  stats             [--server NAME] [--seed N] [--mode sampled|full]
                    run the full trace-driven regression experiment;
                    print per-kernel profiles and the R² triple as JSON
  kernels: dgemm stream cg mg is randomaccess ft hpl ep sp bt lu
  --mode defaults to $HPCEVAL_TRACE, then to full";

fn trace_usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{TRACE_USAGE}");
    ExitCode::FAILURE
}

fn trace_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("capture") => trace_capture(&args[1..]),
        Some("replay") => trace_replay(&args[1..]),
        Some("stats") => trace_stats(&args[1..]),
        Some(other) => trace_usage_error(&format!("unknown trace subcommand {other:?}")),
        None => trace_usage_error("missing trace subcommand"),
    }
}

/// Capture config from `--mode/--seed/--sample-one-in` flags, with the
/// mode falling back to `HPCEVAL_TRACE` and then to `full`.
fn trace_config(flags: &[(&str, &str)]) -> Result<hpceval::trace::CaptureConfig, String> {
    use hpceval::trace::{CaptureConfig, TraceMode};
    let mode = match flag(flags, "mode") {
        Some(raw) => TraceMode::parse(raw).ok_or(format!("bad value {raw:?} for --mode"))?,
        None => match TraceMode::from_env() {
            TraceMode::Off => TraceMode::Full,
            m => m,
        },
    };
    if mode == TraceMode::Off {
        return Err("--mode off captures nothing".to_string());
    }
    let defaults = CaptureConfig::default();
    Ok(CaptureConfig {
        mode,
        seed: parse_flag(flags, "seed", defaults.seed)?,
        sample_one_in: parse_flag(flags, "sample-one-in", defaults.sample_one_in)?,
        ..defaults
    })
}

/// The one positional `<kernel>` argument as a trace region.
fn trace_region(positional: &[&str]) -> Result<hpceval::trace::Region, String> {
    match positional {
        [] => Err("expected a kernel name".to_string()),
        [name] => hpceval::trace::Region::parse(name).ok_or(format!("unknown kernel {name:?}")),
        [_, extra, ..] => Err(format!("unexpected argument {extra:?}")),
    }
}

/// The `--server` flag as a spec (default: the Xeon-4870, the paper's
/// regression testbed).
fn trace_server(flags: &[(&str, &str)]) -> Result<ServerSpec, String> {
    match flag(flags, "server") {
        None => Ok(presets::xeon_4870()),
        Some(name) => presets::by_name(name).ok_or(format!("unknown server {name:?}")),
    }
}

fn json_locality(p: &hpceval::machine::workload::LocalityProfile) -> String {
    format!(
        "{{\"l1_hit\":{},\"l2_hit\":{},\"l3_hit\":{},\"mem\":{},\"write_fraction\":{}}}",
        p.l1_hit, p.l2_hit, p.l3_hit, p.mem, p.write_fraction
    )
}

fn trace_capture(args: &[String]) -> ExitCode {
    let result = (|| -> Result<String, String> {
        let (flags, positional) = parse_flags(args, &["mode", "seed", "sample-one-in"])?;
        let region = trace_region(&positional)?;
        let config = trace_config(&flags)?;
        let trace = hpceval::core::trace_experiment::capture_kernel(region, config)
            .ok_or("capture produced no trace")?;
        let (reads, writes) = trace.access_split();
        Ok(format!(
            "{{\"kernel\":\"{}\",\"mode\":\"{}\",\"seed\":{},\"sample_one_in\":{},\
             \"chunks\":{},\"events\":{},\"accesses\":{},\"reads\":{},\"writes\":{},\
             \"dropped\":{},\"encoded_bytes\":{}}}",
            region.name(),
            trace.mode.name(),
            trace.seed,
            trace.sample_one_in,
            trace.chunks.len(),
            trace.total_events(),
            trace.total_accesses(),
            reads,
            writes,
            trace.dropped,
            trace.encode().len(),
        ))
    })();
    match result {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => trace_usage_error(&e),
    }
}

fn trace_replay(args: &[String]) -> ExitCode {
    use hpceval::core::trace_experiment::{analytic_locality, capture_kernel, replay_options};
    let result = (|| -> Result<String, String> {
        let (flags, positional) = parse_flags(args, &["server", "mode", "seed", "sample-one-in"])?;
        let region = trace_region(&positional)?;
        let config = trace_config(&flags)?;
        let spec = trace_server(&flags)?;
        let trace = capture_kernel(region, config).ok_or("capture produced no trace")?;
        let opts = replay_options(region);
        let counters = hpceval::trace::replay(&trace, &spec, opts);
        let measured = counters.locality_profile(&analytic_locality(region));
        Ok(format!(
            "{{\"kernel\":\"{}\",\"server\":\"{}\",\"cache_scale\":{},\
             \"accesses\":{},\"l1_hits\":{},\"l2_hits\":{},\"l3_hits\":{},\
             \"mem_reads\":{},\"mem_writes\":{},\"hit_ratio\":{},\
             \"measured\":{},\"analytic\":{}}}",
            region.name(),
            spec.name,
            opts.cache_scale,
            counters.accesses,
            counters.l1_hits,
            counters.l2_hits,
            counters.l3_hits,
            counters.mem_reads,
            counters.mem_writes,
            counters.hit_ratio(),
            json_locality(&measured),
            json_locality(&analytic_locality(region)),
        ))
    })();
    match result {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => trace_usage_error(&e),
    }
}

fn trace_stats(args: &[String]) -> ExitCode {
    use hpceval::core::trace_experiment::run_trace_experiment;
    let parsed = (|| -> Result<(ServerSpec, hpceval::trace::CaptureConfig, u64), String> {
        let (flags, positional) = parse_flags(args, &["server", "mode", "seed"])?;
        if let Some(extra) = positional.first() {
            return Err(format!("unexpected argument {extra:?}"));
        }
        Ok((trace_server(&flags)?, trace_config(&flags)?, parse_flag(&flags, "seed", 42u64)?))
    })();
    let (spec, config, seed) = match parsed {
        Ok(p) => p,
        Err(e) => return trace_usage_error(&e),
    };
    let Some(exp) = run_trace_experiment(&spec, config, seed) else {
        eprintln!("trace-driven training failed (capture off or degenerate sample set)");
        return ExitCode::FAILURE;
    };
    let kernels = exp
        .localities
        .captures
        .iter()
        .map(|c| {
            format!(
                "{{\"kernel\":\"{}\",\"events\":{},\"accesses\":{},\"dropped\":{},\
                 \"hit_ratio\":{},\"measured\":{}}}",
                c.kernel,
                c.events,
                c.accesses,
                c.dropped,
                c.hit_ratio,
                json_locality(&c.locality)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let s = exp.experiment.model.summary();
    println!(
        "{{\"server\":\"{}\",\"mode\":\"{}\",\"seed\":{},\"observations\":{},\
         \"kernels\":[{kernels}],\
         \"train_r2\":{},\"npb_b_r2\":{},\"npb_c_r2\":{}}}",
        spec.name,
        config.mode.name(),
        seed,
        exp.experiment.observations,
        s.r_square,
        exp.experiment.npb_b.r2,
        exp.experiment.npb_c.r2,
    );
    ExitCode::SUCCESS
}

const FLEET_USAGE: &str = "\
usage: hpceval fleet <serve|route|submit|status|drain|shutdown|smoke|bench> [flags]
  serve    --wal <path> [--addr HOST:PORT] [--workers N] [--queue-cap N]
           [--max-attempts N] [--crash-p X] [--straggler-p X]
           [--dropout-p X] [--fault-seed N]
  route    --shards ADDR[,ADDR...] [--addr HOST:PORT]
           fan-out router over running shard daemons (shard order is
           baked into global job ids — keep it stable across restarts)
  submit   [--addr HOST:PORT] <kind>:<server>[:<seed>] ...
           kinds: evaluate green500 specpower train report
  status   [--addr HOST:PORT] [--job N]
  drain    [--addr HOST:PORT]
  shutdown [--addr HOST:PORT]
  smoke    [--seed N]   self-contained daemon smoke test (CI entry point)
  bench    [--ops N] [--shards N[,N..]] [--clients N[,N..]]
           [--pipeline-depth N[,N..]] [--submit-every N]
           [--check BENCH_fleet.json] [--tolerance X]
           in-process sustained load through the pipelined router;
           comma lists sweep their cartesian product (default sweeps
           2,4,8 shards) into per-configuration p50/p99 latency and
           ops/s, optional drift check against a suite baseline";

const DEFAULT_ADDR: &str = "127.0.0.1:7621";
const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:7620";

/// `(--key, value)` pairs plus the leftover positional arguments.
type ParsedArgs<'a> = (Vec<(&'a str, &'a str)>, Vec<&'a str>);

/// `--key value` flag scanner; rejects unknown flags so typos fail
/// loudly instead of being silently ignored.
fn parse_flags<'a>(args: &'a [String], known: &[&str]) -> Result<ParsedArgs<'a>, String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if !known.contains(&key) {
                return Err(format!("unknown flag --{key}"));
            }
            let Some(value) = it.next() else {
                return Err(format!("flag --{key} needs a value"));
            };
            flags.push((key, value.as_str()));
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

fn parse_flag<T: std::str::FromStr>(
    flags: &[(&str, &str)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match flag(flags, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("bad value {raw:?} for --{key}")),
    }
}

fn fleet_usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{FLEET_USAGE}");
    ExitCode::FAILURE
}

fn fleet_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("serve") => fleet_serve(&args[1..]),
        Some("route") => fleet_route(&args[1..]),
        Some("bench") => fleet_bench(&args[1..]),
        Some("submit") => fleet_submit(&args[1..]),
        Some("status") => fleet_status(&args[1..]),
        Some("drain") => fleet_drain(&args[1..]),
        Some("shutdown") => fleet_shutdown(&args[1..]),
        Some("smoke") => fleet_smoke(&args[1..]),
        Some(other) => fleet_usage_error(&format!("unknown fleet subcommand {other:?}")),
        None => fleet_usage_error("missing fleet subcommand"),
    }
}

fn fleet_serve(args: &[String]) -> ExitCode {
    use hpceval::fleet::{FaultPlan, Fleet, FleetConfig, Registry};

    let parsed = parse_flags(
        args,
        &[
            "wal",
            "addr",
            "workers",
            "queue-cap",
            "max-attempts",
            "crash-p",
            "straggler-p",
            "dropout-p",
            "fault-seed",
        ],
    );
    let (flags, positional) = match parsed {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let Some(wal) = flag(&flags, "wal") else {
        return fleet_usage_error("serve requires --wal <path>");
    };
    let addr = flag(&flags, "addr").unwrap_or(DEFAULT_ADDR);
    let config = match (|| -> Result<FleetConfig, String> {
        Ok(FleetConfig {
            workers: parse_flag(&flags, "workers", 0)?,
            queue_cap: parse_flag(&flags, "queue-cap", 256)?,
            max_attempts: parse_flag(&flags, "max-attempts", 4)?,
            faults: FaultPlan {
                crash_p: parse_flag(&flags, "crash-p", 0.0)?,
                straggler_p: parse_flag(&flags, "straggler-p", 0.0)?,
                dropout_p: parse_flag(&flags, "dropout-p", 0.0)?,
                seed: parse_flag(&flags, "fault-seed", 0)?,
            },
            ..FleetConfig::default()
        })
    })() {
        Ok(c) => c,
        Err(e) => return fleet_usage_error(&e),
    };

    let fleet = match Fleet::open(config, Registry::with_presets(), std::path::Path::new(wal)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let restored = fleet.status(None).len();
    println!(
        "fleet daemon listening on {} ({restored} job(s) restored from WAL)",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string())
    );
    let scheduler = fleet.start_scheduler();
    let result = fleet.serve(listener);
    scheduler.join().expect("scheduler thread");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daemon error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fleet_route(args: &[String]) -> ExitCode {
    use hpceval::fleet::Router;

    let (flags, positional) = match parse_flags(args, &["shards", "addr"]) {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let Some(shards) = flag(&flags, "shards") else {
        return fleet_usage_error("route requires --shards ADDR[,ADDR...]");
    };
    let shard_addrs: Vec<&str> = shards.split(',').filter(|s| !s.is_empty()).collect();
    if shard_addrs.is_empty() {
        return fleet_usage_error("--shards needs at least one daemon address");
    }
    let addr = flag(&flags, "addr").unwrap_or(DEFAULT_ROUTER_ADDR);
    let router = match Router::connect(&shard_addrs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot connect to shards: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fleet router listening on {} over {} shard(s)",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string()),
        router.shard_count()
    );
    match router.serve(listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("router error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a comma list of positive integers for sweep flags.
fn parse_usize_list(key: &str, raw: &str) -> Result<Vec<usize>, String> {
    let vals: Vec<usize> = raw
        .split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(v) if v >= 1 => Ok(v),
            _ => Err(format!("bad value {s:?} for --{key} (want positive integers, e.g. 2,4,8)")),
        })
        .collect::<Result<_, _>>()?;
    if vals.is_empty() {
        return Err(format!("--{key} needs at least one value"));
    }
    Ok(vals)
}

/// Scaled-down sustained-load gate (CI runs this in every matrix leg
/// with `--ops` small, one swept configuration, and `--check
/// BENCH_fleet.json`; the committed baseline itself comes from the
/// full `fleet_bench` bin sweep).
fn fleet_bench(args: &[String]) -> ExitCode {
    use hpceval::fleet::bench::{check_suite, expand_configs, parse_baseline, DEFAULT_SHARD_SWEEP};
    use hpceval::fleet::{run_suite, BenchOptions};

    let parsed = parse_flags(
        args,
        &["ops", "shards", "clients", "pipeline-depth", "submit-every", "check", "tolerance"],
    );
    let (flags, positional) = match parsed {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let defaults = BenchOptions::default();
    let base = match (|| -> Result<BenchOptions, String> {
        Ok(BenchOptions {
            ops: parse_flag(&flags, "ops", defaults.ops)?,
            submit_every: parse_flag(&flags, "submit-every", defaults.submit_every)?,
            ..defaults.clone()
        })
    })() {
        Ok(o) => o,
        Err(e) => return fleet_usage_error(&e),
    };
    let swept = |key: &str, default: Vec<usize>| -> Result<Vec<usize>, String> {
        match flag(&flags, key) {
            None => Ok(default),
            Some(raw) => parse_usize_list(key, raw),
        }
    };
    let shards = match swept("shards", DEFAULT_SHARD_SWEEP.to_vec()) {
        Ok(v) => v,
        Err(e) => return fleet_usage_error(&e),
    };
    let clients = match swept("clients", vec![defaults.clients]) {
        Ok(v) => v,
        Err(e) => return fleet_usage_error(&e),
    };
    let depths = match swept("pipeline-depth", vec![defaults.pipeline_depth]) {
        Ok(v) => v,
        Err(e) => return fleet_usage_error(&e),
    };
    let tolerance = match parse_flag(&flags, "tolerance", 3.0f64) {
        Ok(t) if t >= 0.0 && t.is_finite() => t,
        _ => return fleet_usage_error("--tolerance takes a non-negative number"),
    };

    let configs = expand_configs(&base, &shards, &clients, &depths);
    let suite = match run_suite(&configs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fleet bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (key, report) in &suite.configs {
        println!(
            "[{key}] {} ops over {} client(s), {} shard(s), depth {}: {:.2}s, {} job(s) completed",
            report.ops,
            report.clients,
            report.shards,
            report.pipeline_depth,
            report.elapsed_s,
            report.jobs_completed
        );
        for (name, value) in &report.metrics {
            println!("  {name}: {value:.1}");
        }
    }

    let Some(path) = flag(&flags, "check") else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|s| parse_baseline(&s))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = check_suite(&baseline, &suite, tolerance);
    if failures.is_empty() {
        println!(
            "fleet perf check passed: {} configuration(s) within tolerance {tolerance}",
            suite.configs.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("fleet perf check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}

/// Parse `kind:server[:seed]` job specs.
fn parse_job_specs(specs: &[&str]) -> Result<Vec<hpceval::fleet::JobKind>, String> {
    use hpceval::fleet::JobKind;
    if specs.is_empty() {
        return Err("submit needs at least one <kind>:<server>[:<seed>] spec".to_string());
    }
    specs
        .iter()
        .map(|spec| {
            let mut parts = spec.splitn(3, ':');
            let kind = parts.next().unwrap_or_default();
            let server =
                parts.next().ok_or_else(|| format!("{spec:?} lacks a server name"))?.to_string();
            let seed = match parts.next() {
                None => 42,
                Some(raw) => raw.parse().map_err(|_| format!("bad seed {raw:?} in {spec:?}"))?,
            };
            match kind {
                "evaluate" => Ok(JobKind::Evaluate { server, seed }),
                "green500" => Ok(JobKind::Green500 { server }),
                "specpower" => Ok(JobKind::Specpower { server }),
                "train" => Ok(JobKind::Train { server, seed }),
                "report" => Ok(JobKind::Report { server }),
                other => Err(format!("unknown job kind {other:?} in {spec:?}")),
            }
        })
        .collect()
}

fn connect(flags: &[(&str, &str)]) -> Result<hpceval::fleet::FleetClient, ExitCode> {
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    hpceval::fleet::FleetClient::connect(addr).map_err(|e| {
        eprintln!("cannot reach fleet daemon at {addr}: {e}");
        ExitCode::FAILURE
    })
}

fn print_jobs(jobs: &[hpceval::fleet::RemoteJob]) {
    println!(
        "{:>5} {:<10} {:<14} {:<9} {:>8} {:>7} {:>10}  notes",
        "Job", "Kind", "Server", "State", "Rows", "Tries", "Score"
    );
    for j in jobs {
        let score = j.score.map_or_else(|| "-".to_string(), |s| format!("{s:.4}"));
        println!(
            "{:>5} {:<10} {:<14} {:<9} {:>5}/{:<2} {:>7} {:>10}  {}",
            j.id,
            j.kind,
            j.server,
            j.state,
            j.rows_done,
            j.total_steps,
            j.attempts,
            score,
            j.notes.join("; ")
        );
    }
}

fn fleet_submit(args: &[String]) -> ExitCode {
    let (flags, positional) = match parse_flags(args, &["addr"]) {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    let jobs = match parse_job_specs(&positional) {
        Ok(j) => j,
        Err(e) => return fleet_usage_error(&e),
    };
    let mut client = match connect(&flags) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.submit_with_backoff(jobs, 10) {
        Ok(ids) => {
            println!(
                "accepted {} job(s): {}",
                ids.len(),
                ids.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fleet_status(args: &[String]) -> ExitCode {
    let (flags, positional) = match parse_flags(args, &["addr", "job"]) {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let job = match flag(&flags, "job").map(str::parse).transpose() {
        Ok(j) => j,
        Err(_) => return fleet_usage_error("--job takes a numeric id"),
    };
    let mut client = match connect(&flags) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.status(job) {
        Ok(jobs) => {
            print_jobs(&jobs);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("status failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fleet_drain(args: &[String]) -> ExitCode {
    let (flags, positional) = match parse_flags(args, &["addr"]) {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let mut client = match connect(&flags) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.drain() {
        Ok(jobs) => {
            print_jobs(&jobs);
            let failed = jobs.iter().filter(|j| j.state == "Failed").count();
            let degraded = jobs.iter().filter(|j| j.state == "Degraded").count();
            println!("drained: {} job(s), {} degraded, {} failed", jobs.len(), degraded, failed);
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fleet_shutdown(args: &[String]) -> ExitCode {
    let (flags, positional) = match parse_flags(args, &["addr"]) {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let mut client = match connect(&flags) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.shutdown() {
        Ok(()) => {
            println!("daemon stopping");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Self-contained smoke test: daemon on an ephemeral port, evaluate +
/// train submitted over TCP, one node crash injected, queue drained;
/// success iff every job ends Done or Degraded. This is the CI entry
/// point for the fleet matrix job.
fn fleet_smoke(args: &[String]) -> ExitCode {
    use hpceval::fleet::{EventKind, FaultPlan, Fleet, FleetClient, FleetConfig, Registry};

    let (flags, positional) = match parse_flags(args, &["seed"]) {
        Ok(p) => p,
        Err(e) => return fleet_usage_error(&e),
    };
    if !positional.is_empty() {
        return fleet_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let seed = match parse_flag(&flags, "seed", 2015u64) {
        Ok(s) => s,
        Err(e) => return fleet_usage_error(&e),
    };

    let wal = std::env::temp_dir().join(format!("hpceval-smoke-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let config = FleetConfig {
        max_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        crash_holdoff_ms: 2,
        // High enough that this seeded run provably injects a crash.
        faults: FaultPlan { crash_p: 0.35, straggler_p: 0.2, dropout_p: 0.1, seed },
        ..FleetConfig::default()
    };
    let fleet = match Fleet::open(config, Registry::with_presets(), &wal) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("smoke: cannot open fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("smoke: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound socket has an address");
    let scheduler = fleet.start_scheduler();
    let server = {
        let fleet = std::sync::Arc::clone(&fleet);
        std::thread::spawn(move || fleet.serve(listener))
    };

    let outcome = (|| -> Result<Vec<hpceval::fleet::RemoteJob>, hpceval::fleet::FleetError> {
        let mut client = FleetClient::connect(addr)?;
        client.ping()?;
        let mut jobs = Vec::new();
        for (k, name) in ["xeon-e5462", "opteron-8347", "xeon-4870"].iter().enumerate() {
            jobs.push(hpceval::fleet::JobKind::Evaluate {
                server: (*name).to_string(),
                seed: seed + k as u64,
            });
        }
        jobs.push(hpceval::fleet::JobKind::Train { server: "xeon-4870".to_string(), seed });
        jobs.push(hpceval::fleet::JobKind::Green500 { server: "xeon-e5462".to_string() });
        client.submit_with_backoff(jobs, 20)?;
        client.drain()
    })();

    let crashes = fleet
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::NodeCrashed))
        .count();
    // Tear the daemon down regardless of the verdict.
    fleet.request_shutdown();
    scheduler.join().expect("scheduler thread");
    let _ = server.join().expect("server thread");
    let _ = std::fs::remove_file(&wal);

    let jobs = match outcome {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("smoke: client error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_jobs(&jobs);
    let bad: Vec<_> = jobs.iter().filter(|j| j.state != "Done" && j.state != "Degraded").collect();
    println!(
        "smoke: {} job(s) drained, {} node crash(es) injected, {} degraded",
        jobs.len(),
        crashes,
        jobs.iter().filter(|j| j.state == "Degraded").count()
    );
    if jobs.len() == 5 && bad.is_empty() && crashes > 0 {
        println!("smoke: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke: FAILED (crashes={crashes}, non-terminal/failed jobs: {bad:?})");
        ExitCode::FAILURE
    }
}

const TUNE_USAGE: &str = "\
usage: hpceval tune <sweep|frontier|report|smoke> [flags]
  sweep    [--servers A,B] [--kernels a,b] [--seed N] [--max-states N]
           [--shards N] [--crash-p X] [--straggler-p X] [--dropout-p X]
           [--fault-seed N] [--check BENCH_tune.json] [--tolerance X]
           run every planned DVFS cell as a WAL-backed fleet job through
           the sharded router; print the strict-JSON report and
           optionally drift-check it against a committed baseline
  frontier [--servers A,B] [--kernels a,b] [--seed N] [--max-states N]
           measure the cells in-process and print each server's §V
           score with its per-kernel energy-delay Pareto frontiers
  report   [--servers A,B] [--kernels a,b] [--seed N] [--max-states N]
           [--check BENCH_tune.json] [--tolerance X]
           measure in-process and print the full report JSON (the
           regeneration path for BENCH_tune.json)
  smoke    [--shards N]   tiny fault-injected sweep (two kernels, two
           DVFS states) cross-checked bitwise against the in-process
           measurement; the CI entry point for the tune matrix job
  --servers/--kernels default to the three paper presets and the full
  NPB + HPCC catalog; --max-states 0 sweeps every DVFS state";

fn tune_usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{TUNE_USAGE}");
    ExitCode::FAILURE
}

fn tune_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("sweep") => tune_sweep(&args[1..]),
        Some("frontier") => tune_frontier(&args[1..]),
        Some("report") => tune_report(&args[1..]),
        Some("smoke") => tune_smoke(&args[1..]),
        Some(other) => tune_usage_error(&format!("unknown tune subcommand {other:?}")),
        None => tune_usage_error("missing tune subcommand"),
    }
}

/// The `--servers/--kernels/--seed/--max-states` flags as sweep options.
fn tune_options(flags: &[(&str, &str)]) -> Result<hpceval::tune::SweepOptions, String> {
    let defaults = hpceval::tune::SweepOptions::default();
    let list = |key: &str, default: Vec<String>| -> Vec<String> {
        match flag(flags, key) {
            None => default,
            Some(raw) => raw.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect(),
        }
    };
    let opts = hpceval::tune::SweepOptions {
        servers: list("servers", defaults.servers),
        kernels: list("kernels", defaults.kernels),
        seed: parse_flag(flags, "seed", defaults.seed)?,
        max_states: parse_flag(flags, "max-states", defaults.max_states)?,
    };
    if opts.servers.is_empty() {
        return Err("--servers needs at least one preset name".to_string());
    }
    if opts.kernels.is_empty() {
        return Err("--kernels needs at least one kernel id".to_string());
    }
    Ok(opts)
}

/// Optional `--check <baseline> [--tolerance X]` gate on a built report.
fn tune_check(report: &hpceval::tune::TuneReport, flags: &[(&str, &str)]) -> ExitCode {
    use hpceval::tune::{check, parse_baseline};
    let Some(path) = flag(flags, "check") else {
        return ExitCode::SUCCESS;
    };
    let tolerance = match parse_flag(flags, "tolerance", 0.001f64) {
        Ok(t) if t >= 0.0 && t.is_finite() => t,
        _ => return tune_usage_error("--tolerance takes a non-negative number"),
    };
    let baseline = match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|s| parse_baseline(&s))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = check(&baseline, report, tolerance);
    if failures.is_empty() {
        eprintln!("tune check passed: {} metrics within tolerance {tolerance}", baseline.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("tune check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}

/// Run the planned cells in-process (no fleet) — the analysis path
/// `tune frontier`/`tune report` share; the fleet path is proven
/// bitwise-identical by `tests/tune_sweep.rs`.
fn tune_measure_inline(
    opts: &hpceval::tune::SweepOptions,
) -> Result<Vec<hpceval::tune::CellResult>, String> {
    let cells = hpceval::tune::plan_sweep(opts)?;
    cells
        .into_iter()
        .map(|cell| {
            hpceval::tune::run_cell(&cell)
                .map(|measure| hpceval::tune::CellResult { cell, measure })
        })
        .collect()
}

fn tune_sweep(args: &[String]) -> ExitCode {
    use hpceval::fleet::{run_sweep, FaultPlan, SweepConfig};
    let parsed = parse_flags(
        args,
        &[
            "servers",
            "kernels",
            "seed",
            "max-states",
            "shards",
            "crash-p",
            "straggler-p",
            "dropout-p",
            "fault-seed",
            "check",
            "tolerance",
        ],
    );
    let (flags, positional) = match parsed {
        Ok(p) => p,
        Err(e) => return tune_usage_error(&e),
    };
    if !positional.is_empty() {
        return tune_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let (opts, config) = match (|| -> Result<_, String> {
        let opts = tune_options(&flags)?;
        let config = SweepConfig {
            shards: parse_flag(&flags, "shards", 2usize)?,
            faults: FaultPlan {
                crash_p: parse_flag(&flags, "crash-p", 0.0)?,
                straggler_p: parse_flag(&flags, "straggler-p", 0.0)?,
                dropout_p: parse_flag(&flags, "dropout-p", 0.0)?,
                seed: parse_flag(&flags, "fault-seed", 0)?,
            },
            wal_dir: None,
        };
        Ok((opts, config))
    })() {
        Ok(p) => p,
        Err(e) => return tune_usage_error(&e),
    };
    let cells = match hpceval::tune::plan_sweep(&opts) {
        Ok(c) => c,
        Err(e) => return tune_usage_error(&e),
    };
    let results = match run_sweep(&cells, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tune sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = hpceval::tune::build_report(&results, opts.seed);
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("cannot encode report: {e}");
            return ExitCode::FAILURE;
        }
    }
    tune_check(&report, &flags)
}

fn tune_frontier(args: &[String]) -> ExitCode {
    let (flags, positional) = match parse_flags(args, &["servers", "kernels", "seed", "max-states"])
    {
        Ok(p) => p,
        Err(e) => return tune_usage_error(&e),
    };
    if !positional.is_empty() {
        return tune_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let report = match tune_options(&flags).and_then(|opts| {
        tune_measure_inline(&opts).map(|r| hpceval::tune::build_report(&r, opts.seed))
    }) {
        Ok(r) => r,
        Err(e) => return tune_usage_error(&e),
    };
    match serde_json::to_string_pretty(&report.servers) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot encode frontiers: {e}");
            ExitCode::FAILURE
        }
    }
}

fn tune_report(args: &[String]) -> ExitCode {
    let parsed =
        parse_flags(args, &["servers", "kernels", "seed", "max-states", "check", "tolerance"]);
    let (flags, positional) = match parsed {
        Ok(p) => p,
        Err(e) => return tune_usage_error(&e),
    };
    if !positional.is_empty() {
        return tune_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let report = match tune_options(&flags).and_then(|opts| {
        tune_measure_inline(&opts).map(|r| hpceval::tune::build_report(&r, opts.seed))
    }) {
        Ok(r) => r,
        Err(e) => return tune_usage_error(&e),
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("cannot encode report: {e}");
            return ExitCode::FAILURE;
        }
    }
    tune_check(&report, &flags)
}

/// Self-contained tune smoke test: a tiny two-kernel, two-state sweep
/// runs as fleet jobs with crashes and meter dropouts injected, and
/// every measured cell must come back bitwise-identical to the direct
/// in-process measurement. This is the CI entry point for the tune
/// matrix job.
fn tune_smoke(args: &[String]) -> ExitCode {
    use hpceval::fleet::{run_sweep, FaultPlan, SweepConfig};
    let (flags, positional) = match parse_flags(args, &["shards"]) {
        Ok(p) => p,
        Err(e) => return tune_usage_error(&e),
    };
    if !positional.is_empty() {
        return tune_usage_error(&format!("unexpected argument {:?}", positional[0]));
    }
    let shards = match parse_flag(&flags, "shards", 2usize) {
        Ok(s) if s > 0 => s,
        _ => return tune_usage_error("--shards takes a positive integer"),
    };
    let opts = hpceval::tune::SweepOptions {
        servers: vec!["Xeon-E5462".to_string()],
        kernels: vec!["ep".to_string(), "stream".to_string()],
        max_states: 2,
        ..hpceval::tune::SweepOptions::default()
    };
    let cells = match hpceval::tune::plan_sweep(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tune smoke: planning failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = SweepConfig {
        shards,
        faults: FaultPlan { crash_p: 0.2, straggler_p: 0.1, dropout_p: 0.3, seed: 11 },
        wal_dir: None,
    };
    let results = match run_sweep(&cells, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tune smoke: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut mismatches = 0;
    for r in &results {
        match hpceval::tune::run_cell(&r.cell) {
            Ok(direct) if direct == r.measure => {}
            other => {
                eprintln!("tune smoke: {:?} diverged from direct measurement: {other:?}", r.cell);
                mismatches += 1;
            }
        }
    }
    let frontiers = hpceval::tune::kernel_frontiers(&results);
    println!(
        "tune smoke: {} cell(s) over {} shard(s) with faults injected, {} frontier(s)",
        results.len(),
        shards,
        frontiers.len()
    );
    if results.len() == cells.len() && mismatches == 0 && frontiers.len() == 2 {
        println!("tune smoke: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tune smoke: FAILED ({} of {} cells, {mismatches} mismatch(es))",
            results.len(),
            cells.len()
        );
        ExitCode::FAILURE
    }
}

fn verify() -> ExitCode {
    let mut failed = 0;
    let mut run = |name: String, out: hpceval::kernels::suite::VerifyOutcome| {
        println!("{:<14} {:<5} {}", name, if out.passed { "ok" } else { "FAIL" }, out.detail);
        if !out.passed {
            failed += 1;
        }
    };
    for prog in Program::ALL {
        let b = prog.benchmark(Class::C);
        run(b.display_name(), b.verify(4));
    }
    let hpl = HplConfig::tuned(30_000, 4);
    run("hpl".to_string(), hpl.verify(4));
    for b in hpcc::full_suite(&presets::xeon_e5462()) {
        run(b.id().to_string(), b.verify(4));
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failed} verification(s) failed");
        ExitCode::FAILURE
    }
}
