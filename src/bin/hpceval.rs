//! `hpceval` — command-line driver for the power evaluation method.
//!
//! ```text
//! hpceval servers                     list the built-in server presets
//! hpceval evaluate <server>           run the five-state evaluation
//! hpceval green500 <server>           peak-HPL PPW (the Green500 method)
//! hpceval specpower <server>          graduated-load ssj_ops/W
//! hpceval rankings                    all three methods on all presets
//! hpceval study <server>              §IV power study (Fig 3/4 series)
//! hpceval train [seed]                §VI regression on the Xeon-4870
//! hpceval monitor <server> [seed]     streaming monitor with fault injection
//! hpceval verify                      run every kernel's verification
//! ```

use std::process::ExitCode;

use hpceval::core::evaluation::Evaluator;
use hpceval::core::motivation::power_study;
use hpceval::core::rankings::{compare, green500_score, specpower_score};
use hpceval::core::regression_experiment::run_experiment;
use hpceval::kernels::hpcc;
use hpceval::kernels::hpl::HplConfig;
use hpceval::kernels::npb::ep::Ep;
use hpceval::kernels::npb::{Class, Program};
use hpceval::kernels::suite::Benchmark;
use hpceval::machine::presets;
use hpceval::machine::spec::ServerSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("servers") => servers(),
        Some("evaluate") => with_server(&args, evaluate),
        Some("green500") => with_server(&args, |s| {
            println!(
                "{}: Green500-style peak-HPL PPW = {:.4} GFLOPS/W",
                s.name,
                green500_score(&s)
            );
            ExitCode::SUCCESS
        }),
        Some("specpower") => with_server(&args, |s| {
            println!("{}: SPECpower-style score = {:.1} ssj_ops/W", s.name, specpower_score(&s));
            ExitCode::SUCCESS
        }),
        Some("rankings") => rankings(),
        Some("report") => with_server(&args, |s| {
            print!("{}", hpceval::core::report::markdown_report(&s));
            ExitCode::SUCCESS
        }),
        Some("cluster") => with_server(&args, cluster),
        Some("study") => with_server(&args, study),
        Some("train") => match args.get(1) {
            None => train(42),
            Some(raw) => match raw.parse() {
                Ok(seed) => train(seed),
                Err(_) => {
                    eprintln!("seed must be an integer, got {raw:?}");
                    ExitCode::FAILURE
                }
            },
        },
        Some("monitor") => with_server(&args, |s| monitor(s, parse_seed(&args, 2))),
        Some("verify") => verify(),
        _ => {
            eprintln!(
                "usage: hpceval <servers|evaluate|green500|specpower|rankings|study|train|monitor|report|cluster|verify> [server|seed]"
            );
            eprintln!(
                "  monitor <server> [seed]: stream three simulated copies of <server> (one clean,\n\
                 \x20 one with meter dropout, one with a clock step) through the telemetry\n\
                 \x20 collector; prints live windowed power, the online RLS power-model\n\
                 \x20 coefficients, and every detected anomaly."
            );
            ExitCode::FAILURE
        }
    }
}

fn with_server(args: &[String], f: impl Fn(ServerSpec) -> ExitCode) -> ExitCode {
    let Some(name) = args.get(1) else {
        eprintln!("expected a server name; try `hpceval servers`");
        return ExitCode::FAILURE;
    };
    match presets::by_name(name) {
        Some(spec) => f(spec),
        None => {
            eprintln!("unknown server {name:?}; try `hpceval servers`");
            ExitCode::FAILURE
        }
    }
}

fn servers() -> ExitCode {
    println!(
        "{:<14} {:>6} {:>10} {:>14} {:>10}",
        "Name", "Cores", "Freq(MHz)", "Peak(GFLOPS)", "Mem(GiB)"
    );
    for s in presets::all_servers() {
        println!(
            "{:<14} {:>6} {:>10} {:>14.1} {:>10}",
            s.name,
            s.total_cores(),
            s.freq_mhz,
            s.peak_gflops(),
            s.memory_gib
        );
    }
    ExitCode::SUCCESS
}

fn evaluate(spec: ServerSpec) -> ExitCode {
    let table = Evaluator::new(spec).run();
    print!("{}", table.render());
    ExitCode::SUCCESS
}

fn cluster(spec: ServerSpec) -> ExitCode {
    use hpceval::core::cluster::{scaling_study, Interconnect};
    println!("cluster scaling of {} nodes over gigabit ethernet:", spec.name);
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12}",
        "Nodes", "HPL(GFLOPS)", "Power(W)", "G500 PPW", "5-state PPW"
    );
    for s in scaling_study(&spec, Interconnect::gigabit_ethernet(), &[1, 2, 4, 8, 16, 32]) {
        println!(
            "{:>6} {:>14.1} {:>12.1} {:>12.4} {:>12.4}",
            s.nodes, s.hpl_gflops, s.hpl_power_w, s.green500_ppw, s.five_state_ppw
        );
    }
    ExitCode::SUCCESS
}

fn rankings() -> ExitCode {
    print!("{}", compare(&presets::all_servers()).render());
    ExitCode::SUCCESS
}

fn study(spec: ServerSpec) -> ExitCode {
    print!("{}", power_study(&spec, Class::C).render());
    ExitCode::SUCCESS
}

fn train(seed: u64) -> ExitCode {
    let spec = presets::xeon_4870();
    let Some(exp) = run_experiment(&spec, seed) else {
        eprintln!("training failed: degenerate sample set");
        return ExitCode::FAILURE;
    };
    let s = exp.model.summary();
    println!("trained on {} HPCC observations (seed {seed})", exp.observations);
    println!(
        "  R² {:.4}  adjusted {:.4}  std err {:.4}",
        s.r_square, s.adjusted_r_square, s.standard_error
    );
    println!("  coefficients (normalized): {:?}", exp.model.coefficients());
    println!("validation: NPB-B R² {:.4}, NPB-C R² {:.4}", exp.npb_b.r2, exp.npb_c.r2);
    ExitCode::SUCCESS
}

fn parse_seed(args: &[String], idx: usize) -> u64 {
    args.get(idx).and_then(|raw| raw.parse().ok()).unwrap_or(42)
}

fn monitor(spec: ServerSpec, seed: u64) -> ExitCode {
    use hpceval::telemetry::{LiveServer, Monitor, SampleSource};

    let full = spec.total_cores();
    let schedule = vec![
        ("ep.C.1".to_string(), Ep::new(Class::C).signature(), 1),
        (format!("ep.C.{full}"), Ep::new(Class::C).signature(), full),
        (
            format!("HPL P{full}"),
            HplConfig::for_memory_fraction(&spec, 0.92, full).signature(),
            full,
        ),
    ];
    let sources: Vec<Box<dyn SampleSource>> = vec![
        Box::new(LiveServer::new(0, format!("{}/clean", spec.name), &spec, &schedule, seed)),
        Box::new(
            LiveServer::new(1, format!("{}/dropout", spec.name), &spec, &schedule, seed + 1)
                .with_dropout(0.05),
        ),
        Box::new(
            LiveServer::new(2, format!("{}/clock-step", spec.name), &spec, &schedule, seed + 2)
                .with_clock_jump(90.0, -6.0),
        ),
    ];
    println!(
        "streaming {} programs on 3 copies of {} (seed {seed}; dropout + clock-step injected)",
        schedule.len(),
        spec.name
    );
    let report = Monitor::default().run_with(sources, |line| println!("{line}"));
    print!("{}", report.render());
    // Injections that go undetected are a monitor failure, not a pass.
    let skew_seen = report.servers[2].stats.clock_skew_rejects > 0;
    let dropout_seen = report.servers[1].stats.dropout_events > 0;
    if skew_seen && dropout_seen {
        ExitCode::SUCCESS
    } else {
        eprintln!("injected faults were not detected (skew {skew_seen}, dropout {dropout_seen})");
        ExitCode::FAILURE
    }
}

fn verify() -> ExitCode {
    let mut failed = 0;
    let mut run = |name: String, out: hpceval::kernels::suite::VerifyOutcome| {
        println!("{:<14} {:<5} {}", name, if out.passed { "ok" } else { "FAIL" }, out.detail);
        if !out.passed {
            failed += 1;
        }
    };
    for prog in Program::ALL {
        let b = prog.benchmark(Class::C);
        run(b.display_name(), b.verify(4));
    }
    let hpl = HplConfig::tuned(30_000, 4);
    run("hpl".to_string(), hpl.verify(4));
    for b in hpcc::full_suite(&presets::xeon_e5462()) {
        run(b.id().to_string(), b.verify(4));
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failed} verification(s) failed");
        ExitCode::FAILURE
    }
}
