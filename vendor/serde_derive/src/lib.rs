//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` generates a real `serde::Serialize` impl by
//! walking the item's tokens directly (the container has no crates.io
//! access, hence no `syn`/`quote`): named-field structs serialize to a
//! `serde::Value::Map` in declaration order, unit enum variants to
//! their name as a string, and tuple variants to externally-tagged
//! objects — matching real serde's JSON shape for this subset.
//! Unsupported shapes (generics, tuple structs, named-field variants
//! are fine; lifetimes/const generics are not) fail the build with a
//! clear message rather than silently serializing wrong.
//!
//! `#[derive(Deserialize)]` remains a no-op: the vendored `serde`
//! keeps `Deserialize` as a blanket marker trait.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct or an enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let item = parse_item(&tokens);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", pairs.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| v.match_arm(&item.name)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named field identifiers, declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Named-field variant.
    Named(Vec<String>),
}

impl Variant {
    fn match_arm(&self, enum_name: &str) -> String {
        let v = &self.name;
        match &self.shape {
            VariantShape::Unit => {
                format!("{enum_name}::{v} => serde::Value::Str(\"{v}\".to_string()),")
            }
            VariantShape::Tuple(1) => format!(
                "{enum_name}::{v}(f0) => serde::Value::Map(vec![(\"{v}\".to_string(), \
                 serde::Serialize::to_value(f0))]),"
            ),
            VariantShape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                let vals: Vec<String> =
                    binds.iter().map(|b| format!("serde::Serialize::to_value({b})")).collect();
                format!(
                    "{enum_name}::{v}({}) => serde::Value::Map(vec![(\"{v}\".to_string(), \
                     serde::Value::Seq(vec![{}]))]),",
                    binds.join(", "),
                    vals.join(", ")
                )
            }
            VariantShape::Named(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{enum_name}::{v} {{ {} }} => serde::Value::Map(vec![(\"{v}\".to_string(), \
                     serde::Value::Map(vec![{}]))]),",
                    fields.join(", "),
                    pairs.join(", ")
                )
            }
        }
    }
}

fn parse_item(tokens: &[TokenTree]) -> Item {
    // Skip outer attributes and visibility, find `struct`/`enum` + name.
    let mut i = 0;
    let mut is_struct = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // #[attr]
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                is_struct = Some(true);
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_struct = Some(false);
                i += 1;
                break;
            }
            _ => i += 1, // pub, pub(crate) group, etc.
        }
    }
    let is_struct = is_struct.expect("derive(Serialize) on a struct or enum");
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name after struct/enum, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) stub does not support generic type `{name}`");
    }
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("derive(Serialize) needs a braced body on `{name}` (tuple/unit structs unsupported)"));
    let body: Vec<TokenTree> = body.into_iter().collect();
    let kind = if is_struct {
        ItemKind::Struct(parse_named_fields(&body))
    } else {
        ItemKind::Enum(parse_variants(&body))
    };
    Item { name, kind }
}

/// Field names of a named-field body: for each top-level
/// comma-separated declaration, the identifier before the first `:`.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(tokens)
        .iter()
        .filter(|decl| !decl.is_empty())
        .map(|decl| {
            let mut last_ident = None;
            for t in decl.iter() {
                match t {
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    _ => {}
                }
            }
            last_ident.expect("named field declaration")
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level_commas(tokens)
        .iter()
        .filter(|decl| !decl.is_empty())
        .map(|decl| {
            // [attrs] Name [()|{}] [= discriminant]
            let mut name = None;
            let mut shape = VariantShape::Unit;
            let mut k = 0;
            while k < decl.len() {
                match &decl[k] {
                    TokenTree::Punct(p) if p.as_char() == '#' => k += 2,
                    TokenTree::Punct(p) if p.as_char() == '=' => break,
                    TokenTree::Ident(id) if name.is_none() => {
                        name = Some(id.to_string());
                        k += 1;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        let n =
                            split_top_level_commas(&inner).iter().filter(|c| !c.is_empty()).count();
                        shape = VariantShape::Tuple(n);
                        k += 1;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        shape = VariantShape::Named(parse_named_fields(&inner));
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            Variant { name: name.expect("variant name"), shape }
        })
        .collect()
}

fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = vec![Vec::new()];
    // Angle brackets in types (`Vec<u32>`) never nest commas at this
    // token level — generics arrive as flat `<`/`>` puncts — so track
    // depth to avoid splitting inside them.
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                out.last_mut().unwrap().push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                out.last_mut().unwrap().push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => out.push(Vec::new()),
            _ => out.last_mut().unwrap().push(t.clone()),
        }
    }
    out
}
