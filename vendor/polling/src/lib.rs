//! Offline vendored stand-in for the `polling` crate: a minimal
//! level-triggered readiness API over OS multiplexing primitives.
//!
//! # Scope
//!
//! Exactly the subset the fleet server's readiness loop needs:
//!
//! - [`Poller::new`] / [`Poller::add`] / [`Poller::modify`] /
//!   [`Poller::delete`] to manage watched file descriptors, each tagged
//!   with a caller-chosen `usize` key;
//! - [`Poller::wait`] to block (with optional timeout) until some
//!   watched descriptor is ready, returning [`Event`]s;
//! - [`Poller::notify`] to wake a concurrent `wait` from another
//!   thread (self-pipe; the wake is absorbed internally and never
//!   surfaces as an event).
//!
//! Semantics are **level-triggered**: a descriptor that stays readable
//! keeps being reported on every `wait`, so a handler that does not
//! drain its socket is woken again rather than wedged. That is the
//! forgiving mode (the real crate's `PollMode::Level`), and it is the
//! only mode offered here.
//!
//! # Backends
//!
//! On Linux the backend is `epoll`, reached through direct `extern
//! "C"` declarations of the four syscall wrappers (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `close`) — std already links libc, so no
//! external crate is needed. Everywhere else (and always compiled, so
//! the fallback cannot rot) there is a portable `poll(2)` backend that
//! keeps the fd registry in user space. Both expose identical
//! behaviour through [`Poller`]; unit tests drive each explicitly.

use std::io;
use std::io::{Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

#[cfg(target_os = "linux")]
mod epoll;
// Always compiled so the fallback cannot rot; only wired into the
// facade off-Linux, hence dead to rustc's liveness pass there.
#[cfg_attr(target_os = "linux", allow(dead_code))]
mod pollfd;

#[cfg(target_os = "linux")]
use epoll::Backend;
#[cfg(not(target_os = "linux"))]
use pollfd::Backend;

/// Raw file descriptor alias, kept local so callers need no `libc`.
pub type RawFd = std::os::fd::RawFd;

/// Which readiness directions a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness notification from [`Poller::wait`].
///
/// Error/hang-up conditions are folded into both directions (as epoll
/// itself does): the handler discovers the actual condition from the
/// `read`/`write` syscall result, which is where it must be handled
/// anyway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

/// The internal self-pipe's key: absorbed by `wait`, never delivered.
/// Callers must not register descriptors under this key.
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness monitor over a set of registered file descriptors.
pub struct Poller {
    backend: Backend,
    /// Self-pipe read end, registered under [`NOTIFY_KEY`].
    wake_rx: UnixStream,
    /// Self-pipe write end; [`Poller::notify`] writes one byte here.
    wake_tx: UnixStream,
}

impl Poller {
    /// Create a new poller.
    pub fn new() -> io::Result<Poller> {
        let backend = Backend::new()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        backend.add(wake_rx.as_raw_fd(), NOTIFY_KEY, Interest::READABLE)?;
        Ok(Poller { backend, wake_rx, wake_tx })
    }

    /// Wake a concurrent [`Poller::wait`] from another thread. Wakes
    /// coalesce: a full pipe already guarantees a pending wake, so a
    /// blocked write is success, not an error.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.wake_tx).write(&[1]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Start watching `fd` with the given `key` and `interest`.
    ///
    /// The caller keeps ownership of the descriptor and must `delete`
    /// it before closing it. Keys need not be unique, but the readiness
    /// loop here always uses distinct keys per connection.
    pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.backend.add(fd, key, interest)
    }

    /// Change the interest set (and key) of an already-watched `fd`.
    pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.backend.modify(fd, key, interest)
    }

    /// Stop watching `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.backend.delete(fd)
    }

    /// Block until at least one watched descriptor is ready or the
    /// timeout elapses, appending the ready set to `events` (cleared
    /// first). `None` blocks indefinitely. Returns the number of
    /// events delivered; zero means the timeout elapsed or the wait
    /// was interrupted by a signal (both are benign — loop again).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.backend.wait(events, timeout)?;
        let raw = events.len();
        events.retain(|e| e.key != NOTIFY_KEY);
        if events.len() != raw {
            // Drain the coalesced wake bytes so the level-triggered
            // backend stops reporting the pipe.
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        Ok(events.len())
    }
}

/// Convert an optional timeout to the millisecond convention shared by
/// `epoll_wait` and `poll`: `-1` blocks forever, `0` polls, and
/// sub-millisecond timeouts round *up* so a 100µs wait cannot spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && t.as_nanos() > 0 { 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    // Exercise one backend through the canonical listener/stream
    // round-trip: accept readiness, read readiness, write readiness.
    macro_rules! backend_suite {
        ($name:ident, $backend:ty) => {
            mod $name {
                use super::*;

                fn wait(
                    b: &$backend,
                    events: &mut Vec<Event>,
                    timeout: Duration,
                ) -> io::Result<usize> {
                    events.clear();
                    b.wait(events, Some(timeout))
                }

                #[test]
                fn listener_becomes_readable_on_connect() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    listener.set_nonblocking(true).unwrap();
                    let b = <$backend>::new().unwrap();
                    b.add(listener.as_raw_fd(), 7, Interest::READABLE).unwrap();

                    let mut events = Vec::new();
                    // Nothing pending yet: a short wait times out empty.
                    let n = wait(&b, &mut events, Duration::from_millis(10)).unwrap();
                    assert_eq!(n, 0, "no events expected before a client connects");

                    let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let n = wait(&b, &mut events, Duration::from_millis(2000)).unwrap();
                    assert_eq!(n, 1);
                    assert_eq!(events[0].key, 7);
                    assert!(events[0].readable);
                    b.delete(listener.as_raw_fd()).unwrap();
                }

                #[test]
                fn stream_read_write_readiness_and_modify() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server, _) = listener.accept().unwrap();
                    server.set_nonblocking(true).unwrap();

                    let b = <$backend>::new().unwrap();
                    b.add(server.as_raw_fd(), 1, Interest::READABLE).unwrap();

                    let mut events = Vec::new();
                    // Idle connection: not readable yet.
                    let n = wait(&b, &mut events, Duration::from_millis(10)).unwrap();
                    assert_eq!(n, 0);

                    client.write_all(b"ping").unwrap();
                    let n = wait(&b, &mut events, Duration::from_millis(2000)).unwrap();
                    assert_eq!(n, 1);
                    assert!(events[0].readable);
                    assert!(!events[0].writable, "write interest was not registered");

                    // Level-triggered: unread data keeps reporting.
                    let n = wait(&b, &mut events, Duration::from_millis(2000)).unwrap();
                    assert_eq!(n, 1, "level-triggered readiness must re-report unread data");

                    let mut buf = [0u8; 8];
                    let got = (&server).read(&mut buf).unwrap();
                    assert_eq!(&buf[..got], b"ping");

                    // Flip to write interest: an idle socket is writable.
                    b.modify(server.as_raw_fd(), 2, Interest::WRITABLE).unwrap();
                    let n = wait(&b, &mut events, Duration::from_millis(2000)).unwrap();
                    assert_eq!(n, 1);
                    assert_eq!(events[0].key, 2, "modify must update the key");
                    assert!(events[0].writable);

                    b.delete(server.as_raw_fd()).unwrap();
                    let n = wait(&b, &mut events, Duration::from_millis(10)).unwrap();
                    assert_eq!(n, 0, "deleted fd must stop reporting");
                }

                #[test]
                fn peer_close_reports_readable() {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server, _) = listener.accept().unwrap();
                    server.set_nonblocking(true).unwrap();

                    let b = <$backend>::new().unwrap();
                    b.add(server.as_raw_fd(), 3, Interest::READABLE).unwrap();
                    drop(client);

                    let mut events = Vec::new();
                    let n = wait(&b, &mut events, Duration::from_millis(2000)).unwrap();
                    assert_eq!(n, 1);
                    // Hang-up folds into readable so the handler's read()
                    // observes EOF.
                    assert!(events[0].readable);
                    b.delete(server.as_raw_fd()).unwrap();
                }
            }
        };
    }

    #[cfg(target_os = "linux")]
    backend_suite!(epoll_backend, crate::epoll::Backend);
    backend_suite!(poll_backend, crate::pollfd::Backend);

    #[test]
    fn facade_uses_some_backend() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let p = Poller::new().unwrap();
        p.add(listener.as_raw_fd(), 42, Interest::READABLE).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        let n = p.wait(&mut events, Some(Duration::from_millis(2000))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 42);
        p.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait_without_surfacing_an_event() {
        let p = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&p);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let started = std::time::Instant::now();
        // Without the wake this would sleep the full 5 s.
        let n = p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(started.elapsed() < Duration::from_secs(4), "notify must cut the wait short");
        assert_eq!(n, 0, "the self-pipe wake is absorbed, not delivered");
        assert!(events.is_empty());
        t.join().unwrap();

        // Coalesced notifies are drained: the next wait times out clean.
        p.notify().unwrap();
        p.notify().unwrap();
        let n = p.wait(&mut events, Some(Duration::from_millis(200))).unwrap();
        assert_eq!(n, 0);
        let n = p.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "wake bytes must not linger");
    }

    #[test]
    fn timeout_conversion_rounds_up_and_saturates() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(25))), 25);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
