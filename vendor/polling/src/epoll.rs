//! Linux backend: raw `epoll` through `extern "C"` declarations of the
//! libc wrappers std already links. Level-triggered (the epoll
//! default); `EPOLLERR`/`EPOLLHUP` fold into both readiness directions
//! so handlers observe the condition from the subsequent syscall.

use std::io;
use std::time::Duration;

use crate::{timeout_ms, Event, Interest, RawFd};

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Kernel ABI for `struct epoll_event`. On x86-64 the kernel declares
/// it packed (no padding between the u32 mask and the u64 payload);
/// other architectures use natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn mask(interest: Interest) -> u32 {
    let mut m = EPOLLRDHUP;
    if interest.readable {
        m |= EPOLLIN;
    }
    if interest.writable {
        m |= EPOLLOUT;
    }
    m
}

pub(crate) struct Backend {
    epfd: RawFd,
}

impl Backend {
    pub(crate) fn new() -> io::Result<Backend> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Backend { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent { events: mask(interest), data: key as u64 };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call (the kernel copies it before returning).
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub(crate) fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, key, interest)
    }

    pub(crate) fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, key, interest)
    }

    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        // A non-null event pointer keeps pre-2.6.9 kernels happy; the
        // contents are ignored on DEL.
        self.ctl(EPOLL_CTL_DEL, fd, 0, Interest { readable: false, writable: false })
    }

    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        const CAP: usize = 256;
        let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
        // SAFETY: `buf` is a properly sized, writable epoll_event array.
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            // A signal landing mid-wait is not an error; the readiness
            // loop treats it like a timeout and re-polls.
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let m = raw.events;
            let key = raw.data as usize;
            let fail = m & (EPOLLERR | EPOLLHUP) != 0;
            events.push(Event {
                key,
                readable: m & (EPOLLIN | EPOLLRDHUP) != 0 || fail,
                writable: m & EPOLLOUT != 0 || fail,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        // SAFETY: epfd is owned by this backend and closed exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}
