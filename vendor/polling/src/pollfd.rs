//! Portable backend: `poll(2)` over a user-space registry of watched
//! descriptors. O(n) per wait instead of epoll's O(ready), which is
//! fine at fleet-daemon connection counts; the point is that every
//! POSIX platform has `poll`. Compiled unconditionally so the fallback
//! stays tested even on Linux.

use std::io;
use std::sync::Mutex;
use std::time::Duration;

use crate::{timeout_ms, Event, Interest, RawFd};

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
}

fn mask(interest: Interest) -> i16 {
    let mut m = 0;
    if interest.readable {
        m |= POLLIN;
    }
    if interest.writable {
        m |= POLLOUT;
    }
    m
}

pub(crate) struct Backend {
    // fd -> (key, interest); BTreeMap keeps wait() deterministic.
    registry: Mutex<std::collections::BTreeMap<RawFd, (usize, Interest)>>,
}

impl Backend {
    pub(crate) fn new() -> io::Result<Backend> {
        Ok(Backend { registry: Mutex::new(std::collections::BTreeMap::new()) })
    }

    pub(crate) fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        let mut reg = self.registry.lock().unwrap();
        if reg.insert(fd, (key, interest)).is_some() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        Ok(())
    }

    pub(crate) fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
        let mut reg = self.registry.lock().unwrap();
        match reg.get_mut(&fd) {
            Some(slot) => {
                *slot = (key, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut reg = self.registry.lock().unwrap();
        match reg.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let (mut fds, keys): (Vec<PollFd>, Vec<usize>) = {
            let reg = self.registry.lock().unwrap();
            reg.iter()
                .map(|(&fd, &(key, interest))| {
                    (PollFd { fd, events: mask(interest), revents: 0 }, key)
                })
                .unzip()
        };
        if fds.is_empty() {
            // poll(NULL, 0, ms) is a valid sleep, but skip the syscall.
            if let Some(t) = timeout {
                std::thread::sleep(t);
            }
            return Ok(0);
        }
        // SAFETY: `fds` is a valid, writable pollfd array of this length.
        let n =
            unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let mut delivered = 0;
        for (pfd, &key) in fds.iter().zip(&keys) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            let fail = r & (POLLERR | POLLHUP | POLLNVAL) != 0;
            events.push(Event {
                key,
                readable: r & POLLIN != 0 || fail,
                writable: r & POLLOUT != 0 || fail,
            });
            delivered += 1;
        }
        Ok(delivered)
    }
}
