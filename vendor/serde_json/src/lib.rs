//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde`'s [`serde::Value`] tree as strict,
//! parseable JSON: `to_string_pretty` with two-space indentation,
//! `to_string` compact. Non-finite floats serialize as `null`
//! (matching `serde_json::Value`'s behavior). The full parsing half of
//! the real crate is absent — nothing in the workspace deserializes
//! JSON.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error (the stub never fails).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Stub result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

fn render(v: &Value, depth: usize, pretty: bool, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) if x.is_finite() => out.push_str(&format!("{x}")),
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => push_escaped(s, out),
        Value::Seq(items) => render_block('[', ']', items.len(), depth, pretty, out, |k, o| {
            render(&items[k], depth + 1, pretty, o);
        }),
        Value::Map(pairs) => render_block('{', '}', pairs.len(), depth, pretty, out, |k, o| {
            push_escaped(&pairs[k].0, o);
            o.push(':');
            if pretty {
                o.push(' ');
            }
            render(&pairs[k].1, depth + 1, pretty, o);
        }),
    }
}

fn render_block(
    open: char,
    close: char,
    len: usize,
    depth: usize,
    pretty: bool,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(depth + 1));
        }
        item(k, out);
    }
    if pretty && len > 0 {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Debug, Serialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Debug, Serialize)]
    #[allow(dead_code)]
    enum Kind {
        Plain,
        Weighted(f64),
    }

    #[derive(Debug, Serialize)]
    struct Nested {
        kind: Kind,
        points: Vec<Point>,
        opt: Option<u32>,
    }

    #[test]
    fn pretty_output_is_strict_json() {
        let v = Nested {
            kind: Kind::Weighted(0.5),
            points: vec![Point { x: 1.0, y: 2.5, label: "a\"b".into() }],
            opt: None,
        };
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"kind\": {\n    \"Weighted\": 0.5\n  },\n  \"points\": [\n    {\n      \
             \"x\": 1,\n      \"y\": 2.5,\n      \"label\": \"a\\\"b\"\n    }\n  ],\n  \
             \"opt\": null\n}"
        );
    }

    #[test]
    fn compact_output_and_unit_variants() {
        let s = super::to_string(&Kind::Plain).unwrap();
        assert_eq!(s, "\"Plain\"");
        let p = Point { x: -1.5, y: 0.0, label: "ok".into() };
        assert_eq!(super::to_string(&p).unwrap(), "{\"x\":-1.5,\"y\":0,\"label\":\"ok\"}");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(super::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(super::to_string(&f64::INFINITY).unwrap(), "null");
    }
}
