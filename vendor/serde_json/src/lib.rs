//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde`'s [`serde::Value`] tree as strict,
//! parseable JSON: `to_string_pretty` with two-space indentation,
//! `to_string` compact. Non-finite floats serialize as `null`
//! (matching `serde_json::Value`'s behavior). The parsing half is
//! [`from_str`], which reads strict JSON back into a [`Value`] tree —
//! the typed-deserialization layer of the real crate is absent, so
//! callers decode fields through `Value`'s accessors (the fleet WAL and
//! wire protocol do exactly this).

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error (the stub never fails).
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(msg: impl Into<String>, at: usize) -> Self {
        Error(format!("{} at byte {at}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Stub result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, true, &mut out);
    Ok(out)
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), 0, false, &mut out);
    Ok(out)
}

/// Parse strict JSON into a [`Value`] tree.
///
/// Accepts exactly what [`to_string`]/[`to_string_pretty`] produce
/// (RFC 8259 JSON): one top-level value, `//`-comment-free, with
/// trailing whitespace permitted. Integers without fraction/exponent
/// parse as [`Value::Int`]/[`Value::UInt`]; everything else numeric as
/// [`Value::Float`].
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing data after JSON value", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected {:?}", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(format!("expected {word:?}"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::parse("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error::parse("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(Error::parse("lone high surrogate", self.pos));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse("invalid low surrogate", self.pos));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                ch.ok_or_else(|| Error::parse("invalid unicode escape", self.pos))?,
                            );
                        }
                        _ => return Err(Error::parse("unknown escape", self.pos - 1)),
                    }
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
        let cp = u32::from_str_radix(chunk, 16)
            .map_err(|_| Error::parse("non-hex \\u escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("invalid number {text:?}"), start))
    }
}

fn render(v: &Value, depth: usize, pretty: bool, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) if x.is_finite() => out.push_str(&format!("{x}")),
        Value::Float(_) => out.push_str("null"),
        Value::Str(s) => push_escaped(s, out),
        Value::Seq(items) => render_block('[', ']', items.len(), depth, pretty, out, |k, o| {
            render(&items[k], depth + 1, pretty, o);
        }),
        Value::Map(pairs) => render_block('{', '}', pairs.len(), depth, pretty, out, |k, o| {
            push_escaped(&pairs[k].0, o);
            o.push(':');
            if pretty {
                o.push(' ');
            }
            render(&pairs[k].1, depth + 1, pretty, o);
        }),
    }
}

fn render_block(
    open: char,
    close: char,
    len: usize,
    depth: usize,
    pretty: bool,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(depth + 1));
        }
        item(k, out);
    }
    if pretty && len > 0 {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use serde::Serialize;

    #[derive(Debug, Serialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Debug, Serialize)]
    #[allow(dead_code)]
    enum Kind {
        Plain,
        Weighted(f64),
    }

    #[derive(Debug, Serialize)]
    struct Nested {
        kind: Kind,
        points: Vec<Point>,
        opt: Option<u32>,
    }

    #[test]
    fn pretty_output_is_strict_json() {
        let v = Nested {
            kind: Kind::Weighted(0.5),
            points: vec![Point { x: 1.0, y: 2.5, label: "a\"b".into() }],
            opt: None,
        };
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"kind\": {\n    \"Weighted\": 0.5\n  },\n  \"points\": [\n    {\n      \
             \"x\": 1,\n      \"y\": 2.5,\n      \"label\": \"a\\\"b\"\n    }\n  ],\n  \
             \"opt\": null\n}"
        );
    }

    #[test]
    fn compact_output_and_unit_variants() {
        let s = super::to_string(&Kind::Plain).unwrap();
        assert_eq!(s, "\"Plain\"");
        let p = Point { x: -1.5, y: 0.0, label: "ok".into() };
        assert_eq!(super::to_string(&p).unwrap(), "{\"x\":-1.5,\"y\":0,\"label\":\"ok\"}");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(super::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(super::to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parser_round_trips_renderer_output() {
        let v = Nested {
            kind: Kind::Weighted(-0.25),
            points: vec![
                Point { x: 1.0, y: 2.5e-3, label: "a\"b\\c\n\t".into() },
                Point { x: -7.0, y: 0.0, label: "π ≠ \u{1F600}".into() },
            ],
            opt: None,
        };
        for rendered in [super::to_string(&v).unwrap(), super::to_string_pretty(&v).unwrap()] {
            let parsed = super::from_str(&rendered).unwrap();
            assert_eq!(parsed, v.to_value().normalized(), "round trip of {rendered}");
        }
    }

    /// The renderer prints `1.0f64` as `1`, which parses back as an
    /// integer — fold Float-with-integral-value to the parsed form.
    trait Normalize {
        fn normalized(self) -> serde::Value;
    }

    impl Normalize for serde::Value {
        fn normalized(self) -> serde::Value {
            use serde::Value;
            match self {
                Value::Float(x) if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 => {
                    if x >= 0.0 {
                        Value::UInt(x as u64)
                    } else {
                        Value::Int(x as i64)
                    }
                }
                Value::Seq(v) => Value::Seq(v.into_iter().map(Normalize::normalized).collect()),
                Value::Map(m) => {
                    Value::Map(m.into_iter().map(|(k, v)| (k, v.normalized())).collect())
                }
                other => other,
            }
        }
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        use serde::Value;
        let v = super::from_str(r#"{"a":[1,-2,3.5,1e3,null,true],"s":"A😀"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_seq().unwrap(),
            &[
                Value::UInt(1),
                Value::Int(-2),
                Value::Float(3.5),
                Value::Float(1e3),
                Value::Null,
                Value::Bool(true)
            ]
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("A😀"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "\"open", "1 2", "{\"a\" 1}"] {
            assert!(super::from_str(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
