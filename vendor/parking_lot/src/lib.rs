//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned std
//! lock — only possible after a panic while holding it — is unwrapped
//! into the inner guard, matching parking_lot's "no poisoning"
//! contract). Functionally equivalent for this workspace; parking_lot's
//! smaller/faster lock word is the only thing lost.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Poison-free mutex.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking; never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Poison-free reader–writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access; never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire exclusive write access; never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and wait; the lock is
    /// reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard held");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Timed wait; returns true when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.guard.take().expect("guard held");
        let (inner, result) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }
}
