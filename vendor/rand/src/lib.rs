//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the minimal surface it actually uses: [`rngs::StdRng`] (xoshiro256++,
//! seeded through SplitMix64 like `rand_xoshiro`), [`SeedableRng::seed_from_u64`]
//! and [`Rng::random`] for the primitive types the simulation draws.
//! Streams are deterministic per seed, statistically solid for the
//! Monte-Carlo noise the meter and workload models need, and NOT
//! cryptographically secure.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution: uniform over the
/// type's range for integers, uniform in `[0, 1)` for floats.
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from a range (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: Into<UniformRange<T>>,
    {
        T::uniform_sample(range.into(), self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A resolved uniform range `[low, high)` (`high` already adjusted for
/// inclusive ranges).
pub struct UniformRange<T> {
    /// Inclusive lower bound.
    pub low: T,
    /// Exclusive upper bound.
    pub high: T,
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl From<core::ops::Range<$t>> for UniformRange<$t> {
            fn from(r: core::ops::Range<$t>) -> Self {
                Self { low: r.start, high: r.end }
            }
        }
        impl From<core::ops::RangeInclusive<$t>> for UniformRange<$t> {
            fn from(r: core::ops::RangeInclusive<$t>) -> Self {
                Self { low: *r.start(), high: r.end().checked_add(1).unwrap_or(*r.end()) }
            }
        }
        impl UniformSample for $t {
            fn uniform_sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self {
                assert!(range.high > range.low, "empty range");
                let span = (range.high - range.low) as u64;
                range.low + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

/// Types with uniform range sampling.
pub trait UniformSample: Sized {
    /// Draw uniformly from `range`.
    fn uniform_sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self;
}

uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl From<core::ops::Range<f64>> for UniformRange<f64> {
    fn from(r: core::ops::Range<f64>) -> Self {
        Self { low: r.start, high: r.end }
    }
}

impl UniformSample for f64 {
    fn uniform_sample<R: RngCore + ?Sized>(range: UniformRange<Self>, rng: &mut R) -> Self {
        let u: f64 = f64::standard_sample(rng);
        range.low + u * (range.high - range.low)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same small fast generator family `rand`'s
    /// `StdRng` documentation points at for reproducible simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: u32 = r.random_range(3u32..10);
            assert!((3..10).contains(&v));
            let w: f64 = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&w));
        }
    }
}
