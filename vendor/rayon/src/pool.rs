//! The executor: a lazily-initialized global pool of OS worker threads
//! plus the chunk-claiming scheduler that drives every parallel
//! combinator in this crate.
//!
//! # Design
//!
//! One global registry of `default_threads()` workers is spawned on
//! first use. Parallel calls never hand their *data* to the pool; they
//! post lightweight [`Ticket`]s — offers of help — into a shared MPMC
//! injector channel. Each ticket holds a type-erased pointer to the
//! caller's stack-allocated job state. The caller always participates
//! in its own job (claiming work chunks from an atomic index), so every
//! parallel call completes even if no worker ever picks up a ticket:
//! workers accelerate, they are never required for progress. That
//! property makes nested parallel calls deadlock-free by induction —
//! a worker executing a chunk that itself goes parallel again just
//! becomes a caller that can finish its own sub-job.
//!
//! # Safety of the lifetime erasure
//!
//! A [`Job`] is a raw pointer into the posting caller's stack frame.
//! Two invariants keep that sound:
//!
//! 1. A worker executes a job *while holding the ticket's slot lock*.
//! 2. Before returning, the caller empties every posted ticket's slot
//!    under that same lock ("the sweep").
//!
//! So when the sweep finishes, each ticket was either withdrawn
//! untouched or its execution has fully completed — no worker can be
//! inside the job when the caller's frame dies, and none can claim it
//! afterwards because the slot is empty.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;

/// Type-erased pointer to a caller-owned parallel job. See the module
/// docs for the invariants that make sending this across threads sound.
struct Job {
    data: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointed-to job state is Sync (enforced by the generic
// bounds at every erasure site) and outlives all accesses (enforced by
// the ticket sweep protocol described in the module docs).
unsafe impl Send for Job {}

/// An offer of help posted to the worker queue.
struct Ticket {
    job: Mutex<Option<Job>>,
}

impl Ticket {
    /// Run the held job (if still present) while holding the slot lock,
    /// so a concurrent sweep blocks until the job is done.
    fn claim_and_run(&self) {
        let mut slot = self.job.lock();
        if let Some(job) = slot.take() {
            // SAFETY: the posting caller cannot return until it has
            // locked this slot, which we hold for the whole call.
            unsafe { (job.run)(job.data) };
        }
    }
}

struct Registry {
    injector: Sender<Arc<Ticket>>,
    workers: usize,
}

/// The global worker registry, spawned on first parallel call.
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let workers = default_threads().max(1);
        let (tx, rx) = channel::unbounded::<Arc<Ticket>>();
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("hpceval-rayon-{i}"))
                .spawn(move || {
                    while let Ok(ticket) = rx.recv() {
                        ticket.claim_and_run();
                    }
                })
                .expect("failed to spawn executor worker thread");
        }
        Registry { injector: tx, workers }
    })
}

/// The `HPCEVAL_THREADS` override, parsed once. Values below 1 or
/// unparsable values are ignored; absurd values are clamped.
pub(crate) fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HPCEVAL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .map(|n| n.min(512))
    })
}

/// The pool width used when no explicit pool is installed:
/// `HPCEVAL_THREADS` if set, else the machine's available parallelism.
/// Cached: `available_parallelism` reads the cgroup filesystem, and
/// paying that syscall on every parallel dispatch costs two orders of
/// magnitude on sub-millisecond regions (the kernel-perf gate catches
/// it when run without the env pin).
pub(crate) fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        env_threads().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

thread_local! {
    /// Logical width override installed by `ThreadPool::install` on the
    /// calling thread.
    static ACTIVE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The logical thread count governing splits started from this thread.
pub(crate) fn active_threads() -> usize {
    ACTIVE.with(Cell::get).unwrap_or_else(default_threads)
}

/// RAII guard restoring the previous logical width on drop (so a panic
/// inside `install` cannot leak the override).
pub(crate) struct ActiveGuard {
    prev: Option<usize>,
}

pub(crate) fn set_active(n: usize) -> ActiveGuard {
    ActiveGuard { prev: ACTIVE.with(|a| a.replace(Some(n.max(1)))) }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        ACTIVE.with(|a| a.set(prev));
    }
}

/// Shared state of one fan-out: pre-split work pieces, per-piece result
/// slots, the claim index, and the first captured panic.
///
/// The piece and result slots are `UnsafeCell`s, not mutexes: every
/// index is claimed exactly once (by a CAS on `next`, see [`Self::work`])
/// and read back only after all helpers have quiesced (the ticket
/// sweep), so each slot has one writer and no concurrent reader by
/// construction. Paying a lock/unlock pair per slot on top of that
/// proof is pure overhead — measurable, because the kernel-perf gate
/// runs fine-grained fan-outs where per-piece cost is the product.
struct PieceJob<'f, P, R, F> {
    pieces: Vec<UnsafeCell<Option<P>>>,
    results: Vec<UnsafeCell<Option<R>>>,
    next: AtomicUsize,
    /// Caller + helper tickets posted: sizes the batched claims.
    participants: usize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    execute: &'f F,
}

// SAFETY: the UnsafeCell slots need no locks because (1) `work` hands
// out each index to exactly one thread via the CAS on `next`, (2) a
// claiming thread is the only one to touch its indices' cells, and
// (3) the caller reads `results` only after the ticket sweep, which
// blocks on every ticket's slot lock and therefore happens-after every
// helper's `work` has returned.
unsafe impl<P: Send, R: Send, F: Sync> Sync for PieceJob<'_, P, R, F> {}

impl<P: Send, R: Send, F: Fn(usize, P) -> R + Sync> PieceJob<'_, P, R, F> {
    /// Claim and execute pieces until none remain. Runs on the caller
    /// and on any worker that picked up a ticket for this job.
    ///
    /// Claims are **batched**: one CAS takes a contiguous run of
    /// pieces instead of one piece per atomic op. The batch is sized
    /// by guided self-scheduling — half the remaining work divided
    /// across all participants — so early claims are large (amortizing
    /// the atomic to near-zero on the fine-grained fan-outs where
    /// width > 1 used to *lose* to width 1 on one-core hosts) while
    /// the tail degrades to single pieces for load balance. Piece
    /// boundaries and count are untouched, only their assignment to
    /// threads changes, so bitwise width-invariance is preserved.
    fn work(&self) {
        let n = self.pieces.len();
        'claims: loop {
            let mut cur = self.next.load(Ordering::Relaxed);
            let (start, end) = loop {
                if cur >= n {
                    return;
                }
                let k = ((n - cur) / (2 * self.participants)).max(1);
                match self.next.compare_exchange_weak(
                    cur,
                    cur + k,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break (cur, cur + k),
                    Err(seen) => cur = seen,
                }
            };
            for i in start..end {
                // SAFETY: the CAS above claimed index i for this thread
                // alone, and the caller keeps the job alive until the
                // sweep completes (module docs).
                let piece = unsafe { (*self.pieces[i].get()).take() }.expect("piece claimed twice");
                match catch_unwind(AssertUnwindSafe(|| (self.execute)(i, piece))) {
                    // SAFETY: same exclusive claim as the take above.
                    Ok(r) => unsafe { *self.results[i].get() = Some(r) },
                    Err(payload) => {
                        let mut slot = self.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        // Cut the fan-out short; the caller re-raises
                        // (and never reads the skipped result slots).
                        self.next.store(n, Ordering::Relaxed);
                        break 'claims;
                    }
                }
            }
        }
    }
}

fn erase_piece_job<P, R, F>(job: &PieceJob<'_, P, R, F>) -> Job
where
    P: Send,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    unsafe fn run<P: Send, R: Send, F: Fn(usize, P) -> R + Sync>(data: *const ()) {
        let job = unsafe { &*data.cast::<PieceJob<'_, P, R, F>>() };
        job.work();
    }
    Job { data: (job as *const PieceJob<'_, P, R, F>).cast(), run: run::<P, R, F> }
}

/// Execute `execute(index, piece)` for every piece, using up to
/// `active - 1` pool workers plus the calling thread, and return the
/// results in piece order. Panics in any piece are re-raised on the
/// caller after all in-flight work has quiesced.
pub(crate) fn run_pieces<P, R, F>(active: usize, pieces: Vec<P>, execute: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    let n = pieces.len();
    if n <= 1 || active <= 1 {
        // Sequential fast path: zero dispatch overhead, exact same
        // piece boundaries as the parallel path.
        return pieces.into_iter().enumerate().map(|(i, p)| execute(i, p)).collect();
    }
    let reg = registry();
    let helpers = (active - 1).min(n - 1).min(reg.workers);
    let job = PieceJob {
        pieces: pieces.into_iter().map(|p| UnsafeCell::new(Some(p))).collect(),
        results: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        next: AtomicUsize::new(0),
        participants: helpers + 1,
        panic: Mutex::new(None),
        execute: &execute,
    };
    let tickets: Vec<Arc<Ticket>> = (0..helpers)
        .map(|_| {
            let t = Arc::new(Ticket { job: Mutex::new(Some(erase_piece_job(&job))) });
            // Send can only fail if all workers died; the caller-drives
            // invariant means the job still completes in that case.
            let _ = reg.injector.send(Arc::clone(&t));
            t
        })
        .collect();
    job.work();
    // The sweep: withdraw unclaimed offers, wait out claimed ones.
    for t in &tickets {
        t.job.lock().take();
    }
    if let Some(payload) = job.panic.lock().take() {
        resume_unwind(payload);
    }
    job.results
        .into_iter()
        .map(|m| m.into_inner().expect("missing piece result"))
        .collect()
}

/// Shared state of one `join`: the not-yet-run closure and its result.
struct JoinJob<B, RB> {
    func: Mutex<Option<B>>,
    result: Mutex<Option<std::thread::Result<RB>>>,
}

impl<B: FnOnce() -> RB + Send, RB: Send> JoinJob<B, RB> {
    fn run_b(&self) {
        if let Some(f) = self.func.lock().take() {
            *self.result.lock() = Some(catch_unwind(AssertUnwindSafe(f)));
        }
    }
}

/// Run `a` on the calling thread while offering `b` to the pool; if no
/// worker picks `b` up by the time `a` finishes, the caller runs `b`
/// inline. Both closures therefore always complete before `join`
/// returns, and a panic in either is re-raised here (the `a` panic
/// wins when both fail, matching rayon).
///
/// Unlike `run_pieces`, `b` is offered to the pool even when the
/// logical width is 1: `join`'s two branches may *communicate* (b_eff
/// ping-pongs messages between them), so they need concurrency, not
/// just parallel speedup. The pool always has at least one worker.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let reg = registry();
    let job = JoinJob { func: Mutex::new(Some(b)), result: Mutex::new(None) };
    unsafe fn run_b_erased<B: FnOnce() -> RB + Send, RB: Send>(data: *const ()) {
        let job = unsafe { &*data.cast::<JoinJob<B, RB>>() };
        job.run_b();
    }
    let ticket = Arc::new(Ticket {
        job: Mutex::new(Some(Job {
            data: (&job as *const JoinJob<B, RB>).cast(),
            run: run_b_erased::<B, RB>,
        })),
    });
    let _ = reg.injector.send(Arc::clone(&ticket));
    let ra = catch_unwind(AssertUnwindSafe(a));
    {
        // Sweep: withdraw-and-run-inline, or wait for the worker.
        let taken = ticket.job.lock().take();
        if let Some(jobref) = taken {
            // SAFETY: `job` is alive on this stack frame and the slot
            // is now empty, so we are the only executor.
            unsafe { (jobref.run)(jobref.data) };
        }
    }
    let rb = job.result.lock().take().expect("join branch b produced no result");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}
