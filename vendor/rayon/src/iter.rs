//! Parallel iterators over splittable sources.
//!
//! A [`Producer`] is a source with a known number of split positions
//! that can be cut into independent pieces (`split_at`) and lowered to
//! a plain sequential iterator per piece (`into_seq`). [`ParIter`]
//! wraps a producer and provides rayon's combinator surface; terminal
//! operations pre-split the producer into `min(len, 4 × logical
//! threads)` even pieces on the calling thread and hand them to the
//! executor in [`crate::pool`], which returns per-piece results **in
//! piece order**. That ordering rule is what keeps results
//! deterministic: `collect` preserves item order exactly, and
//! `reduce`/`fold`/`sum` combine partials left-to-right, so for a fixed
//! logical width the outcome is bit-reproducible, and element-wise
//! operations (`for_each` over disjoint data) are bit-identical at
//! *any* width.

use std::cell::RefCell;
use std::ops::Range;
use std::sync::Arc;

use crate::pool;

/// Work units a terminal op aims to hand each logical thread, so the
/// atomic-index scheduler can balance uneven pieces.
const PIECES_PER_THREAD: usize = 4;

/// A splittable data source with exact split positions.
pub trait Producer: Sized + Send {
    /// The element type produced.
    type Item: Send;
    /// Sequential iterator over one piece.
    type IntoIter: Iterator<Item = Self::Item>;
    /// Number of split positions (== items for element producers,
    /// == chunks for chunk producers; an upper bound after `filter`).
    fn len(&self) -> usize;
    /// Whether the producer has no split positions left.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Cut into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Lower to a sequential iterator.
    fn into_seq(self) -> Self::IntoIter;
}

/// A parallel iterator: a producer plus scheduling hints.
pub struct ParIter<P: Producer> {
    producer: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(producer: P) -> Self {
        Self { producer, min_len: 1 }
    }

    /// Lower bound on items per piece (rayon's `with_min_len`): caps
    /// how finely the source is split.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Map each item through `f`.
    pub fn map<O, F>(self, f: F) -> ParIter<MapP<P, F>>
    where
        O: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        ParIter { producer: MapP { base: self.producer, f: Arc::new(f) }, min_len: self.min_len }
    }

    /// Keep items passing the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<FilterP<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter { producer: FilterP { base: self.producer, f: Arc::new(f) }, min_len: self.min_len }
    }

    /// Map and keep the `Some` results.
    pub fn filter_map<O, F>(self, f: F) -> ParIter<FilterMapP<P, F>>
    where
        O: Send,
        F: Fn(P::Item) -> Option<O> + Send + Sync,
    {
        ParIter {
            producer: FilterMapP { base: self.producer, f: Arc::new(f) },
            min_len: self.min_len,
        }
    }

    /// Map each item to an iterable and flatten.
    pub fn flat_map<O, F>(self, f: F) -> ParIter<FlatMapP<P, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        ParIter {
            producer: FlatMapP { base: self.producer, f: Arc::new(f) },
            min_len: self.min_len,
        }
    }

    /// Pair items with their global index.
    pub fn enumerate(self) -> ParIter<EnumerateP<P>> {
        ParIter { producer: EnumerateP { base: self.producer, offset: 0 }, min_len: self.min_len }
    }

    /// Pair lockstep with another parallel iterable; stops at the
    /// shorter side.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<ZipP<P, Z::Producer>> {
        ParIter {
            producer: ZipP { a: self.producer, b: other.into_par_iter().producer },
            min_len: self.min_len,
        }
    }

    /// Split into pieces and run `work` on each, in parallel, returning
    /// per-piece outputs in piece order.
    fn drive<R, W>(self, work: W) -> Vec<R>
    where
        R: Send,
        W: Fn(P) -> R + Sync,
    {
        let active = pool::active_threads();
        let len = self.producer.len();
        let pieces = piece_count(len, self.min_len, active);
        if pieces <= 1 || active <= 1 {
            return vec![work(self.producer)];
        }
        let producer = self.producer;
        let parts =
            with_takes(len, self.min_len, active, pieces, |takes| split_even(producer, takes));
        pool::run_pieces(active, parts, |_, p| work(p))
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        self.drive(|p| p.into_seq().for_each(&f));
    }

    /// Rayon-style reduce: each piece folds onto a fresh `identity()`,
    /// partials combine left-to-right in piece order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let partials = self.drive(|p| p.into_seq().fold(identity(), &op));
        partials.into_iter().reduce(&op).unwrap_or_else(identity)
    }

    /// Rayon-style fold: accumulate into one `identity()` per piece,
    /// yielding the partial accumulators as a new parallel iterator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecP<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let partials = self.drive(|p| p.into_seq().fold(identity(), &fold_op));
        ParIter::new(VecP(partials))
    }

    /// Sum all items (piece sums combined in piece order).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        self.drive(|p| p.into_seq().sum::<S>()).into_iter().sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.drive(|p| p.into_seq().count()).into_iter().sum()
    }

    /// Largest item.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.drive(|p| p.into_seq().max()).into_iter().flatten().max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        self.drive(|p| p.into_seq().min()).into_iter().flatten().min()
    }

    /// Collect into any `FromIterator` container, preserving item
    /// order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let parts = self.drive(|p| p.into_seq().collect::<Vec<_>>());
        parts.into_iter().flatten().collect()
    }
}

/// Sequential fallback: a `ParIter` is itself iterable (rayon parity
/// for `for x in par.into_iter()`-style uses).
impl<P: Producer> IntoIterator for ParIter<P> {
    type Item = P::Item;
    type IntoIter = P::IntoIter;
    fn into_iter(self) -> Self::IntoIter {
        self.producer.into_seq()
    }
}

/// Deterministic piece count: enough pieces for the scheduler to
/// balance load, capped by the `with_min_len` hint.
fn piece_count(len: usize, min_len: usize, active: usize) -> usize {
    if len == 0 {
        return 1;
    }
    len.min(active.saturating_mul(PIECES_PER_THREAD))
        .min(len.div_ceil(min_len))
        .max(1)
}

/// One-entry memo of the last split plan computed on this thread. The
/// hot kernels drive the same fan-out shape back to back (HPL's
/// per-panel trailing update, EP's fixed block map, STREAM's repeated
/// ops), so the take sequence — the only piece-boundary arithmetic on
/// the dispatch path, and the remaining per-call cost after PR 7
/// batched the scheduler's claims — is computed once and reused until
/// `(len, min_len, active)` changes. A memo hit and a fresh computation
/// produce identical boundaries, so bitwise width-invariance is
/// untouched.
struct SplitPlan {
    len: usize,
    min_len: usize,
    active: usize,
    takes: Vec<usize>,
}

thread_local! {
    static SPLIT_PLAN: RefCell<SplitPlan> =
        const { RefCell::new(SplitPlan { len: 0, min_len: 0, active: 0, takes: Vec::new() }) };
}

/// The even split's take sequence: piece `i` of `pieces` takes
/// `remaining.div_ceil(pieces − i)` positions; the final piece (the
/// remainder, not stored) absorbs what is left.
fn plan_takes(len: usize, pieces: usize, takes: &mut Vec<usize>) {
    takes.clear();
    takes.reserve(pieces - 1);
    let mut remaining = len;
    for i in 0..pieces - 1 {
        let take = remaining.div_ceil(pieces - i);
        takes.push(take);
        remaining -= take;
    }
}

/// Run `f` on the take sequence for this shape, recomputing the memo
/// only when `(len, min_len, active)` differs from the last call on
/// this thread. `pieces` must equal `piece_count(len, min_len, active)`
/// (it is derived from the key, so a memo hit is always valid).
fn with_takes<R>(
    len: usize,
    min_len: usize,
    active: usize,
    pieces: usize,
    f: impl FnOnce(&[usize]) -> R,
) -> R {
    SPLIT_PLAN.with(|cell| {
        let mut plan = cell.borrow_mut();
        if plan.len != len || plan.min_len != min_len || plan.active != active {
            plan_takes(len, pieces, &mut plan.takes);
            plan.len = len;
            plan.min_len = min_len;
            plan.active = active;
        }
        f(&plan.takes)
    })
}

/// Cut `producer` into contiguous spans per the planned take sequence;
/// sizes differ by at most one.
fn split_even<P: Producer>(producer: P, takes: &[usize]) -> Vec<P> {
    let mut out = Vec::with_capacity(takes.len() + 1);
    let mut rest = producer;
    for &take in takes {
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

// ---------------------------------------------------------------------
// Source producers
// ---------------------------------------------------------------------

/// Shared-slice producer (`par_iter`).
pub struct SliceP<'a, T>(pub(crate) &'a [T]);

impl<'a, T: Sync> Producer for SliceP<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (SliceP(l), SliceP(r))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Mutable-slice producer (`par_iter_mut`).
pub struct SliceMutP<'a, T>(pub(crate) &'a mut [T]);

impl<'a, T: Send> Producer for SliceMutP<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (SliceMutP(l), SliceMutP(r))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

/// Shared-chunk producer (`par_chunks`): positions are whole chunks.
pub struct ChunksP<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) size: usize,
}

impl<'a, T: Sync> Producer for ChunksP<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (ChunksP { slice: l, size: self.size }, ChunksP { slice: r, size: self.size })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Mutable-chunk producer (`par_chunks_mut`).
pub struct ChunksMutP<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) size: usize,
}

impl<'a, T: Send> Producer for ChunksMutP<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (ChunksMutP { slice: l, size: self.size }, ChunksMutP { slice: r, size: self.size })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Integer types a `Range` parallel iterator can be built over.
pub trait RangeIndex: Copy + Send + 'static {
    /// Number of steps in `r`.
    fn span(r: &Range<Self>) -> usize;
    /// `v + n`.
    fn offset(v: Self, n: usize) -> Self;
}

macro_rules! impl_range_index {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            fn span(r: &Range<Self>) -> usize {
                if r.end > r.start { (r.end - r.start) as usize } else { 0 }
            }
            fn offset(v: Self, n: usize) -> Self {
                v + n as $t
            }
        }
    )*};
}

impl_range_index!(usize, u64, u32, u16, i64, i32);

/// Range producer (`(a..b).into_par_iter()`).
pub struct RangeP<T>(pub(crate) Range<T>);

impl<T> Producer for RangeP<T>
where
    T: RangeIndex,
    Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type IntoIter = Range<T>;
    fn len(&self) -> usize {
        T::span(&self.0)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = T::offset(self.0.start, index.min(T::span(&self.0)));
        (RangeP(self.0.start..mid), RangeP(mid..self.0.end))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0
    }
}

/// Owned-vector producer (`vec.into_par_iter()`).
pub struct VecP<T>(pub(crate) Vec<T>);

impl<T: Send> Producer for VecP<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index);
        (self, VecP(tail))
    }
    fn into_seq(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

// ---------------------------------------------------------------------
// Adapter producers
// ---------------------------------------------------------------------

/// `map` adapter; the closure is shared across pieces via `Arc`.
pub struct MapP<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`MapP`].
pub struct MapSeq<I, F> {
    it: I,
    f: Arc<F>,
}

impl<I: Iterator, O, F: Fn(I::Item) -> O> Iterator for MapSeq<I, F> {
    type Item = O;
    fn next(&mut self) -> Option<O> {
        self.it.next().map(|x| (self.f)(x))
    }
}

impl<P, O, F> Producer for MapP<P, F>
where
    P: Producer,
    O: Send,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O;
    type IntoIter = MapSeq<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (MapP { base: l, f: Arc::clone(&self.f) }, MapP { base: r, f: self.f })
    }
    fn into_seq(self) -> Self::IntoIter {
        MapSeq { it: self.base.into_seq(), f: self.f }
    }
}

/// `filter` adapter. `len()` is an upper bound; split positions are
/// input positions, which keeps splitting deterministic.
pub struct FilterP<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`FilterP`].
pub struct FilterSeq<I, F> {
    it: I,
    f: Arc<F>,
}

impl<I: Iterator, F: Fn(&I::Item) -> bool> Iterator for FilterSeq<I, F> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.it.by_ref().find(|x| (self.f)(x))
    }
}

impl<P, F> Producer for FilterP<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type IntoIter = FilterSeq<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (FilterP { base: l, f: Arc::clone(&self.f) }, FilterP { base: r, f: self.f })
    }
    fn into_seq(self) -> Self::IntoIter {
        FilterSeq { it: self.base.into_seq(), f: self.f }
    }
}

/// `filter_map` adapter; same splitting rules as [`FilterP`].
pub struct FilterMapP<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`FilterMapP`].
pub struct FilterMapSeq<I, F> {
    it: I,
    f: Arc<F>,
}

impl<I: Iterator, O, F: Fn(I::Item) -> Option<O>> Iterator for FilterMapSeq<I, F> {
    type Item = O;
    fn next(&mut self) -> Option<O> {
        loop {
            match self.it.next() {
                Some(x) => {
                    if let Some(o) = (self.f)(x) {
                        return Some(o);
                    }
                }
                None => return None,
            }
        }
    }
}

impl<P, O, F> Producer for FilterMapP<P, F>
where
    P: Producer,
    O: Send,
    F: Fn(P::Item) -> Option<O> + Send + Sync,
{
    type Item = O;
    type IntoIter = FilterMapSeq<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (FilterMapP { base: l, f: Arc::clone(&self.f) }, FilterMapP { base: r, f: self.f })
    }
    fn into_seq(self) -> Self::IntoIter {
        FilterMapSeq { it: self.base.into_seq(), f: self.f }
    }
}

/// `flat_map` adapter; split positions are outer-input positions.
pub struct FlatMapP<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`FlatMapP`].
pub struct FlatMapSeq<I, O: IntoIterator, F> {
    it: I,
    f: Arc<F>,
    cur: Option<O::IntoIter>,
}

impl<I, O, F> Iterator for FlatMapSeq<I, O, F>
where
    I: Iterator,
    O: IntoIterator,
    F: Fn(I::Item) -> O,
{
    type Item = O::Item;
    fn next(&mut self) -> Option<O::Item> {
        loop {
            if let Some(inner) = &mut self.cur {
                if let Some(v) = inner.next() {
                    return Some(v);
                }
            }
            self.cur = Some((self.f)(self.it.next()?).into_iter());
        }
    }
}

impl<P, O, F> Producer for FlatMapP<P, F>
where
    P: Producer,
    O: IntoIterator,
    O::Item: Send,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O::Item;
    type IntoIter = FlatMapSeq<P::IntoIter, O, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (FlatMapP { base: l, f: Arc::clone(&self.f) }, FlatMapP { base: r, f: self.f })
    }
    fn into_seq(self) -> Self::IntoIter {
        FlatMapSeq { it: self.base.into_seq(), f: self.f, cur: None }
    }
}

/// `enumerate` adapter carrying the global index offset of its span.
pub struct EnumerateP<P> {
    base: P,
    offset: usize,
}

/// Sequential side of [`EnumerateP`].
pub struct EnumerateSeq<I> {
    it: I,
    idx: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.it.next()?;
        let i = self.idx;
        self.idx += 1;
        Some((i, x))
    }
}

impl<P: Producer> Producer for EnumerateP<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateSeq<P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateP { base: l, offset: self.offset },
            EnumerateP { base: r, offset: self.offset + index },
        )
    }
    fn into_seq(self) -> Self::IntoIter {
        EnumerateSeq { it: self.base.into_seq(), idx: self.offset }
    }
}

/// `zip` adapter pairing two producers position-by-position.
pub struct ZipP<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipP<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipP { a: al, b: bl }, ZipP { a: ar, b: br })
    }
    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

// ---------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------

/// `.into_par_iter()` for owned or borrowed iterables.
pub trait IntoParallelIterator {
    /// The producer backing the parallel iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Producer = VecP<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<VecP<T>> {
        ParIter::new(VecP(self))
    }
}

impl<T> IntoParallelIterator for Range<T>
where
    T: RangeIndex,
    Range<T>: Iterator<Item = T>,
{
    type Producer = RangeP<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<RangeP<T>> {
        ParIter::new(RangeP(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Producer = SliceP<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<SliceP<'a, T>> {
        ParIter::new(SliceP(self))
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Producer = SliceMutP<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<SliceMutP<'a, T>> {
        ParIter::new(SliceMutP(self))
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Producer = SliceP<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<SliceP<'a, T>> {
        ParIter::new(SliceP(self))
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Producer = SliceMutP<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<SliceMutP<'a, T>> {
        ParIter::new(SliceMutP(self))
    }
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Producer = P;
    type Item = P::Item;
    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

/// Shared-slice `par_iter`/`par_chunks`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<SliceP<'_, T>>;
    /// Parallel iterator over `chunk_size`-element chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksP<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceP<'_, T>> {
        ParIter::new(SliceP(self))
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksP<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksP { slice: self, size: chunk_size })
    }
}

/// Mutable-slice `par_iter_mut`/`par_chunks_mut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutP<'_, T>>;
    /// Parallel iterator over mutable `chunk_size`-element chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutP<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutP<'_, T>> {
        ParIter::new(SliceMutP(self))
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutP<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter::new(ChunksMutP { slice: self, size: chunk_size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_takes(len: usize, pieces: usize) -> Vec<usize> {
        let mut t = Vec::new();
        plan_takes(len, pieces, &mut t);
        t
    }

    #[test]
    fn memoized_plan_matches_fresh_computation() {
        for (len, min_len, active) in
            [(10, 1, 4), (1000, 1, 8), (1000, 64, 8), (7, 1, 3), (4096, 16, 2), (33, 5, 16)]
        {
            let pieces = piece_count(len, min_len, active);
            if pieces <= 1 {
                continue;
            }
            let fresh = fresh_takes(len, pieces);
            // First call populates the memo, second hits it; both must
            // cut the exact same boundaries.
            let miss = with_takes(len, min_len, active, pieces, |t| t.to_vec());
            let hit = with_takes(len, min_len, active, pieces, |t| t.to_vec());
            assert_eq!(miss, fresh, "memo miss diverges for {len}/{min_len}/{active}");
            assert_eq!(hit, fresh, "memo hit diverges for {len}/{min_len}/{active}");
            // The plan tiles len exactly into near-even spans.
            let mut sizes = fresh.clone();
            sizes.push(len - fresh.iter().sum::<usize>());
            assert_eq!(sizes.len(), pieces);
            let lo = *sizes.iter().min().unwrap();
            let hi = *sizes.iter().max().unwrap();
            assert!(hi - lo <= 1, "uneven split {sizes:?}");
        }
    }

    #[test]
    fn memo_invalidates_when_any_key_component_changes() {
        let shapes = [(100, 1, 4), (101, 1, 4), (101, 2, 4), (101, 2, 3), (100, 1, 4)];
        for (len, min_len, active) in shapes {
            let pieces = piece_count(len, min_len, active);
            let takes = with_takes(len, min_len, active, pieces, |t| t.to_vec());
            assert_eq!(
                takes,
                fresh_takes(len, pieces),
                "stale plan served for {len}/{min_len}/{active}"
            );
        }
    }
}
