//! Offline stand-in for `rayon`: a *sequential* facade.
//!
//! The build container has no crates.io access, so this crate maps the
//! rayon entry points the workspace uses onto plain sequential
//! iteration. `par_iter`/`par_chunks`/`into_par_iter` return a
//! [`SeqIter`] wrapper whose inherent combinators mirror **rayon's**
//! semantics (notably `reduce(identity, op)` and `fold(identity, op)`,
//! which differ from `std::iter::Iterator`), so call sites compile and
//! produce bit-identical results to the parallel versions; wall-clock
//! parallel speedup is the only thing lost. `ThreadPool::install` runs
//! its closure inline. Swap back to real rayon by restoring the
//! crates.io entry in the workspace `Cargo.toml`.

use std::ops::Range;

/// Sequential stand-in for a rayon `ParallelIterator`.
///
/// Deliberately does **not** implement `Iterator`: combinators are
/// inherent methods with rayon's signatures, so semantic differences
/// (e.g. `reduce`) cannot silently fall through to std behavior.
pub struct SeqIter<I>(I);

impl<I: Iterator> SeqIter<I> {
    /// Map each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> SeqIter<std::iter::Map<I, F>> {
        SeqIter(self.0.map(f))
    }

    /// Keep items passing the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> SeqIter<std::iter::Filter<I, F>> {
        SeqIter(self.0.filter(f))
    }

    /// Map and keep the `Some` results.
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> SeqIter<std::iter::FilterMap<I, F>> {
        SeqIter(self.0.filter_map(f))
    }

    /// Map each item to an iterable and flatten.
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> SeqIter<std::iter::FlatMap<I, O, F>> {
        SeqIter(self.0.flat_map(f))
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> SeqIter<std::iter::Enumerate<I>> {
        SeqIter(self.0.enumerate())
    }

    /// Pair with another (parallel or plain) iterable.
    pub fn zip<J: IntoIterator>(self, other: J) -> SeqIter<std::iter::Zip<I, J::IntoIter>> {
        SeqIter(self.0.zip(other))
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style reduce: combine all items onto `identity()`.
    /// (Sequentially the identity is consumed once, as rayon guarantees
    /// for a single split.)
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Rayon-style fold: accumulate into `identity()` per "worker"
    /// (sequentially: one worker), yielding the partial accumulators.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> SeqIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        SeqIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Sum all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Largest item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Smallest item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Accepted for API parity with rayon's indexed iterators; the
    /// sequential facade has nothing to chunk.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> IntoIterator for SeqIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// `.into_par_iter()` for any owned iterable — sequential here.
pub trait IntoParallelIterator {
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a "parallel" (here: sequential) iterator.
    fn into_par_iter(self) -> SeqIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> SeqIter<Self::Iter> {
        SeqIter(self.into_iter())
    }
}

impl<T> IntoParallelIterator for Range<T>
where
    Range<T>: Iterator<Item = T>,
{
    type Iter = Range<T>;
    type Item = T;
    fn into_par_iter(self) -> SeqIter<Self::Iter> {
        SeqIter(self)
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SeqIter<Self::Iter> {
        SeqIter(self.iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a mut [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> SeqIter<Self::Iter> {
        SeqIter(self.iter_mut())
    }
}

/// Shared-slice `par_iter`/`par_chunks` — sequential here.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `par_iter`.
    fn par_iter(&self) -> SeqIter<std::slice::Iter<'_, T>>;
    /// Sequential stand-in for `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> SeqIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SeqIter<std::slice::Iter<'_, T>> {
        SeqIter(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> SeqIter<std::slice::Chunks<'_, T>> {
        SeqIter(self.chunks(chunk_size))
    }
}

/// Mutable-slice `par_iter_mut`/`par_chunks_mut` — sequential here.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for `par_iter_mut`.
    fn par_iter_mut(&mut self) -> SeqIter<std::slice::IterMut<'_, T>>;
    /// Sequential stand-in for `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SeqIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SeqIter<std::slice::IterMut<'_, T>> {
        SeqIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> SeqIter<std::slice::ChunksMut<'_, T>> {
        SeqIter(self.chunks_mut(chunk_size))
    }
}

/// Number of threads the "pool" would use (sequential facade reports
/// the CPU count so chunking heuristics still split work sensibly).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builder for a (no-op) thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Pool construction error (never produced by the stub).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sequential rayon stub cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the requested thread count (informational only).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the no-op pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _threads: self.num_threads })
    }
}

/// A no-op pool: `install` runs the closure on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    /// Run `op` (sequentially, on the current thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

/// Run two closures (sequentially) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    //! The import surface matching `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_matches_sequential_semantics() {
        let v = [1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: i32 = (0..5).into_par_iter().sum();
        assert_eq!(s, 10);
        let mut m = [1, 2, 3];
        m.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(m, [2, 3, 4]);
        assert_eq!(m.par_chunks(2).count(), 2);
    }

    #[test]
    fn rayon_style_reduce_and_fold() {
        let data = [1u32, 2, 3, 4, 5, 6];
        let hist = data
            .par_chunks(2)
            .map(|part| part.iter().sum::<u32>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(hist, 21);
        let folded: Vec<u32> = data.par_iter().fold(|| 0u32, |acc, &x| acc + x).collect();
        assert_eq!(folded.into_iter().sum::<u32>(), 21);
    }

    #[test]
    fn zip_pairs_parallel_facades() {
        let a = [1, 2, 3];
        let mut b = [10, 20, 30];
        b.par_iter_mut().zip(a.par_iter()).for_each(|(x, y)| *x += y);
        assert_eq!(b, [11, 22, 33]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
