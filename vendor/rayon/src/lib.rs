//! Offline stand-in for `rayon`: a *real* multi-threaded executor.
//!
//! The build container has no crates.io access, so this crate
//! reimplements the rayon entry points the workspace uses —
//! `par_iter`/`par_iter_mut`/`par_chunks(_mut)`/`into_par_iter`,
//! `join`, `ThreadPoolBuilder`/`ThreadPool::install`,
//! `current_num_threads` — on top of a lazily-initialized global pool
//! of `std::thread` workers (see [`pool`] internals) fed through the
//! vendored `crossbeam` channel. Work is pre-split into even pieces on
//! the calling thread and claimed by an atomic index, so the caller
//! always makes progress on its own job and nested parallelism cannot
//! deadlock.
//!
//! # Thread-count resolution
//!
//! 1. `HPCEVAL_THREADS` (environment, read once) — overrides
//!    everything, including explicit `ThreadPoolBuilder::num_threads`
//!    requests, so a run can be pinned to a fixed width for
//!    reproducibility.
//! 2. `ThreadPool::install` — sets the logical width for parallel
//!    calls made inside the closure (the builder's `num_threads`).
//! 3. Otherwise `std::thread::available_parallelism()`.
//!
//! [`current_num_threads`] reports the width resolved by these rules,
//! i.e. the width a split started *right now* would actually use.
//!
//! # Determinism guarantees
//!
//! * Element-wise operations (`for_each` over disjoint outputs, `map` +
//!   `collect`) are **bit-identical** to a sequential run at any thread
//!   count: pieces are contiguous spans, results are reassembled in
//!   piece order, and no item is ever reordered.
//! * `reduce`/`fold`/`sum` combine per-piece partials **left-to-right
//!   in piece order**, so they are bit-reproducible for a fixed logical
//!   width, and bit-identical across widths whenever the combine op is
//!   exactly associative (integer adds, `max`, histogram merges). For
//!   floating-point reduction the piece boundaries — and therefore the
//!   rounding pattern — vary with the width, exactly as in rayon.
//! * `ThreadPool::install` runs its closure on the calling thread
//!   (rayon runs it on a pool thread); only the logical width differs.

mod iter;
mod pool;

pub use iter::{
    ChunksMutP, ChunksP, EnumerateP, FilterMapP, FilterP, FlatMapP, IntoParallelIterator, MapP,
    ParIter, ParallelSlice, ParallelSliceMut, Producer, RangeIndex, RangeP, SliceMutP, SliceP,
    VecP, ZipP,
};

/// Run two closures, potentially in parallel, and return both results.
///
/// `a` runs on the calling thread; `b` is offered to the pool and run
/// by a worker, or inline after `a` if no worker picks it up. Because
/// `b` really runs concurrently whenever a worker is free, the two
/// branches may communicate through channels (b_eff's ping-pong relies
/// on this). Panics in either branch propagate to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

/// The logical thread count parallel calls started from this thread
/// would use right now: the installed pool's size inside
/// `ThreadPool::install`, else the `HPCEVAL_THREADS` override, else
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    pool::active_threads()
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Pool construction error (never produced by this implementation;
/// kept for API parity with rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction cannot fail")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` threads (0 means the default width). Overridden by
    /// `HPCEVAL_THREADS` when that is set.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. The returned pool is a *logical view* onto the
    /// shared global worker set, sized per the resolution rules in the
    /// crate docs.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = pool::env_threads().unwrap_or(if self.num_threads == 0 {
            pool::default_threads()
        } else {
            self.num_threads
        });
        Ok(ThreadPool { threads: threads.max(1) })
    }
}

/// A logical thread pool: `install` scopes parallel calls to this
/// pool's width. All pools share the one global worker set.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The width `install` grants (the satellite contract: this is the
    /// *actual* size parallel calls will see, not the CPU count).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's width installed as the logical thread
    /// count on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = pool::set_active(self.threads);
        op()
    }
}

pub mod prelude {
    //! The import surface matching `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
fn pool_env_override() -> Option<usize> {
    pool::env_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Install a 4-wide logical pool around `f` so the executor really
    /// fans out even on a 1-CPU host.
    fn with_width<R>(n: usize, f: impl FnOnce() -> R) -> R {
        super::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
    }

    #[test]
    fn map_collect_preserves_order() {
        for width in [1, 2, 4, 8] {
            let out: Vec<usize> =
                with_width(width, || (0..10_000usize).into_par_iter().map(|x| x * 2).collect());
            assert_eq!(out.len(), 10_000);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2), "width {width}");
        }
    }

    #[test]
    fn for_each_mutates_every_element() {
        let mut m = vec![0u64; 4096];
        with_width(4, || {
            m.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64 + 1);
        });
        assert!(m.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn rayon_style_reduce_and_fold() {
        let data = [1u32, 2, 3, 4, 5, 6];
        let hist = data
            .par_chunks(2)
            .map(|part| part.iter().sum::<u32>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(hist, 21);
        let folded: Vec<u32> = data.par_iter().fold(|| 0u32, |acc, &x| acc + x).collect();
        assert_eq!(folded.into_iter().sum::<u32>(), 21);
    }

    #[test]
    fn reduce_on_empty_returns_identity() {
        let v: Vec<u32> = Vec::new();
        let r = v.par_iter().map(|&x| x).reduce(|| 42, |a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn integer_reduce_is_width_invariant() {
        let keys: Vec<u32> = (0..50_000).map(|i| (i * 7919) % 256).collect();
        let histogram = |width: usize| -> Vec<u32> {
            with_width(width, || {
                keys.par_chunks(1024)
                    .map(|part| {
                        let mut h = vec![0u32; 256];
                        for &k in part {
                            h[k as usize] += 1;
                        }
                        h
                    })
                    .reduce(
                        || vec![0u32; 256],
                        |mut a, b| {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                            a
                        },
                    )
            })
        };
        let h1 = histogram(1);
        for width in [2, 4, 7] {
            assert_eq!(h1, histogram(width), "width {width}");
        }
        assert_eq!(h1.iter().sum::<u32>(), 50_000);
    }

    #[test]
    fn zip_pairs_parallel_iterators() {
        let a = [1, 2, 3];
        let mut b = [10, 20, 30];
        b.par_iter_mut().zip(a.par_iter()).for_each(|(x, y)| *x += y);
        assert_eq!(b, [11, 22, 33]);
        let c = vec![100, 200, 300];
        let mut d = vec![0, 0, 0];
        d.par_iter_mut().zip(&c).for_each(|(x, y)| *x = *y);
        assert_eq!(d, c);
    }

    #[test]
    fn filter_and_flat_map_and_minmax() {
        let evens: Vec<i32> = (0..100).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        let pairs: Vec<i32> = (0..10).into_par_iter().flat_map(|x| vec![x, -x]).collect();
        assert_eq!(pairs.len(), 20);
        assert_eq!(pairs[2], 1);
        let halved: Vec<i32> =
            (0..10).into_par_iter().filter_map(|x| (x % 2 == 0).then_some(x / 2)).collect();
        assert_eq!(halved, vec![0, 1, 2, 3, 4]);
        assert_eq!((0..1000).into_par_iter().max(), Some(999));
        assert_eq!((0..1000).into_par_iter().min(), Some(0));
        assert_eq!((0..1000).into_par_iter().count(), 1000);
        let s: i32 = (0..5).into_par_iter().sum();
        assert_eq!(s, 10);
    }

    #[test]
    fn with_min_len_caps_splitting() {
        // min_len == len forces a single piece; the result is identical
        // either way — this just exercises the hint path.
        let total: u64 =
            with_width(8, || (0..1000u64).into_par_iter().with_min_len(1000).map(|x| x).sum());
        assert_eq!(total, 499_500);
    }

    #[test]
    fn pool_reports_requested_size() {
        // HPCEVAL_THREADS is not set in the test environment, so the
        // builder's request must win and be visible inside install.
        if super::pool_env_override().is_some() {
            return; // width pinned externally; resolution tested elsewhere
        }
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(super::current_num_threads), 3);
        assert_eq!(pool.install(|| 7), 7);
        // Outside install the default width applies again.
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_width_after_panic() {
        let before = super::current_num_threads();
        let pool = super::ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = super::join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
        let caught = std::panic::catch_unwind(|| super::join(|| 1, || panic!("branch b")));
        assert!(caught.is_err());
    }

    #[test]
    fn join_branches_run_concurrently() {
        // The branches ping-pong through rendezvous channels: this only
        // terminates if `b` really runs on another thread while `a` is
        // blocked — the property b_eff depends on.
        use crossbeam::channel;
        let (to_b, b_rx) = channel::bounded::<u32>(1);
        let (to_a, a_rx) = channel::bounded::<u32>(1);
        let (sum, ()) = super::join(
            move || {
                let mut sum = 0;
                for i in 0..100 {
                    to_b.send(i).unwrap();
                    sum += a_rx.recv().unwrap();
                }
                sum
            },
            move || {
                while let Ok(v) = b_rx.recv() {
                    if to_a.send(v + 1).is_err() {
                        break;
                    }
                }
            },
        );
        assert_eq!(sum, (0..100).map(|i| i + 1).sum::<u32>());
    }

    #[test]
    fn parallel_panic_propagates_to_caller() {
        let caught = std::panic::catch_unwind(|| {
            with_width(4, || {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("piece panic");
                    }
                });
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn nested_parallelism_completes() {
        let total: usize = with_width(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|_| (0..1000usize).into_par_iter().map(|x| x % 7).sum::<usize>())
                .sum()
        });
        let one: usize = (0..1000usize).map(|x| x % 7).sum();
        assert_eq!(total, 8 * one);
    }

    #[test]
    fn elementwise_ops_bitwise_match_sequential() {
        // STREAM-triad shape: a = b + s*c, disjoint outputs.
        let n = 10_000;
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let c: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut seq = vec![0.0f64; n];
        for i in 0..n {
            seq[i] = b[i] + 3.0 * c[i];
        }
        for width in [1, 2, 4] {
            let mut par = vec![0.0f64; n];
            with_width(width, || {
                par.par_iter_mut()
                    .zip(b.par_iter().zip(&c))
                    .for_each(|(av, (bv, cv))| *av = *bv + 3.0 * *cv);
            });
            assert!(
                par.iter().zip(&seq).all(|(x, y)| x.to_bits() == y.to_bits()),
                "width {width} not bitwise identical"
            );
        }
    }
}
