//! Offline stand-in for `crossbeam`.
//!
//! Implements the [`channel`] module with crossbeam-channel semantics —
//! MPMC, cloneable `Sender`/`Receiver`, bounded (blocking `send`) and
//! unbounded flavors, disconnect detection — over `Mutex` + `Condvar`.
//! Functionally equivalent to crossbeam-channel for this workspace's
//! thread counts; the lock-free fast paths are the only thing lost.

pub mod channel {
    //! MPMC channels with crossbeam-channel's API surface.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcomes.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Timed receive outcomes.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half (cloneable — MPMC like crossbeam).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// A channel with unlimited buffering; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake receivers so they observe disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so sends can fail.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self.shared.not_full.wait(q).unwrap();
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// True when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.not_empty.wait(q).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) =
                    self.shared.not_empty.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }

        /// Blocking iterator draining until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator draining what is currently buffered.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// True when no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// See [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_ping_pong() {
            let (tx, rx) = bounded::<u32>(1);
            let (back_tx, back_rx) = bounded::<u32>(1);
            let echo = thread::spawn(move || {
                while let Ok(v) = rx.recv() {
                    if back_tx.send(v + 1).is_err() {
                        break;
                    }
                }
            });
            for i in 0..100 {
                tx.send(i).unwrap();
                assert_eq!(back_rx.recv().unwrap(), i + 1);
            }
            drop(tx);
            echo.join().unwrap();
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = bounded::<u8>(1);
            drop(rx2);
            assert!(tx2.send(9).is_err());
        }

        #[test]
        fn mpmc_fan_in_fan_out() {
            let (tx, rx) = unbounded::<u64>();
            let producers: Vec<_> = (0..4)
                .map(|k| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..250u64 {
                            tx.send(k * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 1000);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }
    }
}
