//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so this crate implements
//! the benchmarking surface the workspace's `benches/` use: `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark is auto-calibrated to a ~0.3 s measurement window and
//! reports mean wall-clock time per iteration plus derived throughput
//! (elem/s or bytes/s). No statistics beyond the mean, no HTML reports,
//! no baseline storage — numbers print to stdout.
//!
//! A benchmark binary accepts an optional substring filter as its first
//! non-flag CLI argument, mirroring `cargo bench -- <filter>`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion's own is deprecated
/// in favor of the std version; benches import either).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation: per-iteration work for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by the stub's timing —
/// setup is always excluded from the measurement).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; a bare argument is a filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter, measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement window.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API parity; the stub has no sample statistics.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id, None, f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API parity; the stub has no sample statistics.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-benchmark measurement window for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &id, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(criterion: &Criterion, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        measurement_time: criterion.measurement_time,
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let (iters, elapsed) = (bencher.iterations.max(1), bencher.elapsed);
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" thrpt: {}/s", si(n as f64 / per_iter, "elem")),
        Throughput::Bytes(n) => format!(" thrpt: {}/s", si(n as f64 / per_iter, "B")),
    });
    println!(
        "{id:<44} time: [{}] iters: {iters}{}",
        human_time(per_iter),
        rate.unwrap_or_default()
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine`, auto-scaling iteration count to the
    /// measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: time one iteration, scale to the window.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target =
            (self.measurement_time.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e7) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target;
    }

    /// Measure `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std_black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target =
            (self.measurement_time.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = target;
    }
}

/// Define a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut c = Criterion { filter: None, measurement_time: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_batched_run() {
        let mut c = Criterion { filter: None, measurement_time: Duration::from_millis(5) };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 4],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c =
            Criterion { filter: Some("zzz".into()), measurement_time: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(!ran, "filter must skip");
    }
}
