//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, `prop_map`, `prop_filter`),
//! `prop::collection::vec`, `prop::sample::select`, the [`proptest!`]
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` /
//! `prop_assume!` macros. Differences from real proptest:
//!
//! * sampling is plain uniform random (no bias toward boundary values),
//! * failing cases are reported but **not shrunk**,
//! * runs are deterministic: the RNG seed derives from the test name, so
//!   a failure reproduces exactly under `cargo test`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig` in real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Maximum strategy rejections (filters/assumes) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!` failed).
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A discard with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Test-case RNG handed to strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG for `test_name`, case `case_index`.
    pub fn for_case(test_name: &str, case_index: u64) -> Self {
        let name_hash = test_name
            .bytes()
            .fold(0xcbf29ce484222325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100000001b3));
        Self { rng: StdRng::seed_from_u64(name_hash ^ case_index.wrapping_mul(0x9e3779b97f4a7c15)) }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.random()
    }

    fn next_f64(&mut self) -> f64 {
        self.rng.random()
    }
}

/// A generator of values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `f` (resampled; the whole case is rejected
    /// after too many misses).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Box the strategy (API parity helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed strategy (`BoxedStrategy` in real proptest).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive samples", self.whence);
    }
}

/// Strategy yielding a constant (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{Strategy, TestRng};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed set.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (0..self.options.len()).sample(rng);
            self.options[idx].clone()
        }
    }
}

pub mod prelude {
    //! The import surface matching `proptest::prelude::*`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! The `prop::` module tree (`prop::collection`, `prop::sample`).
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Run one property over `config.cases` sampled cases. Used by the
/// [`proptest!`] expansion; not public API in real proptest.
pub fn run_property<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::for_case(test_name, case_index);
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume rejections ({rejected}) \
                         after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case #{} (deterministic seed — rerun \
                     reproduces): {msg}",
                    case_index - 1
                );
            }
        }
    }
}

/// The property-test macro. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(pat in strategy, ...) { body }`
/// items (attributes and doc comments included).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]. Hidden from docs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($arg_strat,)+);
            $crate::run_property(&config, stringify!($name), |rng| {
                let ($($arg_pat,)+) = $crate::Strategy::sample(&strategies, rng);
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Assert within a property; failure reports the message and fails the
/// case (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -2.0..2.0f64, z in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn maps_and_filters_compose(
            even in (0u32..1000).prop_filter("even", |v| v % 2 == 0),
            doubled in (0u32..100).prop_map(|v| v * 2),
        ) {
            prop_assert_eq!(even % 2, 0);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(0.0..1.0f64, 1..20),
            pick in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(pick.is_power_of_two());
            prop_assume!(v.len() > 1);
            prop_assert!(v.len() >= 2);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = (0u64..u64::MAX).sample(&mut crate::TestRng::for_case("t", 3));
        let b = (0u64..u64::MAX).sample(&mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        crate::run_property(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
