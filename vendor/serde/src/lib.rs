//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this crate provides
//! the small serialization core the workspace actually exercises:
//! [`Serialize`] converts a value into a [`Value`] tree (which the
//! vendored `serde_json` renders as strict JSON), and the re-exported
//! derive walks struct fields and enum variants to implement it. The
//! surface is deliberately tiny — named-field structs, unit and tuple
//! enum variants, and the std container types the artifact dumps use.
//! `Deserialize` remains a marker trait (nothing in the workspace
//! deserializes through serde). Swap back to real serde by restoring
//! the crates.io entries in the workspace `Cargo.toml`.

/// A serialized value tree — the stub's equivalent of
/// `serde_json::Value`, produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object: insertion-ordered key/value pairs (declaration order for
    /// derived structs, matching real serde).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in a [`Value::Map`]; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into a [`Value::Seq`]; `None` for other variants or out of
    /// range.
    pub fn index(&self, k: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(k),
            _ => None,
        }
    }

    /// The numeric value as `f64` (ints widen; strings do not coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Borrow the string payload of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload of a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow the items of a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can be converted into a [`Value`] tree.
///
/// Unlike real serde's visitor-based `Serialize`, the stub uses a
/// direct tree conversion — equivalent output for the subset the
/// workspace serializes, at a fraction of the machinery.
pub trait Serialize {
    /// Convert `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

/// A `Value` serializes to itself — lets already-parsed trees (e.g. a
/// WAL entry echoed over the wire) nest inside derived structs.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_tuple!((0 A)(0 A, 1 B)(0 A, 1 B, 2 C)(0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        // HashMap iteration order is arbitrary; sort for stable output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(pairs)
    }
}

/// Marker for deserializable types (blanket: every type qualifies; the
/// workspace never deserializes through serde).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Seq(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!((1u8, "a").to_value(), Value::Seq(vec![Value::UInt(1), Value::Str("a".into())]));
    }
}
