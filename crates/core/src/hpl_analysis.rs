//! The §V-A HPL parameter analysis (Figs 5–7).
//!
//! Three sweeps on each server, establishing that the *process count* is
//! the only HPL knob that materially moves power:
//!
//! * **Ns** (Fig 5): problem size from 10 % to 100 % of memory at 1,
//!   half and full cores — power curves are flat in Ns and separated by
//!   core count;
//! * **NBs** (Fig 6): block size 50..400 at fixed N — flat except a
//!   small dip at NB = 50;
//! * **P×Q** (Fig 7): grid shapes 1×4, 2×2, 4×1 over the NB sweep at
//!   N = 30,000 — minimal effect.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;

use crate::server::SimulatedServer;

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter's value (workload % for Ns, NB for NBs).
    pub x: f64,
    /// Series label ("1 Core", "P=2, Q=2", ...).
    pub series: String,
    /// Measured power, watts.
    pub power_w: f64,
    /// Achieved GFLOPS (context for the power numbers).
    pub gflops: f64,
}

/// Fig 5: memory-size sweep at 1 / 2 / 4 … cores.
pub fn ns_sweep(spec: &ServerSpec, core_series: &[u32]) -> Vec<SweepPoint> {
    let mut srv = SimulatedServer::new(spec.clone());
    let mut out = Vec::new();
    for &cores in core_series {
        for step in 1..=10 {
            let frac = 0.1 * f64::from(step);
            let cfg = HplConfig::for_memory_fraction(spec, frac, cores);
            let m = srv.measure(&cfg.signature(), cores);
            out.push(SweepPoint {
                x: frac * 100.0,
                series: format!("{cores} Core{}", if cores > 1 { "s" } else { "" }),
                power_w: m.power_w,
                gflops: m.gflops,
            });
        }
    }
    out
}

/// Fig 6: NB sweep at fixed N for each core count.
pub fn nb_sweep(spec: &ServerSpec, n: u64, core_series: &[u32]) -> Vec<SweepPoint> {
    let mut srv = SimulatedServer::new(spec.clone());
    let mut out = Vec::new();
    for &cores in core_series {
        for nb in (50..=400).step_by(50) {
            let (p, q) = HplConfig::near_square_grid(cores);
            let cfg = HplConfig { n, nb, p, q };
            let m = srv.measure(&cfg.signature(), cores);
            out.push(SweepPoint {
                x: f64::from(nb),
                series: format!("{cores} Core{}", if cores > 1 { "s" } else { "" }),
                power_w: m.power_w,
                gflops: m.gflops,
            });
        }
    }
    out
}

/// Fig 7: grid-shape sweep over NB at N = 30,000 with 4 processes.
pub fn grid_sweep(spec: &ServerSpec, n: u64) -> Vec<SweepPoint> {
    let mut srv = SimulatedServer::new(spec.clone());
    let mut out = Vec::new();
    for (p, q) in [(1u32, 4u32), (2, 2), (4, 1)] {
        for nb in (50..=400).step_by(50) {
            let cfg = HplConfig { n, nb, p, q };
            let m = srv.measure(&cfg.signature(), p * q);
            out.push(SweepPoint {
                x: f64::from(nb),
                series: format!("P={p}, Q={q}"),
                power_w: m.power_w,
                gflops: m.gflops,
            });
        }
    }
    out
}

/// Max −min power within each series (used to assert flatness).
pub fn series_spread(points: &[SweepPoint], series: &str) -> f64 {
    let watts: Vec<f64> = points.iter().filter(|p| p.series == series).map(|p| p.power_w).collect();
    let max = watts.iter().cloned().fold(f64::MIN, f64::max);
    let min = watts.iter().cloned().fold(f64::MAX, f64::min);
    if watts.is_empty() {
        0.0
    } else {
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn fig5_core_count_dominates_memory_size() {
        let spec = presets::xeon_e5462();
        let pts = ns_sweep(&spec, &[1, 2, 4]);
        // Within a core count, Ns moves power by a few watts only…
        for series in ["1 Core", "2 Cores", "4 Cores"] {
            let spread = series_spread(&pts, series);
            assert!(spread < 15.0, "{series}: spread {spread:.1} W");
        }
        // …while switching core count moves it a lot.
        let p1: f64 =
            pts.iter().filter(|p| p.series == "1 Core").map(|p| p.power_w).sum::<f64>() / 10.0;
        let p4: f64 =
            pts.iter().filter(|p| p.series == "4 Cores").map(|p| p.power_w).sum::<f64>() / 10.0;
        assert!(p4 - p1 > 40.0, "core separation {:.1}", p4 - p1);
    }

    #[test]
    fn fig6_curves_do_not_intersect() {
        // "the power curves of different numbers of cores … do not
        // intersect."
        let spec = presets::xeon_e5462();
        let pts = nb_sweep(&spec, 30_000, &[1, 2, 3, 4]);
        let series_max = |s: &str| {
            pts.iter().filter(|p| p.series == s).map(|p| p.power_w).fold(f64::MIN, f64::max)
        };
        let series_min = |s: &str| {
            pts.iter().filter(|p| p.series == s).map(|p| p.power_w).fold(f64::MAX, f64::min)
        };
        assert!(series_max("1 Core") < series_min("2 Cores"));
        assert!(series_max("2 Cores") < series_min("3 Cores"));
        assert!(series_max("3 Cores") < series_min("4 Cores"));
    }

    #[test]
    fn fig7_nb50_sits_below_the_rest() {
        // "The power when NB equals 50 is 10W smaller than the power
        // with other NBs."
        let spec = presets::xeon_e5462();
        let pts = grid_sweep(&spec, 30_000);
        for grid in ["P=1, Q=4", "P=2, Q=2", "P=4, Q=1"] {
            let series: Vec<&SweepPoint> = pts.iter().filter(|p| p.series == grid).collect();
            let nb50 = series.iter().find(|p| p.x == 50.0).unwrap().power_w;
            let rest: f64 = series.iter().filter(|p| p.x >= 200.0).map(|p| p.power_w).sum::<f64>()
                / series.iter().filter(|p| p.x >= 200.0).count() as f64;
            let dip = rest - nb50;
            assert!((5.0..20.0).contains(&dip), "{grid}: NB=50 dip {dip:.1} W");
        }
    }

    #[test]
    fn fig7_power_band_matches_paper() {
        // "the majority of power values are in the range from 230W to
        // 245W" for 4 processes at N=30,000.
        let spec = presets::xeon_e5462();
        let pts = grid_sweep(&spec, 30_000);
        let in_band = pts
            .iter()
            .filter(|p| p.x >= 100.0)
            .filter(|p| (228.0..=248.0).contains(&p.power_w))
            .count();
        let total = pts.iter().filter(|p| p.x >= 100.0).count();
        assert!(in_band * 10 >= total * 8, "only {in_band}/{total} in the 230-245 W band");
    }

    #[test]
    fn grid_shape_effect_is_minimal() {
        // "The combination of P and Q affects power minimally."
        let spec = presets::xeon_e5462();
        let pts = grid_sweep(&spec, 30_000);
        for nb in [100.0, 200.0, 400.0] {
            let at: Vec<f64> = pts.iter().filter(|p| p.x == nb).map(|p| p.power_w).collect();
            let spread = at.iter().cloned().fold(f64::MIN, f64::max)
                - at.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread < 10.0, "NB={nb}: grid spread {spread:.1} W");
        }
    }
}
