//! Full evaluation report for one server, in Markdown.
//!
//! Bundles everything a practitioner adopting the methodology would
//! want for a machine: the five-state PPW table, the comparison scores
//! (Green500, SPECpower), measurement-stability warnings, the energy
//! analysis, and — when the server is one of the paper's — the paper's
//! own numbers alongside.

use std::fmt::Write as _;

use hpceval_kernels::npb::Class;
use hpceval_machine::spec::ServerSpec;

use crate::energy_analysis::energy_study;
use crate::evaluation::Evaluator;
use crate::green500_levels::{level_study, MeasurementLevel};
use crate::rankings::{green500_score, specpower_score};
use crate::stability::stability_study;

/// Paper reference values for the preset servers: (mean PPW, Green500
/// PPW, SPECpower score).
fn paper_reference(name: &str) -> Option<(f64, f64, f64)> {
    match name {
        "Xeon-E5462" => Some((0.0639, 0.158, 247.0)),
        "Opteron-8347" => Some((0.0251, 0.0618, 22.2)),
        "Xeon-4870" => Some((0.0975, 0.307, 139.0)),
        _ => None,
    }
}

/// Render the full Markdown report for `spec`.
pub fn markdown_report(spec: &ServerSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Power evaluation report — {}\n", spec.name);
    let _ = writeln!(
        out,
        "{} × {} @ {} MHz ({} cores, {:.1} GFLOPS peak), {} GiB {:?}\n",
        spec.chips,
        spec.processor,
        spec.freq_mhz,
        spec.total_cores(),
        spec.peak_gflops(),
        spec.memory_gib,
        spec.memory_kind
    );

    // Five-state table.
    let table = Evaluator::new(spec.clone()).run();
    let _ = writeln!(out, "## Five-state evaluation (HPL + EP)\n");
    let _ = writeln!(out, "| Program | GFLOPS | Power (W) | PPW |");
    let _ = writeln!(out, "|---|---:|---:|---:|");
    for r in &table.rows {
        let _ =
            writeln!(out, "| {} | {:.4} | {:.2} | {:.4} |", r.program, r.gflops, r.power_w, r.ppw);
    }
    let _ = writeln!(out, "\n**System score (mean PPW): {:.4} GFLOPS/W**\n", table.final_score());

    // Comparison scores.
    let g5 = green500_score(spec);
    let sp = specpower_score(spec);
    let _ = writeln!(out, "## Comparison methods\n");
    let _ = writeln!(out, "| Method | Score |");
    let _ = writeln!(out, "|---|---:|");
    let _ = writeln!(out, "| Five-state mean PPW | {:.4} GFLOPS/W |", table.final_score());
    let _ = writeln!(out, "| Green500 (peak HPL) | {g5:.4} GFLOPS/W |");
    let _ = writeln!(out, "| SPECpower-style | {sp:.1} ssj_ops/W |");
    if let Some((p5, pg, ps)) = paper_reference(&spec.name) {
        let _ =
            writeln!(out, "\nPaper reference: five-state {p5}, Green500 {pg}, SPECpower {ps}.\n");
    }

    // Measurement quality.
    let levels = level_study(spec, 0x9e);
    let _ = writeln!(out, "## Green500 measurement-level sensitivity\n");
    let _ = writeln!(out, "| Level | Power (W) | PPW |");
    let _ = writeln!(out, "|---|---:|---:|");
    for l in &levels {
        let tag = match l.level {
            MeasurementLevel::L1 => "L1 (1 min, early)",
            MeasurementLevel::L2 => "L2 (20 %, centered)",
            MeasurementLevel::L3 => "L3 (full run)",
        };
        let _ = writeln!(out, "| {tag} | {:.1} | {:.4} |", l.power_w, l.ppw);
    }

    // Stability warnings.
    let unstable: Vec<String> = stability_study(spec, &[Class::A])
        .into_iter()
        .filter(|r| !r.is_stable())
        .map(|r| format!("{} ({:.1} s)", r.label, r.duration_s))
        .collect();
    let _ = writeln!(out, "\n## Measurement stability\n");
    if unstable.is_empty() {
        let _ = writeln!(out, "All class-A configurations are measurable at 1 Hz.");
    } else {
        let _ = writeln!(
            out,
            "{} class-A configuration(s) too short for stable 1 Hz measurement \
             (repeat or use a larger class): {}",
            unstable.len(),
            unstable.join(", ")
        );
    }

    // Energy headline.
    let profiles = energy_study(spec, Class::C);
    let _ = writeln!(out, "\n## Energy-to-solution (class C)\n");
    let _ = writeln!(out, "| Program | Min-energy config | Energy (kJ) |");
    let _ = writeln!(out, "|---|---|---:|");
    for p in &profiles {
        let best = p.min_energy();
        let _ = writeln!(out, "| {} | {} | {:.1} |", p.program, best.label, best.energy_kj);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn report_contains_every_section() {
        let md = markdown_report(&presets::xeon_e5462());
        for needle in [
            "# Power evaluation report — Xeon-E5462",
            "## Five-state evaluation",
            "## Comparison methods",
            "## Green500 measurement-level sensitivity",
            "## Measurement stability",
            "## Energy-to-solution",
            "HPL P4 Mf",
            "Paper reference",
        ] {
            assert!(md.contains(needle), "missing {needle:?}");
        }
    }

    #[test]
    fn custom_server_omits_paper_reference() {
        let mut spec = presets::xeon_e5462();
        spec.name = "My-Box".to_string();
        let md = markdown_report(&spec);
        assert!(!md.contains("Paper reference"));
        assert!(md.contains("# Power evaluation report — My-Box"));
    }

    #[test]
    fn report_flags_short_class_a_runs() {
        let md = markdown_report(&presets::xeon_e5462());
        assert!(md.contains("too short for stable"), "class-A instability warning missing");
    }
}
