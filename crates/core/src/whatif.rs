//! What-if study: future memory technology (paper §V-C1).
//!
//! The paper keeps memory utilization as an evaluation indicator even
//! though it barely moves power on DDR2, arguing: *"the situation of
//! high idle power characteristics of memory will be improved with new
//! manufacturing processes. We still consider the memory usage as an
//! evaluation indicator … to support the development of memory
//! technologies."*
//!
//! This module quantifies that argument: it sweeps the power model's
//! footprint coefficient (watts per unit of memory actually used) from
//! the DDR2 reality toward proportional-power memory and shows how the
//! evaluation's Mh/Mf states become discriminative — i.e. the method is
//! future-proof in exactly the way the paper claims.

use serde::{Deserialize, Serialize};

use hpceval_machine::spec::ServerSpec;
use hpceval_power::calibration::PowerCalibration;
use hpceval_power::model::PowerModel;

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::roofline::PerfModel;

use crate::evaluation::{MF_FRACTION, MH_FRACTION};

/// One point of the memory-technology sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemTechPoint {
    /// Footprint coefficient, watts at 100 % memory utilization.
    pub footprint_w: f64,
    /// Power of the full-core HPL run at half memory, W.
    pub mh_power_w: f64,
    /// Power of the full-core HPL run at full memory, W.
    pub mf_power_w: f64,
    /// PPW separation between the Mh and Mf states (relative).
    pub ppw_separation: f64,
}

/// Sweep the footprint coefficient over `watts_per_full` values.
pub fn memory_technology_sweep(spec: &ServerSpec, watts_per_full: &[f64]) -> Vec<MemTechPoint> {
    let p = spec.total_cores();
    let perf = PerfModel::new(spec.clone());
    let mh_cfg = HplConfig::for_memory_fraction(spec, MH_FRACTION, p);
    let mf_cfg = HplConfig::for_memory_fraction(spec, MF_FRACTION, p);
    let mh_sig = mh_cfg.signature();
    let mf_sig = mf_cfg.signature();
    let mh_est = perf.execute(&mh_sig, p);
    let mf_est = perf.execute(&mf_sig, p);

    watts_per_full
        .iter()
        .map(|&w| {
            let cal = PowerCalibration { footprint_w: w, ..PowerCalibration::for_server(spec) };
            let model = PowerModel::with_calibration(spec.clone(), cal);
            let mh_power = model.power_w(&mh_sig, &mh_est);
            let mf_power = model.power_w(&mf_sig, &mf_est);
            let mh_ppw = mh_est.gflops / mh_power;
            let mf_ppw = mf_est.gflops / mf_power;
            MemTechPoint {
                footprint_w: w,
                mh_power_w: mh_power,
                mf_power_w: mf_power,
                ppw_separation: (mh_ppw - mf_ppw).abs() / mf_ppw,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn ddr2_reality_shows_tiny_separation() {
        // At the calibrated DDR2 coefficient, Mh vs Mf power differs by
        // a few watts — the paper's measured situation.
        let pts = memory_technology_sweep(&presets::xeon_e5462(), &[4.0]);
        let d = pts[0].mf_power_w - pts[0].mh_power_w;
        assert!(d.abs() < 10.0, "DDR2 separation {d:.1} W");
    }

    #[test]
    fn proportional_memory_makes_the_states_discriminative() {
        // If memory drew power proportional to use (say 60 W at full),
        // the Mh/Mf states would separate clearly — the reason the
        // method keeps them.
        let pts = memory_technology_sweep(&presets::xeon_e5462(), &[4.0, 20.0, 60.0]);
        assert!(pts[2].ppw_separation > 4.0 * pts[0].ppw_separation);
        let d = pts[2].mf_power_w - pts[2].mh_power_w;
        assert!(d > 20.0, "future-memory separation {d:.1} W");
    }

    #[test]
    fn separation_is_monotone_in_the_coefficient() {
        let sweep: Vec<f64> = (0..8).map(|k| f64::from(k) * 15.0).collect();
        let pts = memory_technology_sweep(&presets::xeon_4870(), &sweep);
        for w in pts.windows(2) {
            assert!(
                w[1].ppw_separation >= w[0].ppw_separation - 1e-9,
                "separation not monotone: {:?}",
                pts.iter().map(|p| p.ppw_separation).collect::<Vec<_>>()
            );
        }
    }
}
