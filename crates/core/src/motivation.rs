//! The §IV motivation study: power of SPECpower, HPL and the NPB (class
//! C) across process counts (Figs 3–4, Table II).
//!
//! For each server, every NPB program is run at every process count its
//! constraint allows and its footprint fits, alongside tuned HPL and the
//! full-load SSJ workload. The paper's findings, all asserted in tests:
//!
//! 1. HPL's power grows fastest with process count and tops the chart;
//! 2. EP's grows slowest and floors it;
//! 3. only HPL and EP cover every process count;
//! 4. everything else lands between EP and HPL.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::npb::{Class, Program};
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;
use hpceval_specpower::ssj::SsjRun;

use crate::evaluation::MF_FRACTION;
use crate::server::SimulatedServer;

/// One bar of Fig 3/4: a (program, process count) power measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBar {
    /// Label as the paper prints it, e.g. "ep.C.4", "HPL.2",
    /// "SPECPower.4".
    pub label: String,
    /// Program id ("ep", "hpl", "specpower", ...).
    pub program: String,
    /// Process count.
    pub processes: u32,
    /// Measured power, watts.
    pub power_w: f64,
}

/// The full power study for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerStudy {
    /// Server name.
    pub server: String,
    /// All bars, grouped by descending process count (the paper's x-axis
    /// order).
    pub bars: Vec<PowerBar>,
}

/// Process counts the study sweeps for a server (descending, like the
/// figures): full, half, …, down to 1 by halving.
pub fn sweep_procs(total: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut p = total;
    while p >= 1 {
        v.push(p);
        if p == 1 {
            break;
        }
        p /= 2;
    }
    v
}

/// Run the §IV power study on `spec` with the NPB at `class`.
pub fn power_study(spec: &ServerSpec, class: Class) -> PowerStudy {
    let mut srv = SimulatedServer::new(spec.clone());
    let mut bars = Vec::new();
    let total = spec.total_cores();

    for &p in &sweep_procs(total) {
        // SPECpower appears once, at full cores (as in Figs 3-4).
        if p == total {
            let run = SsjRun::run(spec, 0x51);
            let level = run
                .levels
                .iter()
                .find(|l| l.label == "100%")
                .expect("schedule contains the 100% level");
            let sig = run.signature_at(spec, level);
            let m = srv.measure(&sig, p);
            bars.push(PowerBar {
                label: format!("SPECPower.{p}"),
                program: "specpower".to_string(),
                processes: p,
                power_w: m.power_w,
            });
        }
        // HPL, tuned, full memory.
        let cfg = HplConfig::for_memory_fraction(spec, MF_FRACTION, p);
        let m = srv.measure(&cfg.signature(), p);
        bars.push(PowerBar {
            label: format!("HPL.{p}"),
            program: "hpl".to_string(),
            processes: p,
            power_w: m.power_w,
        });
        // Every NPB program that can run at p.
        for prog in Program::ALL {
            let b = prog.benchmark(class);
            let sig = b.signature();
            if b.constraint().allows(p) && srv.can_run(&sig, p) {
                let m = srv.measure(&sig, p);
                bars.push(PowerBar {
                    label: format!("{}.{}.{}", prog.id(), class, p),
                    program: prog.id().to_string(),
                    processes: p,
                    power_w: m.power_w,
                });
            }
        }
    }
    PowerStudy { server: spec.name.clone(), bars }
}

impl PowerStudy {
    /// Bars at one process count.
    pub fn at_procs(&self, p: u32) -> Vec<&PowerBar> {
        self.bars.iter().filter(|b| b.processes == p).collect()
    }

    /// The bar for a program at a process count, if it ran.
    pub fn find(&self, program: &str, p: u32) -> Option<&PowerBar> {
        self.bars.iter().find(|b| b.program == program && b.processes == p)
    }

    /// Table II style rows: power normalized by the PSU rating for every
    /// NPB program + HPL + SPECpower across a full 1..=cores sweep.
    pub fn normalized_rows(&self, spec: &ServerSpec) -> Vec<(String, f64)> {
        let norm = spec.psu_total_w();
        self.bars.iter().map(|b| (b.label.clone(), b.power_w / norm)).collect()
    }

    /// Render as label/watts lines in figure order.
    pub fn render(&self) -> String {
        let mut out = format!("Power test on server {}\n", self.server);
        for b in &self.bars {
            out.push_str(&format!("{:<16} {:>9.2} W\n", b.label, b.power_w));
        }
        out
    }
}

/// The Table II experiment: the Xeon-4870 swept over the paper's process
/// list with normalized power.
pub fn table2_sweep(spec: &ServerSpec, class: Class) -> Vec<PowerBar> {
    let mut srv = SimulatedServer::new(spec.clone());
    let mut bars = Vec::new();
    // The paper's process list for Table II.
    let procs = [1u32, 2, 4, 8, 9, 16, 25, 32, 36, 39, 40];
    for &p in &procs {
        if p > spec.total_cores() {
            continue;
        }
        let cfg = HplConfig::for_memory_fraction(spec, MF_FRACTION, p);
        let m = srv.measure(&cfg.signature(), p);
        bars.push(PowerBar {
            label: format!("HPL.{p}"),
            program: "hpl".to_string(),
            processes: p,
            power_w: m.power_w,
        });
        for prog in Program::ALL {
            let b = prog.benchmark(class);
            let sig = b.signature();
            if b.constraint().allows(p) && srv.can_run(&sig, p) {
                let m = srv.measure(&sig, p);
                bars.push(PowerBar {
                    label: format!("{}.{}.{}", prog.id(), class, p),
                    program: prog.id().to_string(),
                    processes: p,
                    power_w: m.power_w,
                });
            }
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn sweep_is_descending_halving() {
        assert_eq!(sweep_procs(16), vec![16, 8, 4, 2, 1]);
        assert_eq!(sweep_procs(4), vec![4, 2, 1]);
        assert_eq!(sweep_procs(1), vec![1]);
    }

    #[test]
    fn fig3_hpl_max_ep_min_at_four_and_two() {
        // Paper §IV-C: "EP always has the lowest power and HPL has the
        // highest power when the number of processes is four and two."
        let study = power_study(&presets::xeon_e5462(), Class::C);
        for p in [4u32, 2] {
            let group = study.at_procs(p);
            let hpl = study.find("hpl", p).unwrap().power_w;
            let ep = study.find("ep", p).unwrap().power_w;
            for bar in &group {
                if bar.program != "hpl" {
                    assert!(bar.power_w <= hpl + 1.0, "p={p}: {} above HPL", bar.label);
                }
                if bar.program != "ep" && bar.program != "specpower" {
                    assert!(bar.power_w >= ep - 1.0, "p={p}: {} below EP", bar.label);
                }
            }
        }
    }

    #[test]
    fn fig4_opteron_hpl_peaks_at_sixteen() {
        let study = power_study(&presets::opteron_8347(), Class::C);
        let hpl16 = study.find("hpl", 16).unwrap().power_w;
        for bar in &study.bars {
            assert!(bar.power_w <= hpl16 + 1.0, "{} exceeds HPL.16", bar.label);
        }
        // And HPL grows fastest: its 1->16 delta beats EP's.
        let d_hpl = hpl16 - study.find("hpl", 1).unwrap().power_w;
        let d_ep = study.find("ep", 16).unwrap().power_w - study.find("ep", 1).unwrap().power_w;
        assert!(d_hpl > d_ep, "HPL growth {d_hpl:.1} !> EP growth {d_ep:.1}");
    }

    #[test]
    fn cg_c_absent_beyond_one_process_on_e5462() {
        // Fig 3: cg.C.2 and cg.C.4 cannot run (memory).
        let study = power_study(&presets::xeon_e5462(), Class::C);
        assert!(study.find("cg", 1).is_some());
        assert!(study.find("cg", 2).is_none());
        assert!(study.find("cg", 4).is_none());
    }

    #[test]
    fn ft_c_needs_four_processes_on_e5462() {
        let study = power_study(&presets::xeon_e5462(), Class::C);
        assert!(study.find("ft", 4).is_some());
        assert!(study.find("ft", 2).is_none());
        assert!(study.find("ft", 1).is_none());
    }

    #[test]
    fn only_ep_covers_every_count_in_table2() {
        // Table II: "only EP works on all configurations of process
        // numbers" (HPL too — it is not an NPB program).
        let spec = presets::xeon_4870();
        let bars = table2_sweep(&spec, Class::C);
        let procs = [1u32, 2, 4, 8, 9, 16, 25, 32, 36, 39, 40];
        for &p in &procs {
            assert!(
                bars.iter().any(|b| b.program == "ep" && b.processes == p),
                "ep missing at p={p}"
            );
        }
        // BT only at squares; 39 must have nothing but EP and HPL.
        let at39: Vec<&PowerBar> = bars.iter().filter(|b| b.processes == 39).collect();
        assert!(at39.iter().all(|b| b.program == "ep" || b.program == "hpl"));
    }

    #[test]
    fn table2_normalized_range_matches_paper() {
        // Paper Table II: HPL from 0.45 (p=1) to 0.74 (p=40).
        let spec = presets::xeon_4870();
        let bars = table2_sweep(&spec, Class::C);
        let norm = spec.psu_total_w();
        let hpl1 = bars.iter().find(|b| b.label == "HPL.1").unwrap().power_w / norm;
        let hpl40 = bars.iter().find(|b| b.label == "HPL.40").unwrap().power_w / norm;
        assert!((hpl1 - 0.45).abs() < 0.02, "HPL.1 normalized {hpl1:.3}");
        assert!((hpl40 - 0.74).abs() < 0.03, "HPL.40 normalized {hpl40:.3}");
    }
}
