//! A simulated HPC server under test.
//!
//! Bundles one server's performance model, ground-truth power model and
//! WT210 meter, and exposes [`SimulatedServer::measure`]: run a workload
//! signature at a process count, log wall power at 1 Hz with noise and a
//! slow thermal wander, and push the log through the paper's §V-C2
//! analysis (window → trim 10 % → average).

use hpceval_machine::pmu::PmuRates;
use hpceval_machine::roofline::{ExecEstimate, PerfModel};
use hpceval_machine::spec::ServerSpec;
use hpceval_machine::topology::Placement;
use hpceval_machine::workload::WorkloadSignature;
use hpceval_power::analysis::{ProgramWindow, TraceAnalysis};
use hpceval_power::meter::Wt210;
use hpceval_power::model::PowerModel;
use serde::{Deserialize, Serialize};

/// One measured benchmark configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Program name, e.g. "ep.C".
    pub name: String,
    /// Processes used.
    pub processes: u32,
    /// Reported performance, GFLOPS.
    pub gflops: f64,
    /// Modeled execution time, seconds.
    pub time_s: f64,
    /// Metered mean power (through the trim-10 % pipeline), watts.
    pub power_w: f64,
    /// Memory utilization fraction.
    pub mem_usage_frac: f64,
    /// Performance per watt, GFLOPS/W.
    pub ppw: f64,
    /// The roofline estimate behind this measurement.
    pub est: ExecEstimate,
}

/// A server under test: models + meter.
#[derive(Debug, Clone)]
pub struct SimulatedServer {
    spec: ServerSpec,
    perf: PerfModel,
    power: PowerModel,
    seed: u64,
    clock_s: f64,
}

impl SimulatedServer {
    /// Stand up a server with a deterministic default seed.
    pub fn new(spec: ServerSpec) -> Self {
        Self::with_seed(spec, 0x5eed)
    }

    /// Stand up a server with an explicit meter seed.
    pub fn with_seed(spec: ServerSpec, seed: u64) -> Self {
        let perf = PerfModel::new(spec.clone());
        let power = PowerModel::new(spec.clone());
        Self { spec, perf, power, seed, clock_s: 0.0 }
    }

    /// Select the placement policy (default: scatter).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.perf = PerfModel::new(self.spec.clone()).with_placement(placement);
        self
    }

    /// The server's spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// The performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The ground-truth power model (for PMU/regression experiments).
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Noise-free power of a configuration (used by experiments that
    /// need ground truth, e.g. regression residual analysis).
    pub fn true_power_w(&self, sig: &WorkloadSignature, est: &ExecEstimate) -> f64 {
        self.power.power_w(sig, est)
    }

    /// Roofline estimate without metering.
    pub fn estimate(&self, sig: &WorkloadSignature, p: u32) -> ExecEstimate {
        self.perf.execute(sig, p)
    }

    /// PMU counter rates for a running configuration.
    pub fn pmu_rates(&self, sig: &WorkloadSignature, est: &ExecEstimate) -> PmuRates {
        PmuRates::synthesize(&self.spec, sig, est)
    }

    /// Whether `sig` can run with `p` processes on this machine
    /// (memory fit; the caller checks the program's proc constraint).
    pub fn can_run(&self, sig: &WorkloadSignature, p: u32) -> bool {
        p >= 1 && p <= self.spec.total_cores() && sig.fits_in(p, self.spec.memory_bytes())
    }

    /// Run the full measurement pipeline for one configuration.
    ///
    /// The meter logs for the modeled duration (clamped to 30–600 s of
    /// simulated samples: the paper repeats short programs and windows
    /// long ones), the log is windowed, trimmed by 10 % and averaged.
    pub fn measure(&mut self, sig: &WorkloadSignature, p: u32) -> Measurement {
        let est = self.perf.execute(sig, p);
        let truth = self.power.power_w(sig, &est);
        let noise = self.power.calibration().noise_sd_w;
        let duration = if est.time_s > 0.0 { est.time_s.clamp(30.0, 600.0) } else { 120.0 };

        // Seed per measurement so runs are independent but the whole
        // session is reproducible.
        let mut meter =
            Wt210::new(self.seed ^ hash_name(&sig.name) ^ u64::from(p)).with_noise(noise);
        let start = self.clock_s;
        // Slow thermal wander on top of white noise: fans and VRM
        // temperature drift over tens of seconds.
        let wander = noise * 1.5;
        let trace = meter.record(start, duration, move |t| truth + wander * (t * 0.013).sin());
        self.clock_s += duration + 10.0; // inter-program gap

        let stats = TraceAnalysis::new(trace)
            .analyze(ProgramWindow { start_s: start, end_s: start + duration + 1.0 })
            .expect("window covers the recorded trace");

        let power_w = stats.mean_w;
        Measurement {
            name: sig.name.clone(),
            processes: est.plan.processes,
            gflops: est.gflops,
            time_s: est.time_s,
            power_w,
            mem_usage_frac: est.mem_usage_frac,
            ppw: if power_w > 0.0 { est.gflops / power_w } else { 0.0 },
            est,
        }
    }

    /// Measure the idle state (the evaluation's first row).
    pub fn measure_idle(&mut self) -> Measurement {
        let sig = WorkloadSignature::idle();
        self.measure(&sig, 0)
    }

    /// Pin the session clock to `t_s`.
    ///
    /// A normal session advances the clock cumulatively between
    /// measurements; a *resumable* job instead measures each state in a
    /// fixed per-state time slot so the result of state k is identical
    /// whether the run got there in one pass or across a crash/restart
    /// (the fleet's checkpoint contract).
    pub fn seek_clock(&mut self, t_s: f64) {
        self.clock_s = t_s;
    }
}

/// Stable small hash for per-measurement meter seeding.
fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf29ce484222325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_kernels::npb::{ep::Ep, Class};
    use hpceval_kernels::suite::Benchmark;
    use hpceval_machine::presets;

    #[test]
    fn idle_measurement_matches_calibration() {
        let mut srv = SimulatedServer::new(presets::xeon_e5462());
        let m = srv.measure_idle();
        assert!((m.power_w - 134.37).abs() < 2.0, "idle {}", m.power_w);
        assert_eq!(m.gflops, 0.0);
        assert_eq!(m.ppw, 0.0);
    }

    #[test]
    fn measurement_is_reproducible_under_seed() {
        let sig = Ep::new(Class::C).signature();
        let mut a = SimulatedServer::with_seed(presets::xeon_4870(), 9);
        let mut b = SimulatedServer::with_seed(presets::xeon_4870(), 9);
        assert_eq!(a.measure(&sig, 8), b.measure(&sig, 8));
    }

    #[test]
    fn metered_power_is_close_to_truth() {
        let sig = Ep::new(Class::C).signature();
        let mut srv = SimulatedServer::new(presets::opteron_8347());
        let est = srv.estimate(&sig, 4);
        let truth = srv.true_power_w(&sig, &est);
        let m = srv.measure(&sig, 4);
        assert!((m.power_w - truth).abs() < 3.0, "{} vs {}", m.power_w, truth);
    }

    #[test]
    fn can_run_respects_memory_and_cores() {
        let srv = SimulatedServer::new(presets::xeon_e5462());
        let ep = Ep::new(Class::C).signature();
        assert!(srv.can_run(&ep, 4));
        assert!(!srv.can_run(&ep, 5), "only 4 cores");
        assert!(!srv.can_run(&ep, 0));
        let cg = hpceval_kernels::npb::cg::Cg::new(Class::C).signature();
        assert!(srv.can_run(&cg, 1));
        assert!(!srv.can_run(&cg, 2), "cg.C.2 exceeds 8 GiB (paper Fig 3)");
    }

    #[test]
    fn clock_advances_between_measurements() {
        let sig = Ep::new(Class::C).signature();
        let mut srv = SimulatedServer::new(presets::xeon_e5462());
        let m1 = srv.measure(&sig, 1);
        let m2 = srv.measure(&sig, 2);
        // Different windows, both valid.
        assert!(m1.power_w > 0.0 && m2.power_w > 0.0);
        assert!(m2.power_w > m1.power_w, "more cores, more power");
    }
}
