//! Measurement-stability analysis for short-running programs.
//!
//! The paper warns (§V-B1): *"some of the programs finish quickly due to
//! the small scale of A. For example, the duration of LU.A.2 and MG.A.2
//! are 1.01s and 2.45s … The stability and accuracy are difficult to
//! maintain"* — and this is why the evaluation chooses EP at class C
//! ("mainly due to its stable measurement time").
//!
//! This module quantifies the instability: for each configuration it
//! estimates the run duration, the sample count a 1 Hz meter retains
//! after the 10 % trim, and the resulting standard error of the power
//! estimate. The tests confirm the paper's two decisions: class A runs
//! are unstable, and ep.C is the most stable configurable kernel.

use serde::{Deserialize, Serialize};

use hpceval_kernels::npb::{Class, Program};
use hpceval_machine::spec::ServerSpec;

use crate::server::SimulatedServer;

/// Stability assessment of one measured configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// Configuration label, e.g. "lu.A.2".
    pub label: String,
    /// Modeled run duration, s.
    pub duration_s: f64,
    /// Samples a 1 Hz meter keeps after the 10 % trim.
    pub effective_samples: usize,
    /// Standard error of the mean power estimate, W (meter noise /
    /// √samples; ∞ when no sample survives).
    pub power_std_error_w: f64,
}

impl StabilityReport {
    /// The paper's implicit acceptability criterion: enough samples for
    /// a sub-watt standard error.
    pub fn is_stable(&self) -> bool {
        self.effective_samples >= 10 && self.power_std_error_w < 1.0
    }
}

/// Assess every runnable (program, class, processes ∈ {1, 2, half,
/// full}) configuration on `spec`.
pub fn stability_study(spec: &ServerSpec, classes: &[Class]) -> Vec<StabilityReport> {
    let srv = SimulatedServer::new(spec.clone());
    let noise = srv.power_model().calibration().noise_sd_w.max(0.1);
    let total = spec.total_cores();
    let mut procs = vec![1u32, 2, (total / 2).max(1), total];
    procs.dedup();
    let mut out = Vec::new();
    for &class in classes {
        for prog in Program::ALL {
            let bench = prog.benchmark(class);
            let sig = bench.signature();
            for &p in &procs {
                if !bench.constraint().allows(p) || !srv.can_run(&sig, p) {
                    continue;
                }
                let est = srv.estimate(&sig, p);
                let raw = est.time_s.floor().max(0.0) as usize + 1;
                let kept = hpceval_power::analysis::trimmed_count(raw, 0.10);
                let se = if kept == 0 { f64::INFINITY } else { noise / (kept as f64).sqrt() };
                out.push(StabilityReport {
                    label: format!("{}.{}.{}", prog.id(), class.letter(), p),
                    duration_s: est.time_s,
                    effective_samples: kept,
                    power_std_error_w: se,
                });
            }
        }
    }
    out
}

/// Minimum repetitions of a configuration needed to push the power
/// standard error below `target_w` (the paper repeats short programs).
pub fn repetitions_needed(report: &StabilityReport, noise_sd_w: f64, target_w: f64) -> u32 {
    if report.effective_samples == 0 {
        return u32::MAX;
    }
    let per_run_var = noise_sd_w * noise_sd_w / report.effective_samples as f64;
    let runs = (per_run_var / (target_w * target_w)).ceil();
    (runs as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    fn study() -> Vec<StabilityReport> {
        stability_study(&presets::xeon_e5462(), &[Class::A, Class::C])
    }

    #[test]
    fn class_a_runs_are_short_and_unstable() {
        // The paper: LU.A.2 runs ~1 s; MG.A.2 ~2.45 s.
        let s = study();
        let mg_a2 = s.iter().find(|r| r.label == "mg.A.2").expect("mg.A.2 runs");
        assert!(mg_a2.duration_s < 10.0, "mg.A.2 lasts {:.2} s", mg_a2.duration_s);
        assert!(!mg_a2.is_stable(), "mg.A.2 must be flagged unstable");
    }

    #[test]
    fn ep_c_is_stable_at_every_core_count() {
        // "We select the C scale in EP mainly due to its stable
        // measurement time."
        let s = study();
        for r in s.iter().filter(|r| r.label.starts_with("ep.C.")) {
            assert!(r.is_stable(), "{} unstable: {:?}", r.label, r);
            assert!(r.duration_s > 30.0, "{} too short", r.label);
        }
    }

    #[test]
    fn class_c_is_more_stable_than_class_a_per_program() {
        let s = study();
        for prog in ["bt", "lu", "mg", "sp", "is"] {
            let a = s.iter().find(|r| r.label == format!("{prog}.A.1"));
            let c = s.iter().find(|r| r.label == format!("{prog}.C.1"));
            if let (Some(a), Some(c)) = (a, c) {
                assert!(
                    c.effective_samples > a.effective_samples,
                    "{prog}: C {} !> A {}",
                    c.effective_samples,
                    a.effective_samples
                );
            }
        }
    }

    #[test]
    fn class_w_is_why_the_paper_omits_it() {
        // §III-C: "problem size W is extremely small and the execution
        // time is short, so it is also omitted from this study."
        let s = stability_study(&presets::xeon_e5462(), &[Class::W, Class::A]);
        for prog in ["bt", "lu", "mg", "sp", "is", "ft", "cg"] {
            let w = s.iter().find(|r| r.label == format!("{prog}.W.1"));
            let a = s.iter().find(|r| r.label == format!("{prog}.A.1"));
            if let (Some(w), Some(a)) = (w, a) {
                assert!(
                    w.duration_s < a.duration_s,
                    "{prog}: W {:.2} s !< A {:.2} s",
                    w.duration_s,
                    a.duration_s
                );
            }
        }
        // And at full cores, every class-W run is unstable.
        let full = presets::xeon_e5462().total_cores();
        let unstable_w = s
            .iter()
            .filter(|r| r.label.contains(".W.") && r.label.ends_with(&format!(".{full}")))
            .all(|r| !r.is_stable());
        assert!(unstable_w, "class W must be unmeasurable at full cores");
    }

    #[test]
    fn repetitions_shrink_the_error() {
        let r = StabilityReport {
            label: "short".into(),
            duration_s: 5.0,
            effective_samples: 4,
            power_std_error_w: 1.0,
        };
        let reps = repetitions_needed(&r, 2.0, 0.3);
        assert!(reps > 1, "short run must need repeats, got {reps}");
        // More lenient target needs fewer runs.
        assert!(repetitions_needed(&r, 2.0, 1.0) <= reps);
    }

    #[test]
    fn zero_sample_configs_need_infinite_repeats() {
        let r = StabilityReport {
            label: "instant".into(),
            duration_s: 0.4,
            effective_samples: 0,
            power_std_error_w: f64::INFINITY,
        };
        assert_eq!(repetitions_needed(&r, 2.0, 0.5), u32::MAX);
        assert!(!r.is_stable());
    }
}
