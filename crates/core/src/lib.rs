//! The HPC-oriented power evaluation method (the paper's contribution).
//!
//! Everything below runs on *simulated servers*: real benchmark
//! algorithms provide resource signatures, the machine crate turns them
//! into performance estimates, the power crate into metered wall power
//! (DESIGN.md §2 documents every substitution).
//!
//! * [`server`] — [`server::SimulatedServer`]: one paper server with its
//!   roofline model, power model and WT210 meter; produces
//!   [`server::Measurement`]s through the full §V-C2 pipeline.
//! * [`evaluation`] — the five-state HPL+EP method (§V-C): idle, EP.C at
//!   1/half/full cores, HPL at half/full memory × 1/half/full cores;
//!   PPW tables (Tables IV–VI) and the system score.
//! * [`rankings`] — the three-way comparison of §V-C3: our method vs the
//!   Green500 (peak-HPL PPW) vs SPECpower (ssj_ops/W).
//! * [`motivation`] — the §IV study: power of SSJ/HPL/NPB-C across
//!   process counts on each server (Figs 3–4, Table II).
//! * [`hpl_analysis`] — the §V-A parameter sweeps: Ns, NBs, P×Q
//!   (Figs 5–7).
//! * [`npb_analysis`] — the §V-B scale study: NPB A/B/C memory and power
//!   (Figs 8–9) and the EP power/PPW/energy profile (Figs 10–11).
//! * [`ssj_experiment`] — the §IV-A series behind Figs 1–2.
//! * [`regression_experiment`] — the §VI power model: HPCC-trained
//!   forward-stepwise regression (Tables VII–VIII) validated on NPB
//!   classes B and C (Figs 12–13).
//! * [`trace_experiment`] — the trace-driven variant: instrumented
//!   kernels captured as sampled address traces, replayed through the
//!   simulated cache hierarchy, and the measured locality profiles fed
//!   back into the same train/validate pipeline.
//! * [`jobs`] — job-shaped wrappers around the evaluation entry points:
//!   the five-state method as a resumable, checkpointable state machine
//!   plus one-shot wrappers, consumed by the `hpceval-fleet`
//!   orchestrator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augmented_training;
pub mod cluster;
pub mod energy_analysis;
pub mod evaluation;
pub mod green500_levels;
pub mod hpl_analysis;
pub mod jobs;
pub mod motivation;
pub mod npb_analysis;
pub mod rankings;
pub mod regression_experiment;
pub mod report;
pub mod server;
pub mod session;
pub mod ssj_experiment;
pub mod stability;
pub mod trace_experiment;
pub mod uncertainty;
pub mod whatif;

pub use evaluation::{Evaluator, PpwRow, PpwTable};
pub use rankings::{RankingComparison, ServerScores};
pub use server::{Measurement, SimulatedServer};
