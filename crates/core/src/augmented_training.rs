//! The paper's §VI-C follow-up, implemented: *"We can combine EP and SP
//! into the training set to reinforce the load forecast for the
//! regression equation."*
//!
//! EP and SP are the regression's worst-fit programs because their power
//! has components invisible to the six PMU indicators (EP's cool scalar
//! pipeline; SP's communication). Adding their class-B samples to the
//! HPCC training set lets the model absorb part of that structure into
//! the shared coefficients. [`augmentation_study`] quantifies the gain;
//! the tests assert the paper's conjecture holds: validation R² on NPB
//! improves, with the EP family improving most.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hpceval_kernels::npb::{Class, Program};
use hpceval_machine::spec::ServerSpec;

use crate::regression_experiment::{
    collect_training, train, validate, RegressionSample, TrainedPowerModel, ValidationResult,
    SAMPLE_INTERVAL_S,
};
use crate::server::SimulatedServer;

/// Collect regression samples from selected NPB programs (the paper's
/// suggested EP + SP augmentation uses class B).
pub fn collect_npb_samples(
    spec: &ServerSpec,
    programs: &[Program],
    class: Class,
    samples_per_run: usize,
    seed: u64,
) -> Vec<RegressionSample> {
    let srv = SimulatedServer::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let noise_w = srv.power_model().calibration().noise_sd_w;
    let mut out = Vec::new();
    for &prog in programs {
        let bench = prog.benchmark(class);
        let sig = bench.signature();
        for p in bench.constraint().allowed_up_to(spec.total_cores()) {
            if !srv.can_run(&sig, p) {
                continue;
            }
            let est = srv.estimate(&sig, p);
            let truth = srv.true_power_w(&sig, &est);
            let rates = srv.pmu_rates(&sig, &est);
            for _ in 0..samples_per_run {
                let counters = rates.sample(SAMPLE_INTERVAL_S);
                let mut f = counters.as_features();
                for v in f.iter_mut().skip(1) {
                    *v *= 1.0 + 0.08 * (rng.random::<f64>() * 2.0 - 1.0);
                }
                let power = truth + noise_w * (rng.random::<f64>() * 2.0 - 1.0) * 1.7;
                out.push(RegressionSample { features: f, power_w: power });
            }
        }
    }
    out
}

/// Baseline vs EP+SP-augmented training, validated on NPB class C
/// (class B's EP/SP configurations leak into training, so the honest
/// comparison validates on the *other* class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AugmentationStudy {
    /// HPCC-only model.
    pub baseline: TrainedPowerModel,
    /// HPCC + EP.B + SP.B model.
    pub augmented: TrainedPowerModel,
    /// Baseline validation on NPB-C.
    pub baseline_validation: ValidationResult,
    /// Augmented validation on NPB-C.
    pub augmented_validation: ValidationResult,
}

impl AugmentationStudy {
    /// Gain in validation R² from the augmentation.
    pub fn r2_gain(&self) -> f64 {
        self.augmented_validation.r2 - self.baseline_validation.r2
    }

    /// Mean |difference| of a program family under a validation result.
    pub fn family_error(v: &ValidationResult, prefix: &str) -> f64 {
        let d: Vec<f64> = v
            .points
            .iter()
            .filter(|p| p.label.starts_with(prefix))
            .map(|p| p.difference().abs())
            .collect();
        d.iter().sum::<f64>() / d.len().max(1) as f64
    }
}

/// Run the §VI-C augmentation experiment on `spec`.
pub fn augmentation_study(spec: &ServerSpec, seed: u64) -> Option<AugmentationStudy> {
    let hpcc = collect_training(spec, 25, seed);
    let npb = collect_npb_samples(spec, &[Program::Ep, Program::Sp], Class::B, 25, seed ^ 0xa);

    let baseline = train(&hpcc)?;
    let mut combined = hpcc;
    combined.extend(npb);
    let augmented = train(&combined)?;

    let baseline_validation = validate(spec, Class::C, &baseline, seed ^ 0xc);
    let augmented_validation = validate(spec, Class::C, &augmented, seed ^ 0xc);
    Some(AugmentationStudy { baseline, augmented, baseline_validation, augmented_validation })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn augmentation_improves_validation_r2() {
        // The paper's conjecture: folding EP and SP into training
        // reinforces the load forecast.
        let study = augmentation_study(&presets::xeon_4870(), 42).expect("trains");
        assert!(
            study.r2_gain() > 0.0,
            "no gain: baseline {:.4} vs augmented {:.4}",
            study.baseline_validation.r2,
            study.augmented_validation.r2
        );
        assert!(study.augmented_validation.r2 > 0.55);
    }

    #[test]
    fn ep_family_error_shrinks_most() {
        let study = augmentation_study(&presets::xeon_4870(), 42).expect("trains");
        let before = AugmentationStudy::family_error(&study.baseline_validation, "ep.");
        let after = AugmentationStudy::family_error(&study.augmented_validation, "ep.");
        assert!(after < before, "EP error {before:.3} -> {after:.3}");
    }

    #[test]
    fn non_augmented_families_do_not_collapse() {
        // The augmentation must not wreck the fit elsewhere.
        let study = augmentation_study(&presets::xeon_4870(), 42).expect("trains");
        for fam in ["bt.", "lu.", "mg.", "ft."] {
            let before = AugmentationStudy::family_error(&study.baseline_validation, fam);
            let after = AugmentationStudy::family_error(&study.augmented_validation, fam);
            assert!(after < before + 0.30, "{fam}: {before:.3} -> {after:.3}");
        }
    }

    #[test]
    fn npb_sample_collection_respects_constraints() {
        let spec = presets::xeon_4870();
        let samples = collect_npb_samples(&spec, &[Program::Sp], Class::B, 2, 1);
        // SP at squares {1,4,9,16,25,36} x 2 samples.
        assert_eq!(samples.len(), 12);
    }
}
