//! Cluster extension: scaling the evaluation beyond one server.
//!
//! The paper confines itself to single multi-core servers ("This paper
//! mainly focuses on single multi-core servers"); its obvious next step
//! — and the regime the Green500 actually ranks — is a cluster of such
//! servers. This module extends the simulated substrate with an
//! interconnect and a switch power budget, and applies both evaluation
//! methods at cluster scale.
//!
//! The headline behaviours the tests pin down:
//!
//! * HPL efficiency decays with node count (panel broadcasts traverse
//!   the network), so the Green500-style PPW **falls** as the cluster
//!   grows;
//! * EP scales embarrassingly, so the five-state score (which averages
//!   EP states in) degrades **more slowly** than the peak-HPL score —
//!   the methodology's averaging is more scale-robust than the metric
//!   it criticizes.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::npb::{ep::Ep, Class};
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::roofline::PerfModel;
use hpceval_machine::spec::ServerSpec;
use hpceval_machine::workload::WorkloadSignature;
use hpceval_power::model::PowerModel;

use crate::evaluation::{MF_FRACTION, MH_FRACTION};

/// Interconnect description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Per-link bandwidth, GB/s.
    pub bw_gbs: f64,
    /// Extra serial fraction HPL pays per doubling of the node count
    /// (panel broadcast tree depth).
    pub broadcast_penalty: f64,
    /// Switch base power, W.
    pub switch_base_w: f64,
    /// Switch per-port power, W.
    pub switch_port_w: f64,
}

impl Interconnect {
    /// Gigabit Ethernet of the paper's era (Table I lists 1000 Mbit
    /// NICs).
    pub fn gigabit_ethernet() -> Self {
        Self { bw_gbs: 0.125, broadcast_penalty: 0.055, switch_base_w: 60.0, switch_port_w: 2.5 }
    }

    /// A contemporary InfiniBand-class fabric.
    pub fn infiniband() -> Self {
        Self { bw_gbs: 4.0, broadcast_penalty: 0.015, switch_base_w: 120.0, switch_port_w: 6.0 }
    }
}

/// A homogeneous cluster of the paper's servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// The node type.
    pub node: ServerSpec,
    /// Number of nodes.
    pub nodes: u32,
    /// The fabric between them.
    pub interconnect: Interconnect,
}

/// One cluster-level score pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterScore {
    /// Nodes in the configuration.
    pub nodes: u32,
    /// Aggregate HPL performance, GFLOPS.
    pub hpl_gflops: f64,
    /// Total cluster power during HPL, W.
    pub hpl_power_w: f64,
    /// Green500-style PPW at cluster scale.
    pub green500_ppw: f64,
    /// Five-state-style mean PPW at cluster scale.
    pub five_state_ppw: f64,
}

impl ClusterSpec {
    /// HPL parallel efficiency across nodes: each doubling of the tree
    /// depth adds the broadcast penalty.
    pub fn hpl_network_eff(&self) -> f64 {
        let doublings = (f64::from(self.nodes.max(1))).log2();
        (1.0 - self.interconnect.broadcast_penalty * doublings).max(0.2)
    }

    /// Switch power for this port count.
    pub fn switch_power_w(&self) -> f64 {
        if self.nodes <= 1 {
            0.0
        } else {
            self.interconnect.switch_base_w
                + self.interconnect.switch_port_w * f64::from(self.nodes)
        }
    }

    /// Evaluate one workload at full cores on every node; returns
    /// (aggregate GFLOPS, total watts).
    fn run_all_nodes(&self, sig: &WorkloadSignature, network_eff: f64) -> (f64, f64) {
        let p = self.node.total_cores();
        let perf = PerfModel::new(self.node.clone());
        let power = PowerModel::new(self.node.clone());
        let est = perf.execute(sig, p);
        let node_w = power.power_w(sig, &est);
        let gflops = est.gflops * f64::from(self.nodes) * network_eff;
        let watts = node_w * f64::from(self.nodes) + self.switch_power_w();
        (gflops, watts)
    }

    /// Score the cluster under both methods.
    pub fn score(&self) -> ClusterScore {
        let p = self.node.total_cores();
        let net = self.hpl_network_eff();

        // Green500: full-memory HPL across the whole cluster.
        let hpl = HplConfig::for_memory_fraction(&self.node, MF_FRACTION, p).signature();
        let (hpl_gflops, hpl_power_w) = self.run_all_nodes(&hpl, net);

        // Five-state, cluster flavour: idle + EP (perfect scaling) +
        // HPL at Mh/Mf (network-limited), full cores on every node.
        let power = PowerModel::new(self.node.clone());
        let idle_w = power.idle_w() * f64::from(self.nodes) + self.switch_power_w();
        let ep = Ep::new(Class::C).signature();
        let (ep_gflops, ep_w) = self.run_all_nodes(&ep, 1.0);
        let mh = HplConfig::for_memory_fraction(&self.node, MH_FRACTION, p).signature();
        let (mh_gflops, mh_w) = self.run_all_nodes(&mh, net);
        let rows = [(0.0, idle_w), (ep_gflops, ep_w), (mh_gflops, mh_w), (hpl_gflops, hpl_power_w)];
        let five_state_ppw = rows.iter().map(|(g, w)| g / w).sum::<f64>() / rows.len() as f64;

        ClusterScore {
            nodes: self.nodes,
            hpl_gflops,
            hpl_power_w,
            green500_ppw: hpl_gflops / hpl_power_w,
            five_state_ppw,
        }
    }
}

/// Score a node type across a sweep of cluster sizes.
pub fn scaling_study(
    node: &ServerSpec,
    interconnect: Interconnect,
    node_counts: &[u32],
) -> Vec<ClusterScore> {
    node_counts
        .iter()
        .map(|&nodes| ClusterSpec { node: node.clone(), nodes, interconnect }.score())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    fn sweep(ic: Interconnect) -> Vec<ClusterScore> {
        scaling_study(&presets::xeon_4870(), ic, &[1, 2, 4, 8, 16, 32])
    }

    #[test]
    fn single_node_matches_standalone_green500() {
        let scores = sweep(Interconnect::gigabit_ethernet());
        let one = &scores[0];
        let standalone = crate::rankings::green500_score(&presets::xeon_4870());
        assert!(
            (one.green500_ppw - standalone).abs() / standalone < 0.05,
            "cluster-of-1 {:.4} vs standalone {:.4}",
            one.green500_ppw,
            standalone
        );
    }

    #[test]
    fn green500_ppw_decays_with_cluster_size() {
        let scores = sweep(Interconnect::gigabit_ethernet());
        for w in scores.windows(2) {
            assert!(
                w[1].green500_ppw < w[0].green500_ppw,
                "PPW must fall: {} nodes {:.4} -> {} nodes {:.4}",
                w[0].nodes,
                w[0].green500_ppw,
                w[1].nodes,
                w[1].green500_ppw
            );
        }
    }

    #[test]
    fn aggregate_performance_still_grows() {
        // Efficiency falls but capability rises — the usual trade.
        let scores = sweep(Interconnect::gigabit_ethernet());
        for w in scores.windows(2) {
            assert!(w[1].hpl_gflops > w[0].hpl_gflops);
        }
    }

    #[test]
    fn five_state_score_degrades_more_slowly_than_green500() {
        let scores = sweep(Interconnect::gigabit_ethernet());
        let first = &scores[0];
        let last = scores.last().expect("nonempty sweep");
        let g_loss = 1.0 - last.green500_ppw / first.green500_ppw;
        let f_loss = 1.0 - last.five_state_ppw / first.five_state_ppw;
        assert!(f_loss < g_loss, "five-state loss {f_loss:.3} !< Green500 loss {g_loss:.3}");
    }

    #[test]
    fn better_fabric_preserves_more_ppw() {
        let eth = sweep(Interconnect::gigabit_ethernet());
        let ib = sweep(Interconnect::infiniband());
        let at = |s: &[ClusterScore], n: u32| {
            s.iter().find(|c| c.nodes == n).expect("size present").green500_ppw
        };
        assert!(at(&ib, 32) > at(&eth, 32));
    }

    #[test]
    fn switch_power_is_zero_for_one_node() {
        let c = ClusterSpec {
            node: presets::xeon_e5462(),
            nodes: 1,
            interconnect: Interconnect::gigabit_ethernet(),
        };
        assert_eq!(c.switch_power_w(), 0.0);
        let c2 = ClusterSpec { nodes: 8, ..c };
        assert!(c2.switch_power_w() > 60.0);
    }
}
