//! A full measurement session, following the paper's §V-C2 procedure
//! literally.
//!
//! The paper's test harness (1) shares a directory for the meter PC,
//! (2) mounts it, (3) synchronizes clocks, (4) starts WTViewer logging,
//! (5–6) runs the configured programs back to back with idle gaps, and
//! then (1–6 of the analysis) merges the CSV logs, extracts each
//! program's window by its recorded execution interval, trims 10 % and
//! averages. [`MeasurementSession`] does exactly that: it produces *one
//! continuous power log* spanning the whole schedule — idle gaps
//! included — serializes it through the CSV path, and recovers
//! per-program statistics from the merged log, rather than measuring
//! each program in isolation.
//!
//! Tests assert the round trip: session-extracted powers match direct
//! per-program measurement within meter noise, and a clock offset breaks
//! them (why step (3) exists).

use serde::{Deserialize, Serialize};

use hpceval_machine::spec::ServerSpec;
use hpceval_machine::workload::WorkloadSignature;
use hpceval_power::analysis::{ProgramWindow, TraceAnalysis, WindowStats};
use hpceval_power::meter::{PowerTrace, Wt210};
use hpceval_power::model::PowerModel;

use hpceval_machine::roofline::PerfModel;

/// One scheduled program run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledRun {
    /// Program label.
    pub label: String,
    /// Recorded start on the server clock, s.
    pub start_s: f64,
    /// Recorded end, s.
    pub end_s: f64,
    /// The roofline GFLOPS (for PPW afterwards).
    pub gflops: f64,
    /// Ground-truth mean power (for test comparison).
    pub true_power_w: f64,
}

/// A completed session: the schedule plus the single merged CSV log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSession {
    /// Runs in schedule order.
    pub runs: Vec<ScheduledRun>,
    /// The WTViewer-style CSV of the full session.
    pub csv: String,
}

/// Idle seconds between scheduled programs (the paper's scripts insert
/// gaps so windows cannot bleed into each other).
pub const GAP_S: f64 = 20.0;
/// Per-program measurement window cap, seconds.
pub const RUN_CAP_S: f64 = 240.0;

/// Execute a schedule of `(label, signature, processes)` on `spec`,
/// logging one continuous power trace.
///
/// `clock_offset_s` models an unsynchronized meter PC (0 after the
/// paper's sync step).
pub fn run_session(
    spec: &ServerSpec,
    schedule: &[(String, WorkloadSignature, u32)],
    seed: u64,
    clock_offset_s: f64,
) -> MeasurementSession {
    let perf = PerfModel::new(spec.clone());
    let power = PowerModel::new(spec.clone());
    let idle = power.idle_w();
    let noise = power.calibration().noise_sd_w;

    // Build the piecewise power signal and the run records.
    let mut runs = Vec::new();
    let mut segments: Vec<(f64, f64, f64)> = Vec::new(); // (start, end, watts)
    let mut t = GAP_S;
    for (label, sig, p) in schedule {
        let est = perf.execute(sig, *p);
        let watts = power.power_w(sig, &est);
        let duration = est.time_s.clamp(30.0, RUN_CAP_S);
        segments.push((t, t + duration, watts));
        runs.push(ScheduledRun {
            label: label.clone(),
            start_s: t,
            end_s: t + duration,
            gflops: est.gflops,
            true_power_w: watts,
        });
        t += duration + GAP_S;
    }
    let total = t;

    let mut meter = Wt210::new(seed).with_noise(noise).with_clock_offset(clock_offset_s);
    let trace = meter.record(0.0, total, move |time| {
        segments
            .iter()
            .find(|(s, e, _)| time >= *s && time < *e)
            .map_or(idle, |&(_, _, w)| w)
    });
    MeasurementSession { runs, csv: trace.to_csv() }
}

impl MeasurementSession {
    /// The analysis side: parse the CSV back (step 1), extract each
    /// run's window (step 2), trim and average (steps 3–4). Returns
    /// `None` when the CSV fails to parse or a window is empty.
    pub fn analyze(&self) -> Option<Vec<(ScheduledRun, WindowStats)>> {
        let trace = PowerTrace::from_csv(&self.csv)?;
        let analysis = TraceAnalysis::new(trace);
        self.runs
            .iter()
            .map(|run| {
                analysis
                    .analyze(ProgramWindow { start_s: run.start_s, end_s: run.end_s })
                    .map(|stats| (run.clone(), stats))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_kernels::hpl::HplConfig;
    use hpceval_kernels::npb::{ep::Ep, Class};
    use hpceval_kernels::suite::Benchmark;
    use hpceval_machine::presets;

    fn schedule(spec: &ServerSpec) -> Vec<(String, WorkloadSignature, u32)> {
        let full = spec.total_cores();
        vec![
            ("ep.C.1".into(), Ep::new(Class::C).signature(), 1),
            (format!("ep.C.{full}"), Ep::new(Class::C).signature(), full),
            (
                format!("HPL P{full} Mf"),
                HplConfig::for_memory_fraction(spec, 0.92, full).signature(),
                full,
            ),
        ]
    }

    #[test]
    fn session_recovers_per_program_power() {
        let spec = presets::xeon_e5462();
        let session = run_session(&spec, &schedule(&spec), 77, 0.0);
        let results = session.analyze().expect("analysis succeeds");
        assert_eq!(results.len(), 3);
        for (run, stats) in &results {
            assert!(
                (stats.mean_w - run.true_power_w).abs() < 3.0,
                "{}: {} vs truth {}",
                run.label,
                stats.mean_w,
                run.true_power_w
            );
        }
        // Distinct programs must yield distinct powers.
        assert!(results[2].1.mean_w > results[1].1.mean_w + 20.0);
        assert!(results[1].1.mean_w > results[0].1.mean_w + 10.0);
    }

    #[test]
    fn csv_round_trip_is_the_data_path() {
        let spec = presets::opteron_8347();
        let session = run_session(&spec, &schedule(&spec), 5, 0.0);
        // The CSV itself must parse and cover the whole session.
        let trace = PowerTrace::from_csv(&session.csv).expect("valid CSV");
        let last_end = session.runs.last().expect("runs scheduled").end_s;
        assert!(trace.duration_s() >= last_end);
    }

    #[test]
    fn unsynchronized_clock_corrupts_extraction() {
        // Step (3) of the paper's procedure exists for a reason. (A
        // small offset — under 10 % of the window — is silently absorbed
        // by the trim step; a 60 s offset on a 240 s window is not.)
        let spec = presets::xeon_e5462();
        let good = run_session(&spec, &schedule(&spec), 3, 0.0);
        let bad = run_session(&spec, &schedule(&spec), 3, 60.0);
        let g = good.analyze().expect("good session analyzes");
        let b = bad.analyze().expect("offset session still analyzes");
        // The HPL window is hit hardest: its recorded interval now
        // overlaps the trailing idle gap.
        let g_err = (g[2].1.mean_w - g[2].0.true_power_w).abs();
        let b_err = (b[2].1.mean_w - b[2].0.true_power_w).abs();
        assert!(
            b_err > g_err + 5.0,
            "offset must visibly corrupt: good {g_err:.2} W vs bad {b_err:.2} W"
        );
    }

    #[test]
    fn idle_gaps_read_as_idle() {
        let spec = presets::xeon_e5462();
        let session = run_session(&spec, &schedule(&spec), 9, 0.0);
        let trace = PowerTrace::from_csv(&session.csv).expect("valid CSV");
        let analysis = TraceAnalysis::new(trace);
        // The first gap (before the first program).
        let stats = analysis
            .analyze(ProgramWindow { start_s: 0.0, end_s: GAP_S - 1.0 })
            .expect("gap has samples");
        assert!((stats.mean_w - 134.37).abs() < 3.0, "gap power {}", stats.mean_w);
    }

    #[test]
    fn sessions_are_deterministic_under_seed() {
        let spec = presets::xeon_4870();
        let a = run_session(&spec, &schedule(&spec), 42, 0.0);
        let b = run_session(&spec, &schedule(&spec), 42, 0.0);
        assert_eq!(a, b);
    }
}
