//! The §V-B NPB analysis: class scales and the EP profile (Figs 8–11).
//!
//! * **Fig 8** — memory footprint of every NPB program at classes A/B/C
//!   and 1/2/4 processes: footprint is decided by the class, FT grows
//!   fastest, EP is negligible and flattest.
//! * **Fig 9** — power of the same matrix: power follows the core count,
//!   not the footprint; EP floors every group.
//! * **Figs 10–11** — EP.C power, PPW and energy versus cores: power and
//!   PPW rise with cores, energy *falls* (the parallelism-saves-energy
//!   argument).

use serde::{Deserialize, Serialize};

use hpceval_kernels::npb::{ep::Ep, Class, Program};
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;
use hpceval_power::analysis::energy_kj;

use crate::server::SimulatedServer;

/// One cell of the Figs 8–9 matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Program id.
    pub program: String,
    /// NPB class.
    pub class: char,
    /// Process count.
    pub processes: u32,
    /// Resident memory, MB.
    pub memory_mb: f64,
    /// Measured power, watts.
    pub power_w: f64,
    /// Whether the configuration could run at all.
    pub ran: bool,
}

/// Run the A/B/C × {1,2,4} × programs matrix on `spec` (Figs 8–9).
pub fn scale_study(spec: &ServerSpec) -> Vec<ScaleCell> {
    let mut srv = SimulatedServer::new(spec.clone());
    let mut out = Vec::new();
    for prog in Program::ALL {
        for class in Class::ALL {
            let b = prog.benchmark(class);
            let sig = b.signature();
            for p in [1u32, 2, 4] {
                let allowed = b.constraint().allows(p) && srv.can_run(&sig, p);
                let (power, mem) = if allowed {
                    let m = srv.measure(&sig, p);
                    (m.power_w, sig.footprint_at(p) / 1e6)
                } else {
                    (0.0, sig.footprint_at(p) / 1e6)
                };
                out.push(ScaleCell {
                    program: prog.id().to_string(),
                    class: class.letter(),
                    processes: p,
                    memory_mb: mem,
                    power_w: power,
                    ran: allowed,
                });
            }
        }
    }
    out
}

/// One point of the EP profile (Figs 10–11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpPoint {
    /// Cores used.
    pub cores: u32,
    /// Power, watts.
    pub power_w: f64,
    /// PPW in MFLOPS/W (the paper's Fig 10b unit).
    pub ppw_mflops_per_w: f64,
    /// Execution time, seconds.
    pub time_s: f64,
    /// Energy, kJ (Eq. 2).
    pub energy_kj: f64,
}

/// The EP.C power/PPW/energy profile over `core_series` (Figs 10–11).
pub fn ep_profile(spec: &ServerSpec, core_series: &[u32]) -> Vec<EpPoint> {
    let mut srv = SimulatedServer::new(spec.clone());
    let sig = Ep::new(Class::C).signature();
    core_series
        .iter()
        .map(|&cores| {
            let m = srv.measure(&sig, cores);
            EpPoint {
                cores,
                power_w: m.power_w,
                ppw_mflops_per_w: m.ppw * 1000.0,
                time_s: m.time_s,
                energy_kj: energy_kj(m.power_w, m.time_s),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    fn cells() -> Vec<ScaleCell> {
        scale_study(&presets::xeon_e5462())
    }

    #[test]
    fn fig8_memory_decided_by_class_not_processes() {
        let cells = cells();
        // For a distributed program the footprint at p=1 vs p=4 within a
        // class changes far less than across classes.
        let get = |prog: &str, class: char, p: u32| {
            cells
                .iter()
                .find(|c| c.program == prog && c.class == class && c.processes == p)
                .unwrap()
                .memory_mb
        };
        let within = (get("mg", 'B', 4) - get("mg", 'B', 1)).abs();
        let across = (get("mg", 'C', 1) - get("mg", 'B', 1)).abs();
        assert!(across > 10.0 * within.max(1.0), "class effect must dominate");
    }

    #[test]
    fn fig8_ft_has_fastest_footprint_growth_ep_slowest() {
        // Measured at one process (the leftmost group of Fig 8), where
        // FT's transpose scratch is fully resident.
        let cells = cells();
        let growth = |prog: &str| {
            let a = cells
                .iter()
                .find(|c| c.program == prog && c.class == 'A' && c.processes == 1)
                .unwrap()
                .memory_mb;
            let c = cells
                .iter()
                .find(|c| c.program == prog && c.class == 'C' && c.processes == 1)
                .unwrap()
                .memory_mb;
            c - a
        };
        let ft = growth("ft");
        let ep = growth("ep");
        for prog in ["bt", "cg", "is", "lu", "mg", "sp"] {
            assert!(growth(prog) < ft, "{prog} outgrew FT");
            assert!(growth(prog) > ep, "{prog} grew slower than EP");
        }
    }

    #[test]
    fn fig9_ep_floors_every_group() {
        let cells = cells();
        for class in ['A', 'B', 'C'] {
            for p in [1u32, 2, 4] {
                let ep = cells
                    .iter()
                    .find(|c| c.program == "ep" && c.class == class && c.processes == p)
                    .unwrap();
                for c in cells
                    .iter()
                    .filter(|c| c.class == class && c.processes == p && c.ran && c.program != "ep")
                {
                    assert!(
                        c.power_w >= ep.power_w - 1.0,
                        "{}.{}.{} below EP",
                        c.program,
                        class,
                        p
                    );
                }
            }
        }
    }

    #[test]
    fn fig9_power_rises_with_cores_not_memory() {
        let cells = cells();
        // FT's footprint triples from A to C but power moves little;
        // EP's power at 4 cores clearly exceeds EP at 1 core.
        let ft_a = cells
            .iter()
            .find(|c| c.program == "ft" && c.class == 'A' && c.processes == 4)
            .unwrap();
        let ft_c = cells
            .iter()
            .find(|c| c.program == "ft" && c.class == 'C' && c.processes == 4)
            .unwrap();
        assert!(ft_a.ran && ft_c.ran);
        assert!((ft_c.power_w - ft_a.power_w).abs() < 20.0, "footprint moved FT power");
        let ep1 = cells
            .iter()
            .find(|c| c.program == "ep" && c.class == 'C' && c.processes == 1)
            .unwrap();
        let ep4 = cells
            .iter()
            .find(|c| c.program == "ep" && c.class == 'C' && c.processes == 4)
            .unwrap();
        assert!(ep4.power_w - ep1.power_w > 15.0, "cores must move power");
    }

    #[test]
    fn fig10_power_and_ppw_rise_with_cores() {
        let prof = ep_profile(&presets::xeon_e5462(), &[1, 2, 4]);
        assert!(prof[0].power_w < prof[1].power_w && prof[1].power_w < prof[2].power_w);
        assert!(
            prof[0].ppw_mflops_per_w < prof[1].ppw_mflops_per_w
                && prof[1].ppw_mflops_per_w < prof[2].ppw_mflops_per_w
        );
        // Paper Fig 10: power ~140..190 W, PPW ~0.2..0.8 MFLOPS/W.
        assert!((prof[0].power_w - 145.5).abs() < 8.0);
        assert!(prof[2].ppw_mflops_per_w > 0.4 && prof[2].ppw_mflops_per_w < 1.2);
    }

    #[test]
    fn fig11_energy_falls_with_cores() {
        // "Multiple cores reduce the total energy consumption of a
        // calculation."
        let prof = ep_profile(&presets::xeon_e5462(), &[1, 2, 4]);
        assert!(prof[0].energy_kj > prof[1].energy_kj);
        assert!(prof[1].energy_kj > prof[2].energy_kj);
        // Paper Fig 11 scale: ~35 kJ at 1 core on the Xeon-E5462.
        assert!((prof[0].energy_kj - 35.0).abs() < 8.0, "1-core energy {}", prof[0].energy_kj);
    }

    #[test]
    fn skipped_configurations_are_marked() {
        let cells = cells();
        let cg_c4 = cells
            .iter()
            .find(|c| c.program == "cg" && c.class == 'C' && c.processes == 4)
            .unwrap();
        assert!(!cg_c4.ran, "cg.C.4 must not run on 8 GiB");
        let bt_2 = cells
            .iter()
            .find(|c| c.program == "bt" && c.class == 'A' && c.processes == 2)
            .unwrap();
        assert!(!bt_2.ran, "bt needs square process counts");
    }
}
