//! The §IV-A SPECpower study (Figs 1–2).
//!
//! Runs the graduated SSJ schedule on a server and extracts the two
//! series the paper plots: memory utilization per workload level (flat,
//! below 14 %) and per-core CPU utilization per level (tracking the
//! load).

use serde::{Deserialize, Serialize};

use hpceval_machine::spec::ServerSpec;
use hpceval_specpower::ssj::SsjRun;

/// One level of the Figs 1–2 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsjLevelStats {
    /// Level label ("Cal1", "100%", …, "10%").
    pub label: String,
    /// Memory utilization percent (Fig 1's y-axis).
    pub memory_pct: f64,
    /// Per-core CPU utilization percent (Fig 2's series).
    pub cpu_pct_per_core: Vec<f64>,
}

/// The Fig 1/2 experiment on one server.
pub fn ssj_usage_study(spec: &ServerSpec, seed: u64) -> Vec<SsjLevelStats> {
    let run = SsjRun::run(spec, seed);
    run.levels
        .iter()
        .map(|l| SsjLevelStats {
            label: l.label.clone(),
            memory_pct: l.mem_usage_frac * 100.0,
            cpu_pct_per_core: l.cpu_util_per_core.iter().map(|u| u * 100.0).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn thirteen_levels_in_schedule_order() {
        let s = ssj_usage_study(&presets::xeon_e5462(), 1);
        assert_eq!(s.len(), 13);
        let labels: Vec<&str> = s.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(&labels[..4], &["Cal1", "Cal2", "Cal3", "100%"]);
        assert_eq!(labels[12], "10%");
    }

    #[test]
    fn fig1_memory_stays_below_14_percent() {
        let s = ssj_usage_study(&presets::xeon_e5462(), 2);
        for level in &s {
            assert!(level.memory_pct < 14.0 + 1e-9, "{}: {}", level.label, level.memory_pct);
            assert!(level.memory_pct > 5.0, "implausibly low: {}", level.memory_pct);
        }
    }

    #[test]
    fn fig1_memory_variation_is_small_across_levels() {
        // "the variation of workload sizes … has little effect on the
        // memory utilization."
        let s = ssj_usage_study(&presets::xeon_e5462(), 3);
        let max = s.iter().map(|l| l.memory_pct).fold(f64::MIN, f64::max);
        let min = s.iter().map(|l| l.memory_pct).fold(f64::MAX, f64::min);
        assert!(max - min < 3.0, "memory swing {:.2} pp", max - min);
    }

    #[test]
    fn fig2_cpu_tracks_workload_downward() {
        let s = ssj_usage_study(&presets::xeon_e5462(), 4);
        let mean = |label: &str| {
            let l = s.iter().find(|l| l.label == label).unwrap();
            l.cpu_pct_per_core.iter().sum::<f64>() / l.cpu_pct_per_core.len() as f64
        };
        assert!(mean("Cal1") > 95.0);
        let series: Vec<f64> = (1..=10).map(|k| mean(&format!("{}%", k * 10))).collect();
        // 10%..100% means must be increasing.
        for w in series.windows(2) {
            assert!(w[0] < w[1] + 3.0, "CPU does not track load: {series:?}");
        }
        assert!((mean("50%") - 50.0).abs() < 8.0);
    }

    #[test]
    fn all_cores_reported() {
        let spec = presets::xeon_4870();
        let s = ssj_usage_study(&spec, 5);
        for level in &s {
            assert_eq!(level.cpu_pct_per_core.len(), spec.total_cores() as usize);
        }
    }
}
