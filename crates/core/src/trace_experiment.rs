//! The trace-driven §VI regression: kernel → trace → cache replay →
//! measured localities → train/validate.
//!
//! The analytic experiment ([`crate::regression_experiment`]) feeds the
//! PMU synthesizer hand-written [`LocalityProfile`] presets. This module
//! closes the loop instead: it *runs* the instrumented kernels at small
//! scale under the sampled trace recorder, replays the captured address
//! streams through the server's simulated cache hierarchy, converts the
//! replayed [`TraceCounters`] into per-program locality profiles, and
//! re-runs the full train/validate pipeline with those measured profiles
//! substituted for the analytic ones. The end-to-end claim checked by
//! the tests: the paper's R² ordering (train ≈ 0.94 ≫ NPB-B ≈ 0.63 ≳
//! NPB-C ≈ 0.54) survives the swap — the regression's quality is a
//! property of the counters' information content, not of the hand-tuned
//! presets.
//!
//! Twelve kernels are instrumented: DGEMM, STREAM and RandomAccess on
//! the HPCC training side; CG, MG, IS, FT, EP, SP (the suite's
//! communication-heaviest program, whose strided y/z line solves are
//! the locality cliff the paper's §VI-C singles out), BT (the same ADI
//! skeleton with 5×5 block lines) and LU (the SSOR wavefront sweeps)
//! on the NPB validation side; and HPL, the five-state evaluation's
//! own kernel — enough to cover the dense/streaming/latency extremes
//! of the locality plane on both sides of the split. The remaining
//! programs keep their analytic profiles.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpcc::{dgemm, random_access, stream, HpccProgram};
use hpceval_kernels::hpl::{lu, HplConfig};
use hpceval_kernels::npb::{bt, cg, ep, ft, is, lu as npb_lu, mg, sp, Class, Program};
use hpceval_kernels::rng::NpbRng;
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;
use hpceval_machine::workload::LocalityProfile;
use hpceval_trace::{replay, CaptureConfig, CaptureGuard, Region, ReplayOptions, Trace};

use crate::regression_experiment::{
    collect_training_with, train, validate_with, RegressionExperiment,
};

/// Problem sizes for the capture runs. Small enough that every
/// kernel finishes in well under a second, large enough that every
/// instrumented loop produces thousands of sampled accesses and the
/// blocked/streaming/random structure is visible to the replay.
mod sizes {
    /// DGEMM order (not a block multiple: edge tiles traced too).
    pub const DGEMM_N: usize = 192;
    /// STREAM vector length and repetitions.
    pub const STREAM_LEN: usize = 1 << 14;
    pub const STREAM_REPS: u32 = 2;
    /// CG matrix order, nonzeros per row, iterations.
    pub const CG_N: usize = 800;
    pub const CG_NONZER: u32 = 4;
    pub const CG_ITERS: u32 = 2;
    /// MG grid edge and V-cycles.
    pub const MG_N: usize = 32;
    pub const MG_CYCLES: usize = 2;
    /// IS key count and key range (log2).
    pub const IS_LOG2_KEYS: u32 = 16;
    pub const IS_LOG2_MAX_KEY: u32 = 10;
    /// RandomAccess table size (log2 words); updates = 4 × table. 2 MiB
    /// — past every preset's L2, so the replay sees genuine randomness
    /// rather than an L1-resident toy table.
    pub const RA_LOG2_TABLE: u32 = 18;
    /// FT grid extents and evolution steps. 32×32×16 complex points is
    /// 256 KiB per buffer — the ping-ponged field + scratch pair must
    /// overflow the miniaturized hierarchy the way the real all-to-all
    /// transpose buffers overflow a 30 MiB L3.
    pub const FT_NX: usize = 32;
    pub const FT_NY: usize = 32;
    pub const FT_NZ: usize = 16;
    pub const FT_ITERS: u32 = 1;
    /// HPL matrix order and panel block size. 160×160 = 200 KiB — five
    /// panel iterations, and the matrix must overflow the miniaturized
    /// L3 while one U12 panel (nb rows) stays resident.
    pub const HPL_N: usize = 160;
    pub const HPL_NB: usize = 32;
    /// EP pair count (log2). 2^16 pairs over the fixed 256 blocks keeps
    /// every block non-trivial while the run stays instant.
    pub const EP_LOG2_PAIRS: u32 = 16;
    /// SP grid edge and ADI steps. 20³×5 doubles is 320 KiB per field —
    /// the x sweep walks unit-stride, the y/z sweeps jump 5n/5n²
    /// doubles per point, so the capture shows the same
    /// contiguous-vs-strided split the full-size grids show.
    pub const SP_N: usize = 20;
    pub const SP_STEPS: u32 = 2;
    /// BT grid edge and ADI steps. 16³ five-vectors (160 KiB per field,
    /// 800 KiB of diagonal blocks) keeps the block-Thomas line solves
    /// instant while the x/y/z sweeps show the same unit/n/n² point
    /// strides as SP — with 40/200-byte elements instead of scalars.
    pub const BT_N: usize = 16;
    pub const BT_STEPS: u32 = 2;
    /// LU grid edge and SSOR iterations. 12³ points relax twice per
    /// iteration (lower + upper sweep), each a 7-point gather plus a
    /// 200-byte diagonal-inverse read — enough sampled accesses to
    /// expose the wavefront's scattered-plane locality.
    pub const LU_N: usize = 12;
    pub const LU_SWEEPS: u32 = 2;
}

/// Run the instrumented kernel for `region` at the standard capture
/// size and return its trace. `None` only when `config.mode` is
/// [`hpceval_trace::TraceMode::Off`].
///
/// Capture sessions are globally serialized (the recorder is a process
/// singleton), so concurrent callers queue rather than interleave.
pub fn capture_kernel(region: Region, config: CaptureConfig) -> Option<Trace> {
    let guard = CaptureGuard::start(region, config)?;
    run_kernel(region);
    Some(guard.finish())
}

/// The capture-sized run of each instrumented kernel.
fn run_kernel(region: Region) {
    match region {
        Region::Dgemm => {
            let n = sizes::DGEMM_N;
            let mut rng = NpbRng::new(2015);
            let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
            let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
            let mut c = vec![0.0; n * n];
            dgemm::dgemm(n, 1.0, &a, &b, 0.0, &mut c);
        }
        Region::Stream => {
            stream::run(sizes::STREAM_LEN, sizes::STREAM_REPS);
        }
        Region::Cg => {
            cg::run(sizes::CG_N, sizes::CG_NONZER, sizes::CG_ITERS, 10.0);
        }
        Region::Mg => {
            let v = mg::Grid::random_rhs(sizes::MG_N, 7);
            let mut u = mg::Grid::zeros(sizes::MG_N);
            for _ in 0..sizes::MG_CYCLES {
                mg::v_cycle(&mut u, &v);
            }
        }
        Region::Is => {
            let keys = is::generate_keys(1 << sizes::IS_LOG2_KEYS, 1 << sizes::IS_LOG2_MAX_KEY, 99);
            is::rank_keys(&keys, 1 << sizes::IS_LOG2_MAX_KEY);
        }
        Region::RandomAccess => {
            random_access::run(sizes::RA_LOG2_TABLE, 4 << sizes::RA_LOG2_TABLE, 9);
        }
        Region::Ft => {
            ft::run_scaled(sizes::FT_NX, sizes::FT_NY, sizes::FT_NZ, sizes::FT_ITERS);
        }
        Region::Hpl => {
            let a = lu::Matrix::random(sizes::HPL_N, 2015);
            lu::factor(a, sizes::HPL_NB, 2).expect("random matrix is nonsingular");
        }
        Region::Ep => {
            ep::run(sizes::EP_LOG2_PAIRS, 2);
        }
        Region::Sp => {
            let n = sizes::SP_N;
            let prob = sp::SpProblem::new(n, 2015);
            let mut rng = NpbRng::new(16);
            let b: Vec<f64> = (0..n * n * n * 5).map(|_| rng.next_f64() - 0.5).collect();
            let mut u = vec![0.0; n * n * n * 5];
            for _ in 0..sizes::SP_STEPS {
                prob.adi_step(&mut u, &b);
            }
        }
        Region::Bt => {
            let n = sizes::BT_N;
            let prob = bt::AdiProblem::new(n, 2015);
            let mut rng = NpbRng::new(17);
            let b: Vec<_> = (0..n * n * n)
                .map(|_| {
                    [
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                    ]
                })
                .collect();
            let mut u = vec![[0.0f64; 5]; n * n * n];
            for _ in 0..sizes::BT_STEPS {
                prob.adi_step(&mut u, &b);
            }
        }
        Region::Lu => {
            let n = sizes::LU_N;
            let prob = npb_lu::SsorProblem::new(n, 2015);
            let mut rng = NpbRng::new(18);
            let b: Vec<_> = (0..n * n * n)
                .map(|_| {
                    [
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                        rng.next_f64() - 0.5,
                    ]
                })
                .collect();
            let mut u = vec![[0.0f64; 5]; n * n * n];
            for _ in 0..sizes::LU_SWEEPS {
                prob.ssor_step(&mut u, &b, 1.2);
            }
        }
    }
}

/// Replay options for one region: the hierarchy miniaturization that
/// restores the real footprint-to-cache regime (see
/// [`ReplayOptions::cache_scale`]).
///
/// The capture problems are 10³–10⁵× smaller than the production runs
/// whose locality they stand in for, so a full-size 30 MiB L3 would
/// swallow every capture working set and report "everything cache-hits"
/// for kernels whose real instances stream gigabytes. Scales are chosen
/// so each capture working set lands in the same level of the scaled
/// hierarchy that its production working set occupies in the real one:
///
/// * DGEMM replays at full scale — its reuse working set is the packed
///   tile (tens of KiB), cache-resident at *every* problem size, so the
///   capture-scale replay is already faithful.
/// * STREAM / MG / IS / RandomAccess / FT miniaturize by 512: their bulk
///   arrays (0.25–2 MiB captured, GiB-scale real) must overflow the
///   scaled L3 exactly as the real arrays overflow 30 MiB.
/// * CG miniaturizes by 2048: the gathered x-vector (6.4 KiB captured,
///   ~MiB real) must sit in the scaled L3 while the streamed matrix
///   (38 KiB captured, 100+ MiB real) spills to DRAM.
/// * EP replays at full scale like DGEMM: its working set (LCG state +
///   tallies, ~100 bytes per block) is register/L1-resident at *every*
///   problem size.
/// * HPL miniaturizes by 512 with the streaming group: the 200 KiB
///   capture matrix must overflow the scaled L3 (matching the GiB-scale
///   real matrix against 30 MiB) while the ~40 KiB U12 panel the
///   trailing update re-reads every row stays cache-resident.
/// * SP replays at full scale with DGEMM and EP: its reuse working set
///   is the per-line component group — the five co-located components
///   of a grid line span a few KiB at *any* grid size, and adjacent
///   lanes re-read each other's cache lines — while the full fields
///   are touched once per sweep, so capacity is a first-touch effect
///   the profile barely sees (the analytic preset agrees: 4% mem).
/// * BT and LU join the full-scale group for the same reason: BT's
///   reuse working set is one line of 5×5 blocks (a few KiB at any
///   grid size, touched once per sweep otherwise), and LU's is the
///   three wavefront-adjacent planes of the 7-point stencil — both
///   analytic presets agree capacity is marginal (3% mem).
pub fn replay_options(region: Region) -> ReplayOptions {
    let cache_scale = match region {
        Region::Dgemm | Region::Ep | Region::Sp | Region::Bt | Region::Lu => 1.0,
        Region::Cg => 1.0 / 2048.0,
        Region::Stream
        | Region::Mg
        | Region::Is
        | Region::RandomAccess
        | Region::Ft
        | Region::Hpl => 1.0 / 512.0,
    };
    ReplayOptions { cache_scale, ..ReplayOptions::default() }
}

/// The analytic locality profile each instrumented region's benchmark
/// declares — the baseline the measured profile replaces (and the donor
/// of the fields replay cannot observe: instruction mix and access
/// density).
pub fn analytic_locality(region: Region) -> LocalityProfile {
    // Sizing is irrelevant: locality presets don't depend on it.
    let spec = hpceval_machine::presets::xeon_4870();
    match region {
        Region::Dgemm => HpccProgram::Dgemm.benchmark(&spec).signature().locality,
        Region::Stream => HpccProgram::Stream.benchmark(&spec).signature().locality,
        Region::RandomAccess => HpccProgram::RandomAccess.benchmark(&spec).signature().locality,
        Region::Cg => Program::Cg.benchmark(Class::B).signature().locality,
        Region::Mg => Program::Mg.benchmark(Class::B).signature().locality,
        Region::Is => Program::Is.benchmark(Class::B).signature().locality,
        Region::Ft => Program::Ft.benchmark(Class::B).signature().locality,
        Region::Ep => Program::Ep.benchmark(Class::B).signature().locality,
        Region::Sp => Program::Sp.benchmark(Class::B).signature().locality,
        Region::Bt => Program::Bt.benchmark(Class::B).signature().locality,
        Region::Lu => Program::Lu.benchmark(Class::B).signature().locality,
        Region::Hpl => HplConfig::tuned(30_000, 4).signature().locality,
    }
}

/// One captured-and-replayed kernel: trace statistics plus the measured
/// locality profile that feeds the regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCapture {
    /// Benchmark id, e.g. "dgemm" (matches [`Region::name`]).
    pub kernel: String,
    /// Sampled block-descriptor events in the trace.
    pub events: u64,
    /// Expanded addresses those events describe.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Events evicted by full per-chunk rings during capture.
    pub dropped: u64,
    /// Replayed whole-hierarchy hit ratio on the target server.
    pub hit_ratio: f64,
    /// Replayed L1 hit ratio.
    pub l1_hit_ratio: f64,
    /// The measured locality profile (replayed level split grafted onto
    /// the analytic instruction mix).
    pub locality: LocalityProfile,
}

/// All instrumented kernels captured and replayed against one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredLocalities {
    /// Per-kernel capture/replay summaries, in [`Region::ALL`] order.
    pub captures: Vec<KernelCapture>,
}

impl MeasuredLocalities {
    /// The measured profile for a benchmark id, if that kernel is
    /// instrumented.
    pub fn get(&self, kernel: &str) -> Option<LocalityProfile> {
        self.captures.iter().find(|c| c.kernel == kernel).map(|c| c.locality)
    }
}

/// Capture all instrumented kernels and replay them through `spec`'s
/// cache hierarchy. `None` only when `config.mode` is `Off`.
pub fn measure_localities(spec: &ServerSpec, config: CaptureConfig) -> Option<MeasuredLocalities> {
    let mut captures = Vec::with_capacity(Region::ALL.len());
    for region in Region::ALL {
        let trace = capture_kernel(region, config)?;
        captures.push(summarize(spec, region, &trace));
    }
    Some(MeasuredLocalities { captures })
}

/// Replay one trace and fold the counters into a [`KernelCapture`].
fn summarize(spec: &ServerSpec, region: Region, trace: &Trace) -> KernelCapture {
    let counters = replay(trace, spec, replay_options(region));
    let (reads, writes) = trace.access_split();
    KernelCapture {
        kernel: region.name().to_string(),
        events: trace.total_events(),
        accesses: trace.total_accesses(),
        reads,
        writes,
        dropped: trace.dropped,
        hit_ratio: counters.hit_ratio(),
        l1_hit_ratio: counters.l1_hit_ratio(),
        locality: counters.locality_profile(&analytic_locality(region)),
    }
}

/// The complete trace-driven §VI experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceExperiment {
    /// What was captured and what it replayed to.
    pub localities: MeasuredLocalities,
    /// The regression trained and validated on the measured profiles.
    pub experiment: RegressionExperiment,
}

/// Run the §VI experiment with trace-measured localities substituted
/// for the analytic presets of the instrumented programs.
///
/// `None` when capture is disabled (`config.mode == Off`) or the
/// measured training set degenerates (it does not, for any preset).
pub fn run_trace_experiment(
    spec: &ServerSpec,
    config: CaptureConfig,
    seed: u64,
) -> Option<TraceExperiment> {
    let localities = measure_localities(spec, config)?;
    let lookup = |id: &str| localities.get(id);
    let samples = collect_training_with(spec, 25, seed, &lookup);
    let observations = samples.len();
    let model = train(&samples)?;
    let npb_b = validate_with(spec, Class::B, &model, seed ^ 0xb, &lookup);
    let npb_c = validate_with(spec, Class::C, &model, seed ^ 0xc, &lookup);
    Some(TraceExperiment {
        localities,
        experiment: RegressionExperiment { observations, model, npb_b, npb_c },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;
    use hpceval_trace::TraceMode;

    fn full() -> CaptureConfig {
        CaptureConfig { mode: TraceMode::Full, ..CaptureConfig::default() }
    }

    #[test]
    fn capture_off_yields_none() {
        let config = CaptureConfig { mode: TraceMode::Off, ..CaptureConfig::default() };
        assert!(capture_kernel(Region::Stream, config).is_none());
        assert!(measure_localities(&presets::xeon_4870(), config).is_none());
    }

    #[test]
    fn every_instrumented_kernel_produces_a_nonempty_trace() {
        for region in Region::ALL {
            let trace = capture_kernel(region, full()).expect("sampled capture runs");
            assert_eq!(trace.region, region);
            assert!(trace.total_events() > 0, "{} captured nothing", region.name());
            assert!(trace.total_accesses() > trace.total_events() / 2);
        }
    }

    #[test]
    fn captures_are_deterministic() {
        for region in [Region::Dgemm, Region::Is] {
            let a = capture_kernel(region, full()).unwrap().encode();
            let b = capture_kernel(region, full()).unwrap().encode();
            assert_eq!(a, b, "{} trace not reproducible", region.name());
        }
    }

    #[test]
    fn measured_localities_preserve_the_locality_ordering() {
        // The load-bearing structural claim: replayed hit rates order
        // the kernels the way the analytic presets assert they should —
        // blocked DGEMM reuses, STREAM streams, RandomAccess misses.
        // The tile plan's residency level varies with the active cache
        // geometry, so the plan-invariant signal is the whole-hierarchy
        // hit ratio, not the L1 rate alone.
        let locs = measure_localities(&presets::xeon_4870(), full()).unwrap();
        let l1 = |k: &str| locs.get(k).unwrap().l1_hit;
        let hit =
            |k: &str| locs.captures.iter().find(|c| c.kernel == k).map(|c| c.hit_ratio).unwrap();
        assert!(
            hit("dgemm") > hit("stream") + 0.02,
            "dgemm hit ratio {} must beat stream {}",
            hit("dgemm"),
            hit("stream")
        );
        assert!(
            l1("stream") > l1("randomaccess") + 0.1,
            "stream L1 {} must beat randomaccess {}",
            l1("stream"),
            l1("randomaccess")
        );
        for c in &locs.captures {
            assert!(
                c.locality.is_distribution(1e-6),
                "{}: measured profile must stay a distribution: {:?}",
                c.kernel,
                c.locality
            );
        }
    }

    #[test]
    fn trace_driven_experiment_reproduces_the_r2_ordering() {
        // The §VI anchors — train 0.940, NPB-B 0.634, NPB-C 0.543 —
        // must survive swapping analytic profiles for replayed ones:
        // high train fit, clearly degraded but still-useful validation.
        let e = run_trace_experiment(&presets::xeon_4870(), full(), 42)
            .expect("trace-driven training succeeds");
        let train_r2 = e.experiment.model.summary().r_square;
        let b = e.experiment.npb_b.r2;
        let c = e.experiment.npb_c.r2;
        assert!(train_r2 > 0.88 && train_r2 < 0.995, "train R² {train_r2}");
        assert!(b > 0.42 && b < 0.90, "NPB-B R² {b}");
        assert!(c > 0.40 && c < 0.90, "NPB-C R² {c}");
        assert!(b < train_r2 - 0.05, "validation must trail training: {b} vs {train_r2}");
        assert!(c < train_r2 - 0.05, "validation must trail training: {c} vs {train_r2}");
    }
}
