//! Measurement uncertainty of the evaluation scores.
//!
//! The paper reports single-run scores; a natural reviewer question is
//! how much meter noise moves them, and whether the server *ranking* is
//! stable run to run. This module replicates the five-state evaluation
//! under independent meter seeds and reports mean, standard deviation
//! and extremes of the score — and the tests pin down that the ranking
//! of the three servers is invariant across replicates (the scores are
//! separated by far more than their noise).

use serde::{Deserialize, Serialize};

use hpceval_machine::spec::ServerSpec;

use crate::evaluation::Evaluator;
use crate::server::SimulatedServer;

/// Replicated-score statistics for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreDistribution {
    /// Server name.
    pub server: String,
    /// Scores of each replicate (mean PPW).
    pub scores: Vec<f64>,
}

impl ScoreDistribution {
    /// Mean score.
    pub fn mean(&self) -> f64 {
        self.scores.iter().sum::<f64>() / self.scores.len() as f64
    }

    /// Population standard deviation of the score.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        (self.scores.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / self.scores.len() as f64)
            .sqrt()
    }

    /// (min, max) scores observed.
    pub fn range(&self) -> (f64, f64) {
        let min = self.scores.iter().cloned().fold(f64::MAX, f64::min);
        let max = self.scores.iter().cloned().fold(f64::MIN, f64::max);
        (min, max)
    }

    /// Relative standard deviation (coefficient of variation).
    pub fn cv(&self) -> f64 {
        self.std_dev() / self.mean()
    }
}

/// Run `replicates` independent five-state evaluations of `spec`.
pub fn replicate_scores(spec: &ServerSpec, replicates: u32, base_seed: u64) -> ScoreDistribution {
    let scores = (0..replicates)
        .map(|k| {
            let srv = SimulatedServer::with_seed(
                spec.clone(),
                base_seed.wrapping_add(u64::from(k).wrapping_mul(0x9e3779b97f4a7c15)),
            );
            Evaluator::over(srv).run().final_score()
        })
        .collect();
    ScoreDistribution { server: spec.name.clone(), scores }
}

/// How often the best-scoring server changes across replicates: returns
/// the fraction of replicates won by the most frequent winner (1.0 =
/// perfectly stable ranking).
pub fn ranking_stability(dists: &[ScoreDistribution]) -> f64 {
    // Compare only replicates every distribution has (ragged inputs are
    // truncated rather than panicking).
    let n = dists.iter().map(|d| d.scores.len()).min().unwrap_or(0);
    if n == 0 {
        return 1.0;
    }
    let mut wins = vec![0usize; dists.len()];
    for k in 0..n {
        let winner = dists
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.scores[k].total_cmp(&b.1.scores[k]))
            .map(|(i, _)| i)
            .expect("at least one distribution");
        wins[winner] += 1;
    }
    *wins.iter().max().expect("nonempty") as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn score_noise_is_small_relative_to_the_score() {
        for spec in presets::all_servers() {
            let d = replicate_scores(&spec, 8, 101);
            assert_eq!(d.scores.len(), 8);
            assert!(
                d.cv() < 0.05,
                "{}: score CV {:.4} too large (mean {:.4} sd {:.5})",
                d.server,
                d.cv(),
                d.mean(),
                d.std_dev()
            );
        }
    }

    #[test]
    fn replicates_actually_differ() {
        // Different seeds must produce different meter noise, hence
        // slightly different scores — otherwise the study is vacuous.
        let d = replicate_scores(&presets::xeon_e5462(), 6, 7);
        let (min, max) = d.range();
        assert!(max > min, "all replicates identical");
    }

    #[test]
    fn ranking_is_stable_across_replicates() {
        let dists: Vec<ScoreDistribution> =
            presets::all_servers().iter().map(|s| replicate_scores(s, 6, 33)).collect();
        assert_eq!(ranking_stability(&dists), 1.0, "ranking flapped under meter noise");
    }

    #[test]
    fn mean_matches_single_run_scale() {
        let d = replicate_scores(&presets::xeon_4870(), 5, 55);
        assert!((d.mean() - 0.0975).abs() < 0.012, "mean {:.4}", d.mean());
    }
}
