//! The §VI power model: HPCC-trained, NPB-validated multiple linear
//! regression.
//!
//! Procedure (mirroring §VI-A2):
//!
//! 1. run the seven HPCC programs from one core to full cores on the
//!    server (the paper: Xeon-4870);
//! 2. sample the PMU (X1..X6) and the power meter every 10 s during
//!    each run (≈6000 observations);
//! 3. z-score everything ("normalization to unify the dimensions") and
//!    fit `P ≈ b1·X1 + … + b6·X6 + C` by forward stepwise OLS →
//!    Tables VII–VIII;
//! 4. run NPB classes B and C over every runnable (program, process
//!    count) configuration, predict each configuration's power from its
//!    PMU features, and compare with the measured value → Figs 12–13
//!    and the validation R² (B ≈ 0.634, C ≈ 0.543).
//!
//! The validation gap is mechanistic, not fitted: the ground-truth power
//! contains communication power and per-program intensity structure that
//! the six indicators cannot express (worst for EP and SP — exactly the
//! two programs §VI-C singles out).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hpceval_kernels::hpcc::HpccProgram;
use hpceval_kernels::npb::{Class, Program};
use hpceval_machine::spec::ServerSpec;
use hpceval_machine::workload::LocalityProfile;
use hpceval_regression::matrix::Matrix;
use hpceval_regression::ols::OlsSummary;
use hpceval_regression::stats::{r_squared, Normalizer};
use hpceval_regression::stepwise::{forward_stepwise, StepwiseReport};

use crate::server::SimulatedServer;

/// PMU sampling interval (the paper: 10 s).
pub const SAMPLE_INTERVAL_S: f64 = 10.0;

/// One (X1..X6, P) observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionSample {
    /// The six PMU indicators over the interval.
    pub features: [f64; 6],
    /// Mean measured power over the interval, watts.
    pub power_w: f64,
}

/// A per-program locality substitution, keyed by benchmark id (e.g.
/// `"dgemm"`, `"cg"`). Returning `None` keeps the analytic profile from
/// the workload signature; returning `Some` replaces it — this is how
/// the trace-driven experiment feeds *replayed* cache behaviour into the
/// same PMU-synthesis pipeline the analytic experiment uses.
pub type LocalityOverride<'a> = &'a dyn Fn(&str) -> Option<LocalityProfile>;

/// Collect the HPCC training set on `spec`.
///
/// Every program runs at every allowed process count from 1 to full
/// cores; each run contributes `samples_per_run` 10-second observations
/// with measurement noise on both counters and power.
pub fn collect_training(
    spec: &ServerSpec,
    samples_per_run: usize,
    seed: u64,
) -> Vec<RegressionSample> {
    collect_training_with(spec, samples_per_run, seed, &|_| None)
}

/// [`collect_training`] with a per-program locality override.
pub fn collect_training_with(
    spec: &ServerSpec,
    samples_per_run: usize,
    seed: u64,
    locality: LocalityOverride,
) -> Vec<RegressionSample> {
    let srv = SimulatedServer::new(spec.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let noise_w = srv.power_model().calibration().noise_sd_w;
    let mut out = Vec::new();
    for prog in HpccProgram::ALL {
        let bench = prog.benchmark(spec);
        let mut sig = bench.signature();
        if let Some(profile) = locality(bench.id()) {
            sig.locality = profile;
        }
        for p in 1..=spec.total_cores() {
            if !bench.constraint().allows(p) || !srv.can_run(&sig, p) {
                continue;
            }
            let est = srv.estimate(&sig, p);
            let truth = srv.true_power_w(&sig, &est);
            let rates = srv.pmu_rates(&sig, &est);
            for _ in 0..samples_per_run {
                let counters = rates.sample(SAMPLE_INTERVAL_S);
                let mut f = counters.as_features();
                // Counter jitter: per-interval load imbalance, ±3 %.
                for v in f.iter_mut().skip(1) {
                    *v *= 1.0 + 0.08 * (rng.random::<f64>() * 2.0 - 1.0);
                }
                let power = truth + noise_w * (rng.random::<f64>() * 2.0 - 1.0) * 1.7;
                out.push(RegressionSample { features: f, power_w: power });
            }
        }
    }
    out
}

/// The trained model plus everything Tables VII–VIII report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedPowerModel {
    /// Normalization of the 7 columns (X1..X6, P) from the training set.
    pub normalizer: Normalizer,
    /// The stepwise fit over normalized data.
    pub report: StepwiseReport,
}

impl TrainedPowerModel {
    /// Table VIII: the dense normalized coefficient vector b1..b6.
    pub fn coefficients(&self) -> Vec<f64> {
        self.report.model.dense_coefficients(6)
    }

    /// Table VII diagnostics.
    pub fn summary(&self) -> OlsSummary {
        self.report.summary
    }

    /// Predict *normalized* power for raw features.
    pub fn predict_normalized(&self, features: &[f64; 6]) -> f64 {
        let norm: Vec<f64> = features
            .iter()
            .enumerate()
            .map(|(c, v)| self.normalizer.apply_one(c, *v))
            .collect();
        self.report.model.predict_row(&norm)
    }

    /// Normalize a measured power value with the training statistics.
    pub fn normalize_power(&self, watts: f64) -> f64 {
        self.normalizer.apply_one(6, watts)
    }
}

/// Train the stepwise model on a sample set.
pub fn train(samples: &[RegressionSample]) -> Option<TrainedPowerModel> {
    let n = samples.len();
    if n < 8 {
        return None;
    }
    // Row-major (X1..X6, P) block for normalization.
    let mut block = Vec::with_capacity(n * 7);
    for s in samples {
        block.extend_from_slice(&s.features);
        block.push(s.power_w);
    }
    let normalizer = Normalizer::fit(&block, 7);
    normalizer.apply(&mut block);

    let mut design = Vec::with_capacity(n * 6);
    let mut y = Vec::with_capacity(n);
    for row in block.chunks(7) {
        design.extend_from_slice(&row[..6]);
        y.push(row[6]);
    }
    let design = Matrix::from_rows(n, 6, design);
    let report = forward_stepwise(&design, &y, 0.02)?;
    Some(TrainedPowerModel { normalizer, report })
}

/// One validation configuration (one x-tick of Fig 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// Label, e.g. "ep.B.17".
    pub label: String,
    /// Measured power, normalized (Fig 12's "Measured Value").
    pub measured: f64,
    /// Regression prediction, normalized (Fig 12's "Regression Value").
    pub predicted: f64,
}

impl ValidationPoint {
    /// Fig 13's "Difference" series.
    pub fn difference(&self) -> f64 {
        self.measured - self.predicted
    }
}

/// The Fig 12/13 validation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationResult {
    /// NPB class validated.
    pub class: char,
    /// Per-configuration points in the paper's (alphabetical) order.
    pub points: Vec<ValidationPoint>,
    /// The fitting coefficient of determination (Eqs. 6–8).
    pub r2: f64,
}

/// Validate a trained model against NPB `class` on `spec`: every
/// program at every allowed and runnable process count.
pub fn validate(
    spec: &ServerSpec,
    class: Class,
    model: &TrainedPowerModel,
    seed: u64,
) -> ValidationResult {
    validate_with(spec, class, model, seed, &|_| None)
}

/// [`validate`] with a per-program locality override.
pub fn validate_with(
    spec: &ServerSpec,
    class: Class,
    model: &TrainedPowerModel,
    seed: u64,
    locality: LocalityOverride,
) -> ValidationResult {
    let mut srv = SimulatedServer::with_seed(spec.clone(), seed);
    let mut points = Vec::new();
    for prog in Program::ALL {
        let bench = prog.benchmark(class);
        let mut sig = bench.signature();
        if let Some(profile) = locality(bench.id()) {
            sig.locality = profile;
        }
        for p in bench.constraint().allowed_up_to(spec.total_cores()) {
            if !srv.can_run(&sig, p) {
                continue;
            }
            let m = srv.measure(&sig, p);
            let rates = srv.pmu_rates(&sig, &m.est);
            let features = rates.sample(SAMPLE_INTERVAL_S).as_features();
            points.push(ValidationPoint {
                label: format!("{}.{}.{}", prog.id(), class.letter(), p),
                measured: model.normalize_power(m.power_w),
                predicted: model.predict_normalized(&features),
            });
        }
    }
    let measured: Vec<f64> = points.iter().map(|p| p.measured).collect();
    let predicted: Vec<f64> = points.iter().map(|p| p.predicted).collect();
    let r2 = r_squared(&measured, &predicted);
    ValidationResult { class: class.letter(), points, r2 }
}

/// The complete §VI experiment on one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionExperiment {
    /// Training set size (Table VII "Observation").
    pub observations: usize,
    /// The trained model.
    pub model: TrainedPowerModel,
    /// Validation on NPB-B (Fig 12/13).
    pub npb_b: ValidationResult,
    /// Validation on NPB-C.
    pub npb_c: ValidationResult,
}

/// Run the full experiment: train on HPCC, validate on NPB B and C.
pub fn run_experiment(spec: &ServerSpec, seed: u64) -> Option<RegressionExperiment> {
    let samples = collect_training(spec, 25, seed);
    let model = train(&samples)?;
    let npb_b = validate(spec, Class::B, &model, seed ^ 0xb);
    let npb_c = validate(spec, Class::C, &model, seed ^ 0xc);
    Some(RegressionExperiment { observations: samples.len(), model, npb_b, npb_c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    fn experiment() -> RegressionExperiment {
        run_experiment(&presets::xeon_4870(), 42).expect("training must succeed")
    }

    #[test]
    fn training_set_size_matches_paper_scale() {
        // Table VII: 6056 observations. Ours: 7 programs x allowed proc
        // counts x 25 samples ~ 6000.
        let e = experiment();
        assert!((4500..8000).contains(&e.observations), "observations {}", e.observations);
    }

    #[test]
    fn table7_r_square_is_high() {
        // Table VII: R² = 0.940.
        let e = experiment();
        let s = e.model.summary();
        assert!(s.r_square > 0.88 && s.r_square < 0.995, "train R² {}", s.r_square);
        assert!(s.adjusted_r_square <= s.r_square);
        assert!(s.multiple_r > 0.93);
    }

    #[test]
    fn table8_working_cores_and_instructions_dominate() {
        // "The values of b1 and b2 are high, which indicates the number
        // of used cores and executed instructions are more influential."
        // Paper Table VIII: b2 = 0.837 dominates, b1 = 0.122 next among
        // the positives, the cache-hit terms are small or negative.
        let e = experiment();
        let b = e.model.coefficients();
        let max_mag = b.iter().map(|v| v.abs()).fold(f64::MIN, f64::max);
        assert!((b[1].abs() - max_mag).abs() < 1e-12, "b2 must be the largest: {b:?}");
        assert!(b[0] > 0.15, "b1 (working cores) must carry weight: {b:?}");
        assert!(b[1] > 0.0, "b2 must be positive: {b:?}");
    }

    #[test]
    fn validation_r2_in_paper_band() {
        // Paper: NPB-B 0.634, NPB-C 0.543 — "greater than 0.5,
        // indicating the results are satisfactory for most cases."
        let e = experiment();
        assert!(e.npb_b.r2 > 0.45 && e.npb_b.r2 < 0.85, "NPB-B validation R² {}", e.npb_b.r2);
        assert!(e.npb_c.r2 > 0.40 && e.npb_c.r2 < 0.85, "NPB-C validation R² {}", e.npb_c.r2);
        // Both must be visibly worse than training.
        assert!(e.npb_b.r2 < e.model.summary().r_square - 0.1);
    }

    #[test]
    fn fig12_has_the_papers_config_count() {
        // Fig 12's x-axis: bt/sp at 6 squares, cg/ft/is/lu/mg at 6
        // powers of two, ep at all 40 -> 82 configurations.
        let e = experiment();
        assert_eq!(e.npb_b.points.len(), 82, "NPB-B configurations");
        assert!(e.npb_b.points.iter().any(|p| p.label == "ep.B.17"));
        assert!(e.npb_b.points.iter().any(|p| p.label == "sp.B.36"));
    }

    #[test]
    fn ep_and_sp_fit_worst() {
        // §VI-C: "EP and SP have unsatisfactory results" — EP has no
        // communication (and scalar power the indicators overrate), SP
        // has the most.
        let e = experiment();
        let mean_abs = |prefix: &str| {
            let pts: Vec<f64> = e
                .npb_b
                .points
                .iter()
                .filter(|p| p.label.starts_with(prefix))
                .map(|p| p.difference().abs())
                .collect();
            pts.iter().sum::<f64>() / pts.len() as f64
        };
        let ep = mean_abs("ep.");
        let sp = mean_abs("sp.");
        let others: f64 = ["bt.", "cg.", "ft.", "is.", "lu.", "mg."]
            .iter()
            .map(|p| mean_abs(p))
            .sum::<f64>()
            / 6.0;
        assert!(ep.max(sp) > others, "EP {ep:.3} / SP {sp:.3} should exceed others {others:.3}");
    }
}
