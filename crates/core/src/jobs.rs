//! Job-shaped wrappers around the evaluation entry points.
//!
//! The fleet orchestrator (crate `hpceval-fleet`) runs evaluations as
//! *jobs*: queued, preemptible, resumed after crashes. That requires the
//! five-state method to be executable one state at a time, with each
//! state's result independent of how the run reached it — otherwise a
//! resumed job would produce different numbers than an uninterrupted
//! one and checkpoints would be lies. [`ResumableEvaluation`] provides
//! exactly that: the §V-C ten-state plan as an explicit list, a
//! `run_next` step that measures one state inside a fixed per-state
//! time slot (see [`SimulatedServer::seek_clock`]), and
//! `restore` to rebuild the run from checkpointed rows.
//!
//! The single-shot methods (Green500 score, SPECpower score, §VI
//! training, markdown report) are wrapped as [`run_one_shot`] so the
//! fleet schedules every evaluation kind through one entry point.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::npb::{ep::Ep, Class};
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;

use crate::evaluation::{Evaluator, PpwRow, PpwTable, MF_FRACTION, MH_FRACTION};
use crate::rankings::{green500_score, specpower_score};
use crate::regression_experiment::run_experiment;
use crate::server::SimulatedServer;

/// Wall-clock slot reserved per evaluation state: longer than the
/// longest possible measurement (600 s cap + gaps), so state k always
/// starts at `k * STATE_SLOT_S` regardless of earlier states' durations.
pub const STATE_SLOT_S: f64 = 650.0;

/// One state of the five-state plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvalState {
    /// The idle baseline row.
    Idle,
    /// NPB-EP class C at `processes` cores.
    Ep {
        /// Process count.
        processes: u32,
    },
    /// HPL at `processes` cores; `full_memory` selects Mf over Mh.
    Hpl {
        /// Process count.
        processes: u32,
        /// True for the ~92 % "Mf" state, false for the 50 % "Mh" one.
        full_memory: bool,
    },
}

impl EvalState {
    /// The row label this state produces (matches [`Evaluator::run`]).
    pub fn label(&self) -> String {
        match *self {
            EvalState::Idle => "Idle".to_string(),
            EvalState::Ep { processes } => format!("ep.C.{processes}"),
            EvalState::Hpl { processes, full_memory } => {
                format!("HPL P{processes} {}", if full_memory { "Mf" } else { "Mh" })
            }
        }
    }
}

/// The §V-C state list for `spec`, in the paper's order.
pub fn evaluation_plan(spec: &ServerSpec) -> Vec<EvalState> {
    let total = spec.total_cores();
    let mut plan = vec![EvalState::Idle];
    for p in Evaluator::core_states(total) {
        plan.push(EvalState::Ep { processes: p });
    }
    for full_memory in [false, true] {
        for p in Evaluator::core_states(total) {
            plan.push(EvalState::Hpl { processes: p, full_memory });
        }
    }
    plan
}

/// Error restoring a checkpointed evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// More checkpointed rows than the plan has states.
    TooManyRows {
        /// Rows offered.
        rows: usize,
        /// States in the plan.
        states: usize,
    },
    /// A checkpointed row does not match the plan at its position.
    LabelMismatch {
        /// Row position.
        index: usize,
        /// The label the plan expects there.
        expected: String,
        /// The label the checkpoint carries.
        found: String,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::TooManyRows { rows, states } => {
                write!(f, "checkpoint has {rows} rows but the plan has {states} states")
            }
            RestoreError::LabelMismatch { index, expected, found } => {
                write!(f, "checkpoint row {index} is {found:?}, plan expects {expected:?}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// A five-state evaluation that can stop after any state and resume.
#[derive(Debug, Clone)]
pub struct ResumableEvaluation {
    spec: ServerSpec,
    seed: u64,
    plan: Vec<EvalState>,
    rows: Vec<PpwRow>,
}

impl ResumableEvaluation {
    /// A fresh run of `spec` with meter seed `seed`.
    pub fn new(spec: ServerSpec, seed: u64) -> Self {
        let plan = evaluation_plan(&spec);
        Self { spec, seed, plan, rows: Vec::new() }
    }

    /// Rebuild a run from checkpointed `rows` (a prefix of the plan).
    pub fn restore(spec: ServerSpec, seed: u64, rows: Vec<PpwRow>) -> Result<Self, RestoreError> {
        let plan = evaluation_plan(&spec);
        if rows.len() > plan.len() {
            return Err(RestoreError::TooManyRows { rows: rows.len(), states: plan.len() });
        }
        for (index, (row, state)) in rows.iter().zip(&plan).enumerate() {
            let expected = state.label();
            if row.program != expected {
                return Err(RestoreError::LabelMismatch {
                    index,
                    expected,
                    found: row.program.clone(),
                });
            }
        }
        Ok(Self { spec, seed, plan, rows })
    }

    /// The full state list.
    pub fn plan(&self) -> &[EvalState] {
        &self.plan
    }

    /// States measured so far.
    pub fn completed(&self) -> &[PpwRow] {
        &self.rows
    }

    /// Total states in the plan.
    pub fn total_states(&self) -> usize {
        self.plan.len()
    }

    /// The state `run_next` would measure, if any remain.
    pub fn next_state(&self) -> Option<EvalState> {
        self.plan.get(self.rows.len()).copied()
    }

    /// True once every state has a row.
    pub fn is_complete(&self) -> bool {
        self.rows.len() == self.plan.len()
    }

    /// Measure the next state; returns its row, or `None` when done.
    ///
    /// Each state runs in its own time slot on a freshly seeded server,
    /// so the row depends only on (spec, seed, state index) — never on
    /// which process measured the earlier states.
    pub fn run_next(&mut self) -> Option<PpwRow> {
        let state = self.next_state()?;
        let k = self.rows.len();
        let mut server = SimulatedServer::with_seed(self.spec.clone(), self.seed);
        server.seek_clock(k as f64 * STATE_SLOT_S);
        let m = match state {
            EvalState::Idle => server.measure_idle(),
            EvalState::Ep { processes } => {
                server.measure(&Ep::new(Class::C).signature(), processes)
            }
            EvalState::Hpl { processes, full_memory } => {
                let frac = if full_memory { MF_FRACTION } else { MH_FRACTION };
                let cfg = HplConfig::for_memory_fraction(&self.spec, frac, processes);
                server.measure(&cfg.signature(), processes)
            }
        };
        let row =
            PpwRow { program: state.label(), gflops: m.gflops, power_w: m.power_w, ppw: m.ppw };
        self.rows.push(row.clone());
        Some(row)
    }

    /// The rows accumulated so far as a (possibly partial) table.
    pub fn partial_table(&self) -> PpwTable {
        PpwTable { server: self.spec.name.clone(), rows: self.rows.clone() }
    }

    /// The finished table, or `None` while states remain.
    pub fn table(&self) -> Option<PpwTable> {
        self.is_complete().then(|| self.partial_table())
    }
}

/// The single-shot evaluation kinds the fleet can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OneShotKind {
    /// Peak-HPL PPW (the Green500 method).
    Green500,
    /// Graduated-load ssj_ops/W (the SPECpower method).
    Specpower,
    /// The §VI stepwise-regression training run.
    Train,
    /// The per-server markdown report.
    Report,
}

/// Output of a single-shot job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum OneShotOutput {
    /// A scalar score with its unit.
    Score {
        /// Method name ("green500" or "specpower").
        method: String,
        /// Score value.
        value: f64,
        /// Unit string.
        unit: String,
    },
    /// Regression-training summary statistics.
    Training {
        /// HPCC observations trained on.
        observations: usize,
        /// Training R².
        r_square: f64,
        /// Validation R² on NPB class B.
        npb_b_r2: f64,
        /// Validation R² on NPB class C.
        npb_c_r2: f64,
    },
    /// A rendered markdown report.
    Report {
        /// The report text.
        markdown: String,
    },
}

/// Run a single-shot job kind on `spec`.
///
/// Returns `None` only for [`OneShotKind::Train`] on a degenerate
/// sample set (`run_experiment`'s failure mode).
pub fn run_one_shot(kind: OneShotKind, spec: &ServerSpec, seed: u64) -> Option<OneShotOutput> {
    match kind {
        OneShotKind::Green500 => Some(OneShotOutput::Score {
            method: "green500".to_string(),
            value: green500_score(spec),
            unit: "GFLOPS/W".to_string(),
        }),
        OneShotKind::Specpower => Some(OneShotOutput::Score {
            method: "specpower".to_string(),
            value: specpower_score(spec),
            unit: "ssj_ops/W".to_string(),
        }),
        OneShotKind::Train => {
            let exp = run_experiment(spec, seed)?;
            Some(OneShotOutput::Training {
                observations: exp.observations,
                r_square: exp.model.summary().r_square,
                npb_b_r2: exp.npb_b.r2,
                npb_c_r2: exp.npb_c.r2,
            })
        }
        OneShotKind::Report => {
            Some(OneShotOutput::Report { markdown: crate::report::markdown_report(spec) })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn plan_matches_evaluator_row_order() {
        let spec = presets::xeon_e5462();
        let plan = evaluation_plan(&spec);
        let table = Evaluator::new(spec).run();
        assert_eq!(plan.len(), table.rows.len());
        for (state, row) in plan.iter().zip(&table.rows) {
            assert_eq!(state.label(), row.program);
        }
    }

    #[test]
    fn straight_run_scores_like_the_evaluator() {
        // Fixed per-state slots shift the meter windows relative to the
        // cumulative-clock Evaluator, so rows agree to noise, not bits.
        let spec = presets::xeon_e5462();
        let mut run = ResumableEvaluation::new(spec.clone(), 0x5eed);
        while run.run_next().is_some() {}
        let ours = run.table().expect("complete");
        let reference = Evaluator::new(spec).run();
        assert!((ours.final_score() - reference.final_score()).abs() < 0.004);
    }

    #[test]
    fn resume_is_bitwise_identical_to_uninterrupted() {
        let spec = presets::opteron_8347();
        let mut straight = ResumableEvaluation::new(spec.clone(), 7);
        while straight.run_next().is_some() {}

        // "Crash" after 4 rows; restore from the checkpointed rows.
        let mut first = ResumableEvaluation::new(spec.clone(), 7);
        for _ in 0..4 {
            first.run_next();
        }
        let ckpt = first.completed().to_vec();
        let mut resumed = ResumableEvaluation::restore(spec, 7, ckpt).expect("valid checkpoint");
        while resumed.run_next().is_some() {}

        assert_eq!(straight.table(), resumed.table());
    }

    #[test]
    fn restore_rejects_corrupt_checkpoints() {
        let spec = presets::xeon_e5462();
        let mut run = ResumableEvaluation::new(spec.clone(), 1);
        run.run_next();
        let mut rows = run.completed().to_vec();
        rows[0].program = "bogus".to_string();
        match ResumableEvaluation::restore(spec.clone(), 1, rows) {
            Err(RestoreError::LabelMismatch { index: 0, .. }) => {}
            other => panic!("expected label mismatch, got {other:?}"),
        }
        let too_many =
            vec![PpwRow { program: "Idle".into(), gflops: 0.0, power_w: 1.0, ppw: 0.0 }; 11];
        assert!(matches!(
            ResumableEvaluation::restore(spec, 1, too_many),
            Err(RestoreError::TooManyRows { .. })
        ));
    }

    #[test]
    fn one_shot_kinds_produce_their_outputs() {
        let spec = presets::xeon_e5462();
        match run_one_shot(OneShotKind::Green500, &spec, 0).unwrap() {
            OneShotOutput::Score { method, value, .. } => {
                assert_eq!(method, "green500");
                assert!((value - 0.158).abs() < 0.012);
            }
            other => panic!("unexpected {other:?}"),
        }
        match run_one_shot(OneShotKind::Report, &spec, 0).unwrap() {
            OneShotOutput::Report { markdown } => assert!(markdown.contains("Xeon-E5462")),
            other => panic!("unexpected {other:?}"),
        }
    }
}
