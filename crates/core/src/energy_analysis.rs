//! Energy-to-solution analysis — the paper's Fig 11 argument ("improving
//! the parallelism can not only improve the computing performance, but
//! also reduce energy consumption") generalized from EP to the whole
//! suite.
//!
//! For every program and every runnable process count this computes the
//! energy (Eq. 2) and the energy-delay product, and identifies the
//! minimum-energy configuration. The paper's claim holds when the
//! power growth from extra cores is outpaced by the runtime shrink —
//! true for compute-dominated programs, weaker for bandwidth-saturated
//! ones, which is exactly what the analysis shows.

use serde::{Deserialize, Serialize};

use hpceval_kernels::npb::{Class, Program};
use hpceval_machine::spec::ServerSpec;
use hpceval_power::analysis::energy_kj;

use crate::server::SimulatedServer;

/// Energy profile of one (program, process count) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyPoint {
    /// Configuration label, e.g. "lu.C.8".
    pub label: String,
    /// Process count.
    pub processes: u32,
    /// Execution time, s.
    pub time_s: f64,
    /// Mean power, W.
    pub power_w: f64,
    /// Energy to solution, kJ.
    pub energy_kj: f64,
    /// Energy-delay product, kJ·s.
    pub edp: f64,
}

/// Energy profile of one program across its runnable process counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramEnergyProfile {
    /// Program id.
    pub program: String,
    /// Points in ascending process count.
    pub points: Vec<EnergyPoint>,
}

impl ProgramEnergyProfile {
    /// The minimum-energy configuration.
    pub fn min_energy(&self) -> &EnergyPoint {
        self.points
            .iter()
            .min_by(|a, b| a.energy_kj.total_cmp(&b.energy_kj))
            .expect("profiles contain at least one point")
    }

    /// The minimum-EDP configuration.
    pub fn min_edp(&self) -> &EnergyPoint {
        self.points
            .iter()
            .min_by(|a, b| a.edp.total_cmp(&b.edp))
            .expect("profiles contain at least one point")
    }

    /// Energy saving of the best parallel configuration relative to the
    /// serial one (0.4 = 40 % less energy than p=1).
    pub fn parallel_energy_saving(&self) -> Option<f64> {
        let serial = self.points.iter().find(|p| p.processes == 1)?;
        let best = self.min_energy();
        Some(1.0 - best.energy_kj / serial.energy_kj)
    }
}

/// Run the energy analysis for every NPB program at `class` on `spec`.
pub fn energy_study(spec: &ServerSpec, class: Class) -> Vec<ProgramEnergyProfile> {
    let mut srv = SimulatedServer::new(spec.clone());
    Program::ALL
        .iter()
        .map(|&prog| {
            let bench = prog.benchmark(class);
            let sig = bench.signature();
            let mut points = Vec::new();
            for p in bench.constraint().allowed_up_to(spec.total_cores()) {
                if !srv.can_run(&sig, p) {
                    continue;
                }
                let m = srv.measure(&sig, p);
                points.push(EnergyPoint {
                    label: format!("{}.{}.{}", prog.id(), class.letter(), p),
                    processes: p,
                    time_s: m.time_s,
                    power_w: m.power_w,
                    energy_kj: energy_kj(m.power_w, m.time_s),
                    edp: energy_kj(m.power_w, m.time_s) * m.time_s,
                });
            }
            ProgramEnergyProfile { program: prog.id().to_string(), points }
        })
        .filter(|p| !p.points.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn parallelism_saves_energy_for_every_program() {
        // Fig 11's argument, suite-wide on the Xeon-E5462.
        let profiles = energy_study(&presets::xeon_e5462(), Class::C);
        assert!(!profiles.is_empty());
        for prof in &profiles {
            if prof.points.iter().all(|p| p.processes == 1) {
                continue; // cg.C only runs serially on 8 GiB
            }
            // ft.C starts at 4 processes on this machine: no serial
            // reference to compare against.
            let Some(saving) = prof.parallel_energy_saving() else { continue };
            assert!(
                saving > 0.2,
                "{}: best parallel config saves only {:.0} %",
                prof.program,
                saving * 100.0
            );
        }
    }

    #[test]
    fn ep_energy_matches_fig11_scale() {
        let profiles = energy_study(&presets::xeon_e5462(), Class::C);
        let ep = profiles.iter().find(|p| p.program == "ep").expect("EP runs");
        let serial = ep.points.iter().find(|p| p.processes == 1).expect("p=1");
        assert!((serial.energy_kj - 35.0).abs() < 8.0, "EP.1 energy {}", serial.energy_kj);
        // Monotone decrease over 1 -> 2 -> 4.
        let e: Vec<f64> = ep.points.iter().take(3).map(|p| p.energy_kj).collect();
        assert!(e[0] > e[1] && e[1] > e[2], "{e:?}");
    }

    #[test]
    fn min_energy_prefers_full_parallelism_for_compute_bound_programs() {
        let profiles = energy_study(&presets::xeon_4870(), Class::C);
        let bt = profiles.iter().find(|p| p.program == "bt").expect("BT runs");
        assert_eq!(bt.min_energy().processes, 36, "BT best at the largest square");
    }

    #[test]
    fn edp_never_prefers_fewer_processes_than_energy() {
        // EDP weights time harder, so its optimum is at least as
        // parallel as the energy optimum.
        let profiles = energy_study(&presets::opteron_8347(), Class::B);
        for prof in &profiles {
            assert!(
                prof.min_edp().processes >= prof.min_energy().processes,
                "{}: EDP at {} < energy at {}",
                prof.program,
                prof.min_edp().processes,
                prof.min_energy().processes
            );
        }
    }
}
