//! The five-state HPL+EP power evaluation method (paper §V-C).
//!
//! Test method (Table III): measure Idle, then NPB-EP class C at 1, half
//! and full cores, then HPL at ~50 % memory ("Mh") and 90–100 % memory
//! ("Mf") each at 1, half and full cores — ten rows per server. Each
//! row's PPW is its GFLOPS over its trimmed-average watts, and the
//! system score is the arithmetic average of the PPWs.
//!
//! Note on the paper's bottom rows: Table IV prints the PPW *sum*
//! (0.639) while Tables V/VI print the *mean* (0.0251, 0.0975). The
//! methodology text (§V-C2 step 6) specifies the arithmetic average, so
//! [`PpwTable::final_score`] is the mean; [`PpwTable::ppw_sum`] exposes
//! the sum for comparison with the paper's printed Table IV. The
//! rankings module discusses the consequence.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::npb::{ep::Ep, Class};
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;

use crate::server::{Measurement, SimulatedServer};

/// Memory fraction of the "Mh" (half-memory) HPL state.
pub const MH_FRACTION: f64 = 0.50;
/// Memory fraction of the "Mf" (full-memory) HPL state (the paper:
/// "90 % – 100 %").
pub const MF_FRACTION: f64 = 0.92;

/// One row of a Table IV/V/VI style PPW table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpwRow {
    /// Row label, e.g. "ep.C.4" or "HPL P4 Mf".
    pub program: String,
    /// Performance, GFLOPS.
    pub gflops: f64,
    /// Power, watts.
    pub power_w: f64,
    /// PPW, GFLOPS/W.
    pub ppw: f64,
}

/// The full evaluation result for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpwTable {
    /// Server name.
    pub server: String,
    /// The ten rows in the paper's order.
    pub rows: Vec<PpwRow>,
}

impl PpwTable {
    /// Mean performance over all rows (the paper's "Average" line).
    pub fn avg_gflops(&self) -> f64 {
        self.rows.iter().map(|r| r.gflops).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean power over all rows.
    pub fn avg_power_w(&self) -> f64 {
        self.rows.iter().map(|r| r.power_w).sum::<f64>() / self.rows.len() as f64
    }

    /// The methodology's system score: arithmetic mean of the PPWs
    /// (§V-C2 step 6).
    pub fn final_score(&self) -> f64 {
        self.rows.iter().map(|r| r.ppw).sum::<f64>() / self.rows.len() as f64
    }

    /// Sum of PPWs — the quantity the paper's Table IV actually prints
    /// as its bottom row (10× the mean).
    pub fn ppw_sum(&self) -> f64 {
        self.rows.iter().map(|r| r.ppw).sum()
    }

    /// Render as an aligned text table shaped like the paper's
    /// Tables IV–VI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "PPW on server {}\n{:<14} {:>12} {:>12} {:>14}\n",
            self.server, "Program", "Perf(GFLOPS)", "Power(Watt)", "PPW(GFLOPS/W)"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>12.4} {:>12.4} {:>14.4}\n",
                r.program, r.gflops, r.power_w, r.ppw
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>12.4} {:>12.4}\n",
            "Average",
            self.avg_gflops(),
            self.avg_power_w()
        ));
        out.push_str(&format!("{:<14} {:>40.4}\n", "mean(PPW)", self.final_score()));
        out
    }
}

/// Runs the five-state evaluation on one server.
#[derive(Debug)]
pub struct Evaluator {
    server: SimulatedServer,
}

impl Evaluator {
    /// Evaluator for `spec`.
    pub fn new(spec: ServerSpec) -> Self {
        Self { server: SimulatedServer::new(spec) }
    }

    /// Evaluator over an existing simulated server (custom seed or
    /// placement).
    pub fn over(server: SimulatedServer) -> Self {
        Self { server }
    }

    /// The EP process counts of the method: 1, half, full — deduplicated
    /// so machines with fewer than 4 cores do not triple-count a state.
    pub fn core_states(total: u32) -> Vec<u32> {
        let mut states = vec![1, (total / 2).max(1), total.max(1)];
        states.dedup();
        states
    }

    /// Run the complete ten-row evaluation.
    pub fn run(mut self) -> PpwTable {
        let spec = self.server.spec().clone();
        let total = spec.total_cores();
        let mut rows = Vec::with_capacity(10);

        // (1) Idle.
        let idle = self.server.measure_idle();
        rows.push(to_row("Idle", &idle));

        // (2) EP.C at 1 / half / full cores.
        let ep = Ep::new(Class::C);
        for p in Self::core_states(total) {
            let m = self.server.measure(&ep.signature(), p);
            rows.push(to_row(&format!("ep.C.{p}"), &m));
        }

        // (3) HPL at half then full memory, 1 / half / full cores each.
        for (tag, frac) in [("Mh", MH_FRACTION), ("Mf", MF_FRACTION)] {
            for p in Self::core_states(total) {
                let cfg = HplConfig::for_memory_fraction(&spec, frac, p);
                let m = self.server.measure(&cfg.signature(), p);
                rows.push(to_row(&format!("HPL P{p} {tag}"), &m));
            }
        }

        PpwTable { server: spec.name.clone(), rows }
    }
}

fn to_row(label: &str, m: &Measurement) -> PpwRow {
    PpwRow { program: label.to_string(), gflops: m.gflops, power_w: m.power_w, ppw: m.ppw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn table_has_ten_rows_in_paper_order() {
        let t = Evaluator::new(presets::xeon_e5462()).run();
        assert_eq!(t.rows.len(), 10);
        assert_eq!(t.rows[0].program, "Idle");
        assert_eq!(t.rows[1].program, "ep.C.1");
        assert_eq!(t.rows[3].program, "ep.C.4");
        assert_eq!(t.rows[4].program, "HPL P1 Mh");
        assert_eq!(t.rows[9].program, "HPL P4 Mf");
    }

    #[test]
    fn xeon_e5462_reproduces_table_iv_shape() {
        let t = Evaluator::new(presets::xeon_e5462()).run();
        // Idle ~134 W, zero PPW.
        assert!((t.rows[0].power_w - 134.37).abs() < 3.0);
        assert_eq!(t.rows[0].ppw, 0.0);
        // ep.C.4 ~174 W, ~0.124 GFLOPS.
        let ep4 = &t.rows[3];
        assert!((ep4.power_w - 174.0).abs() < 8.0, "ep.C.4 power {}", ep4.power_w);
        assert!((ep4.gflops - 0.1237).abs() < 0.01, "ep.C.4 perf {}", ep4.gflops);
        // HPL P4 Mf ~235 W, ~37 GFLOPS, PPW ~0.158.
        let hpl = &t.rows[9];
        assert!((hpl.power_w - 235.3).abs() < 12.0, "HPL P4 Mf power {}", hpl.power_w);
        assert!((hpl.gflops - 37.2).abs() < 2.0, "HPL P4 Mf perf {}", hpl.gflops);
        assert!((hpl.ppw - 0.158).abs() < 0.012, "HPL P4 Mf ppw {}", hpl.ppw);
    }

    #[test]
    fn score_matches_paper_tables_within_tolerance() {
        // Paper (consistent mean-of-PPW reading): Xeon-E5462 0.0639,
        // Opteron-8347 0.0251, Xeon-4870 0.0975.
        for (spec, want, tol) in [
            (presets::xeon_e5462(), 0.0639, 0.006),
            (presets::opteron_8347(), 0.0251, 0.004),
            (presets::xeon_4870(), 0.0975, 0.010),
        ] {
            let name = spec.name.clone();
            let t = Evaluator::new(spec).run();
            let got = t.final_score();
            assert!((got - want).abs() < tol, "{name}: score {got:.4} vs paper {want}");
        }
    }

    #[test]
    fn table_iv_printed_bottom_row_is_the_sum() {
        // The paper's Table IV prints 0.639 — the PPW *sum*.
        let t = Evaluator::new(presets::xeon_e5462()).run();
        assert!((t.ppw_sum() - 0.639).abs() < 0.06, "sum {}", t.ppw_sum());
    }

    #[test]
    fn mh_and_mf_power_nearly_equal() {
        // The paper's core observation: memory utilization barely moves
        // power (Mh vs Mf rows differ by a few watts).
        let t = Evaluator::new(presets::opteron_8347()).run();
        let mh = t.rows.iter().find(|r| r.program == "HPL P16 Mh").unwrap();
        let mf = t.rows.iter().find(|r| r.program == "HPL P16 Mf").unwrap();
        assert!((mh.power_w - mf.power_w).abs() < 15.0);
    }

    #[test]
    fn render_contains_all_rows() {
        let t = Evaluator::new(presets::xeon_e5462()).run();
        let s = t.render();
        assert!(s.contains("Idle"));
        assert!(s.contains("HPL P2 Mh"));
        assert!(s.contains("mean(PPW)"));
    }

    #[test]
    fn core_states_are_one_half_full() {
        assert_eq!(Evaluator::core_states(4), vec![1, 2, 4]);
        assert_eq!(Evaluator::core_states(16), vec![1, 8, 16]);
        assert_eq!(Evaluator::core_states(40), vec![1, 20, 40]);
        assert_eq!(Evaluator::core_states(1), vec![1]);
        assert_eq!(Evaluator::core_states(2), vec![1, 2]);
    }
}
