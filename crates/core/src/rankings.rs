//! The §V-C3 three-way comparison: our evaluation vs the Green500
//! method vs SPECpower.
//!
//! * **Ours** — mean PPW over the five-state table.
//! * **Green500** — PPW at the single peak-HPL configuration
//!   (Rmax / Pavg(Rmax), Eq. 1).
//! * **SPECpower** — Σ ssj_ops / Σ power over the graduated levels plus
//!   active idle.
//!
//! Paper values: Green500 ranks Xeon4870 (0.307) > XeonE5462 (0.158) >
//! Opteron8347 (0.0618); SPECpower ranks XeonE5462 (247) > Xeon4870
//! (139) > Opteron8347 (22.2). The paper's own method *as printed* ranks
//! XeonE5462 (0.639) first — but that number is the PPW sum while the
//! other two servers' scores are means; under the methodology's stated
//! arithmetic (mean), the ranking becomes Xeon4870 > XeonE5462 >
//! Opteron8347, matching Green500's order. The reproduction surfaces
//! both readings (see EXPERIMENTS.md, experiment R1).

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::spec::ServerSpec;
use hpceval_specpower::ssj::SsjRun;

use crate::evaluation::{Evaluator, MF_FRACTION};
use crate::server::SimulatedServer;

/// All three scores for one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerScores {
    /// Server name.
    pub server: String,
    /// Our method: mean PPW over the ten rows (GFLOPS/W).
    pub five_state_mean_ppw: f64,
    /// Our method, paper-Table-IV style: PPW sum.
    pub five_state_sum_ppw: f64,
    /// Green500: peak-HPL PPW (GFLOPS/W).
    pub green500_ppw: f64,
    /// SPECpower: ssj_ops per watt.
    pub specpower_ops_per_w: f64,
}

/// The comparison across a set of servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingComparison {
    /// Per-server scores.
    pub scores: Vec<ServerScores>,
}

/// Compute the Green500-style score: PPW of the tuned full-memory,
/// full-core HPL run.
pub fn green500_score(spec: &ServerSpec) -> f64 {
    let mut srv = SimulatedServer::new(spec.clone());
    let p = spec.total_cores();
    let cfg = HplConfig::for_memory_fraction(spec, MF_FRACTION, p);
    let m = srv.measure(&cfg.signature(), p);
    m.ppw
}

/// Compute the SPECpower-style score: Σ ssj_ops / Σ power over the ten
/// graduated levels plus active idle.
pub fn specpower_score(spec: &ServerSpec) -> f64 {
    let mut srv = SimulatedServer::new(spec.clone());
    let run = SsjRun::run(spec, 0x55);
    let mut total_ops = 0.0;
    let mut total_power = 0.0;
    for level in run.graduated() {
        let sig = run.signature_at(spec, level);
        let m = srv.measure(&sig, spec.total_cores());
        total_ops += level.ssj_ops;
        total_power += m.power_w;
    }
    // Active idle contributes power but no ops.
    total_power += srv.measure_idle().power_w;
    total_ops / total_power
}

/// Run all three evaluations over `servers`.
pub fn compare(servers: &[ServerSpec]) -> RankingComparison {
    let scores = servers
        .iter()
        .map(|spec| {
            let table = Evaluator::new(spec.clone()).run();
            ServerScores {
                server: spec.name.clone(),
                five_state_mean_ppw: table.final_score(),
                five_state_sum_ppw: table.ppw_sum(),
                green500_ppw: green500_score(spec),
                specpower_ops_per_w: specpower_score(spec),
            }
        })
        .collect();
    RankingComparison { scores }
}

impl RankingComparison {
    /// Server names ordered best-first under a key.
    fn order_by<F: Fn(&ServerScores) -> f64>(&self, key: F) -> Vec<String> {
        let mut v: Vec<&ServerScores> = self.scores.iter().collect();
        v.sort_by(|a, b| key(b).total_cmp(&key(a)));
        v.into_iter().map(|s| s.server.clone()).collect()
    }

    /// Ranking under our method (mean PPW).
    pub fn ranking_ours(&self) -> Vec<String> {
        self.order_by(|s| s.five_state_mean_ppw)
    }

    /// Ranking under the Green500 method.
    pub fn ranking_green500(&self) -> Vec<String> {
        self.order_by(|s| s.green500_ppw)
    }

    /// Ranking under SPECpower.
    pub fn ranking_specpower(&self) -> Vec<String> {
        self.order_by(|s| s.specpower_ops_per_w)
    }

    /// Render the comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>14} {:>12} {:>12} {:>14}\n",
            "Server", "Ours(meanPPW)", "Ours(sum)", "Green500", "SPECpower"
        );
        for s in &self.scores {
            out.push_str(&format!(
                "{:<14} {:>14.4} {:>12.4} {:>12.4} {:>14.1}\n",
                s.server,
                s.five_state_mean_ppw,
                s.five_state_sum_ppw,
                s.green500_ppw,
                s.specpower_ops_per_w
            ));
        }
        out.push_str(&format!("ranking (ours, mean PPW): {}\n", self.ranking_ours().join(" > ")));
        out.push_str(&format!(
            "ranking (Green500):       {}\n",
            self.ranking_green500().join(" > ")
        ));
        out.push_str(&format!(
            "ranking (SPECpower):      {}\n",
            self.ranking_specpower().join(" > ")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn green500_scores_match_paper() {
        // Paper: 0.307 / 0.158 / 0.0618.
        for (spec, want, tol) in [
            (presets::xeon_4870(), 0.307, 0.02),
            (presets::xeon_e5462(), 0.158, 0.012),
            (presets::opteron_8347(), 0.0618, 0.006),
        ] {
            let name = spec.name.clone();
            let got = green500_score(&spec);
            assert!((got - want).abs() < tol, "{name}: {got:.4} vs {want}");
        }
    }

    #[test]
    fn green500_ranking_matches_paper() {
        let cmp = compare(&presets::all_servers());
        assert_eq!(cmp.ranking_green500(), vec!["Xeon-4870", "Xeon-E5462", "Opteron-8347"]);
    }

    #[test]
    fn specpower_scores_match_paper_order_and_scale() {
        // Paper: 247 / 139 / 22.2 ssj_ops/W.
        let e = specpower_score(&presets::xeon_e5462());
        let x = specpower_score(&presets::xeon_4870());
        let o = specpower_score(&presets::opteron_8347());
        assert!(e > x && x > o, "ordering: {e:.1} {x:.1} {o:.1}");
        assert!((e - 247.0).abs() < 35.0, "e5462 {e:.1}");
        assert!((x - 139.0).abs() < 25.0, "x4870 {x:.1}");
        assert!((o - 22.2).abs() < 8.0, "opteron {o:.1}");
    }

    #[test]
    fn opteron_is_last_under_every_method() {
        let cmp = compare(&presets::all_servers());
        for ranking in [cmp.ranking_ours(), cmp.ranking_green500(), cmp.ranking_specpower()] {
            assert_eq!(ranking.last().map(String::as_str), Some("Opteron-8347"));
        }
    }

    #[test]
    fn paper_printed_scores_are_reproduced() {
        // The printed bottom rows: 0.639 (sum), 0.0251 (mean),
        // 0.0975 (mean).
        let cmp = compare(&presets::all_servers());
        let by_name = |n: &str| cmp.scores.iter().find(|s| s.server == n).unwrap();
        assert!((by_name("Xeon-E5462").five_state_sum_ppw - 0.639).abs() < 0.06);
        assert!((by_name("Opteron-8347").five_state_mean_ppw - 0.0251).abs() < 0.004);
        assert!((by_name("Xeon-4870").five_state_mean_ppw - 0.0975).abs() < 0.010);
    }
}
