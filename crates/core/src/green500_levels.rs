//! Green500 measurement-quality levels.
//!
//! The paper's related work cites the Green500 measurement tutorial
//! (Ge et al. \[14\]) and Subramaniam & Feng's study of its implications
//! \[20\]: the Green500 accepts submissions at different measurement
//! quality levels, which differ in *how much of the HPL run* the meter
//! must cover —
//!
//! * **L1** — at least one minute within the core computation phase,
//! * **L2** — at least 20 % of the run, centered,
//! * **L3** — the entire run.
//!
//! HPL's instantaneous power is not constant: the trailing-update work
//! per iteration shrinks as the factorization proceeds, so power decays
//! toward the end of the run. A short early window (L1) therefore
//! reports *higher* average power — and a lower PPW — than a full-run
//! measurement (L3). This module models that decay and quantifies the
//! level-induced spread, reproducing \[20\]'s observation that the
//! measurement window materially changes the reported score.

use serde::{Deserialize, Serialize};

use hpceval_kernels::hpl::HplConfig;
use hpceval_kernels::suite::Benchmark;
use hpceval_machine::roofline::PerfModel;
use hpceval_machine::spec::ServerSpec;
use hpceval_power::analysis::{ProgramWindow, TraceAnalysis};
use hpceval_power::meter::Wt210;
use hpceval_power::model::PowerModel;

use crate::evaluation::MF_FRACTION;

/// Green500 measurement quality levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MeasurementLevel {
    /// ≥ 1 minute inside the core phase (early in the run).
    L1,
    /// ≥ 20 % of the run, centered.
    L2,
    /// The whole run.
    L3,
}

impl MeasurementLevel {
    /// All levels, lowest quality first.
    pub const ALL: [MeasurementLevel; 3] =
        [MeasurementLevel::L1, MeasurementLevel::L2, MeasurementLevel::L3];

    /// The measurement window within a run of `duration_s` seconds.
    pub fn window(self, duration_s: f64) -> ProgramWindow {
        match self {
            MeasurementLevel::L1 => {
                // One minute starting 10 % into the run (inside the core
                // phase, early and hot).
                let start = duration_s * 0.10;
                ProgramWindow { start_s: start, end_s: start + 60.0_f64.min(duration_s * 0.5) }
            }
            MeasurementLevel::L2 => {
                let start = duration_s * 0.40;
                ProgramWindow { start_s: start, end_s: start + duration_s * 0.20 }
            }
            MeasurementLevel::L3 => ProgramWindow { start_s: 0.0, end_s: duration_s + 1.0 },
        }
    }
}

/// Instantaneous power factor of HPL at progress `frac ∈ [0, 1]` of the
/// run, relative to the run's mean dynamic power.
///
/// The trailing submatrix at progress `x` has edge `N·(1−x)`, so update
/// work per unit time falls off; empirically wall power decays by
/// ~20–25 % over the final third of a run. Normalized so the mean over
/// the run is 1.
pub fn hpl_power_shape(frac: f64) -> f64 {
    let x = frac.clamp(0.0, 1.0);
    // Quadratic decay concentrated late in the run; mean == 1.

    1.12 - 0.36 * x * x
}

/// One level's measured result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelScore {
    /// Measurement level.
    pub level: MeasurementLevel,
    /// Measured average power over the level's window, W.
    pub power_w: f64,
    /// The resulting Green500-style PPW, GFLOPS/W.
    pub ppw: f64,
}

/// Measure the full-core, full-memory HPL run of `spec` at every level.
pub fn level_study(spec: &ServerSpec, seed: u64) -> Vec<LevelScore> {
    let p = spec.total_cores();
    let cfg = HplConfig::for_memory_fraction(spec, MF_FRACTION, p);
    let sig = cfg.signature();
    let perf = PerfModel::new(spec.clone());
    let power = PowerModel::new(spec.clone());
    let est = perf.execute(&sig, p);
    let mean_w = power.power_w(&sig, &est);
    let idle = power.idle_w();
    let dynamic = mean_w - idle;
    let duration = est.time_s.clamp(300.0, 3600.0);

    // One shared full-run trace with the decaying dynamic profile.
    let noise = power.calibration().noise_sd_w;
    let mut meter = Wt210::new(seed).with_noise(noise);
    let trace =
        meter.record(0.0, duration, move |t| idle + dynamic * hpl_power_shape(t / duration));

    MeasurementLevel::ALL
        .iter()
        .map(|&level| {
            let analysis = TraceAnalysis::new(trace.clone()).with_trim(0.0);
            let stats = analysis
                .analyze(level.window(duration))
                .expect("every level window intersects the run");
            LevelScore { level, power_w: stats.mean_w, ppw: est.gflops / stats.mean_w }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn power_shape_mean_is_one() {
        let steps = 10_000;
        let mean: f64 = (0..steps).map(|i| hpl_power_shape(i as f64 / steps as f64)).sum::<f64>()
            / steps as f64;
        assert!((mean - 1.0).abs() < 0.01, "shape mean {mean}");
    }

    #[test]
    fn power_decays_through_the_run() {
        assert!(hpl_power_shape(0.0) > hpl_power_shape(0.5));
        assert!(hpl_power_shape(0.5) > hpl_power_shape(1.0));
        // ~25 % peak-to-end decay.
        let drop = 1.0 - hpl_power_shape(1.0) / hpl_power_shape(0.0);
        assert!((0.15..0.40).contains(&drop), "decay {drop}");
    }

    #[test]
    fn shorter_early_windows_report_more_power() {
        // [20]'s finding: L1 overestimates power relative to L3.
        for spec in presets::all_servers() {
            let scores = level_study(&spec, 7);
            let get =
                |l: MeasurementLevel| scores.iter().find(|s| s.level == l).expect("level measured");
            let l1 = get(MeasurementLevel::L1);
            let l3 = get(MeasurementLevel::L3);
            assert!(
                l1.power_w > l3.power_w + 1.0,
                "{}: L1 {:.1} !> L3 {:.1}",
                spec.name,
                l1.power_w,
                l3.power_w
            );
            assert!(l1.ppw < l3.ppw, "{}: PPW ordering", spec.name);
        }
    }

    #[test]
    fn level_spread_is_meaningful_but_bounded() {
        let scores = level_study(&presets::xeon_4870(), 11);
        let ppws: Vec<f64> = scores.iter().map(|s| s.ppw).collect();
        let max = ppws.iter().cloned().fold(f64::MIN, f64::max);
        let min = ppws.iter().cloned().fold(f64::MAX, f64::min);
        let spread = (max - min) / min;
        assert!((0.01..0.30).contains(&spread), "spread {spread:.3}");
    }

    #[test]
    fn windows_nest_sensibly() {
        let d = 1000.0;
        let l1 = MeasurementLevel::L1.window(d);
        let l2 = MeasurementLevel::L2.window(d);
        let l3 = MeasurementLevel::L3.window(d);
        assert!(l1.end_s - l1.start_s < l2.end_s - l2.start_s);
        assert!(l2.end_s - l2.start_s < l3.end_s - l3.start_s);
        assert!(l3.start_s <= l1.start_s && l3.end_s >= l2.end_s);
    }
}
