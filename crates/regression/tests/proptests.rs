//! Property tests of the regression crate: least-squares optimality,
//! stepwise behaviour and normalization algebra.

use proptest::prelude::*;

use hpceval_regression::matrix::Matrix;
use hpceval_regression::ols;
use hpceval_regression::stats::{r_squared, Normalizer};
use hpceval_regression::stepwise::forward_stepwise;

fn planted(n: usize, coefs: &[f64], intercept: f64, noise: f64, seed: u64) -> (Matrix, Vec<f64>) {
    let k = coefs.len();
    let mut s = seed | 1;
    let mut rnd = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    };
    let mut data = Vec::with_capacity(n * k);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..k).map(|_| rnd() * 4.0).collect();
        let target: f64 =
            row.iter().zip(coefs).map(|(x, c)| x * c).sum::<f64>() + intercept + noise * rnd();
        data.extend(row);
        y.push(target);
    }
    (Matrix::from_rows(n, k, data), y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// OLS residuals are orthogonal to every fitted column — the
    /// defining property of least squares.
    #[test]
    fn residuals_orthogonal_to_design(c0 in -3.0..3.0f64, c1 in -3.0..3.0f64, noise in 0.0..2.0f64, seed in 1u64..5000) {
        let (x, y) = planted(60, &[c0, c1], 1.0, noise, seed);
        let (model, _) = ols::fit(&x, &y, &[0, 1]).expect("full rank");
        for col in 0..2 {
            let dot: f64 = (0..60)
                .map(|r| {
                    let pred = model.predict_row(&[x.get(r, 0), x.get(r, 1)]);
                    (y[r] - pred) * x.get(r, col)
                })
                .sum();
            prop_assert!(dot.abs() < 1e-6, "col {col}: {dot}");
        }
    }

    /// Adding a predictor never lowers the training R².
    #[test]
    fn r2_monotone_in_predictors(c in -3.0..3.0f64, noise in 0.1..2.0f64, seed in 1u64..5000) {
        let (x, y) = planted(80, &[c, 0.5, -0.25], 0.0, noise, seed);
        let (_, s1) = ols::fit(&x, &y, &[0]).expect("full rank");
        let (_, s2) = ols::fit(&x, &y, &[0, 1]).expect("full rank");
        let (_, s3) = ols::fit(&x, &y, &[0, 1, 2]).expect("full rank");
        prop_assert!(s2.r_square >= s1.r_square - 1e-10);
        prop_assert!(s3.r_square >= s2.r_square - 1e-10);
    }

    /// Stepwise's final R² is at least the best single-column R².
    #[test]
    fn stepwise_beats_best_single(noise in 0.1..1.0f64, seed in 1u64..5000) {
        let (x, y) = planted(100, &[2.0, -1.0, 0.4], 0.5, noise, seed);
        let rep = forward_stepwise(&x, &y, 1e-6).expect("fits");
        for col in 0..3 {
            let (_, s) = ols::fit(&x, &y, &[col]).expect("full rank");
            prop_assert!(rep.summary.r_square >= s.r_square - 1e-10);
        }
    }

    /// Normalizer: apply ∘ invert is the identity per column.
    #[test]
    fn normalizer_inverts(values in prop::collection::vec(-1e4..1e4f64, 4..60)) {
        let norm = Normalizer::fit(&values, 1);
        for &v in &values {
            let z = norm.apply_one(0, v);
            let back = norm.invert_one(0, z);
            // Constant columns normalize to 0 and cannot invert.
            if norm.sds[0] > 0.0 {
                prop_assert!((back - v).abs() < 1e-6 * v.abs().max(1.0));
            }
        }
    }

    /// R² is bounded above by 1 for any prediction.
    #[test]
    fn r2_upper_bound(measured in prop::collection::vec(-100.0..100.0f64, 3..40), shift in -5.0..5.0f64) {
        let predicted: Vec<f64> = measured.iter().map(|v| v + shift).collect();
        prop_assert!(r_squared(&measured, &predicted) <= 1.0 + 1e-12);
    }

    /// Perfectly collinear designs are rejected, never silently fit.
    #[test]
    fn collinear_design_rejected(scale in 0.1..10.0f64, n in 4usize..40) {
        let mut data = Vec::new();
        for i in 0..n {
            let v = i as f64;
            data.extend([v, v * scale]);
        }
        let x = Matrix::from_rows(n, 2, data);
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert!(ols::fit(&x, &y, &[0, 1]).is_none());
    }
}
