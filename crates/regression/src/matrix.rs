//! Dense matrices and Householder-QR least squares.
//!
//! Small, dependency-free linear algebra sized for regression problems
//! (thousands of rows × a handful of columns). Least squares uses
//! Householder reflections — numerically stable where the normal
//! equations would square the condition number.

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `A·x` for a vector `x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Select a subset of columns (for stepwise fits).
    pub fn select_columns(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (j, &c) in cols.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Append a constant 1.0 column (the intercept).
    pub fn with_intercept(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c));
            }
            out.set(r, self.cols, 1.0);
        }
        out
    }

    /// Solve `min ‖A·x − b‖₂` by Householder QR. Returns `None` when the
    /// system is rank-deficient (a zero pivot on R's diagonal) or the
    /// shapes disagree.
    pub fn least_squares(&self, b: &[f64]) -> Option<Vec<f64>> {
        if b.len() != self.rows || self.rows < self.cols || self.cols == 0 {
            return None;
        }
        let m = self.rows;
        let n = self.cols;
        let mut a = self.data.clone();
        let mut y = b.to_vec();

        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for r in k..m {
                norm += a[r * n + k] * a[r * n + k];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                return None; // rank deficient
            }
            let akk = a[k * n + k];
            let alpha = if akk >= 0.0 { -norm } else { norm };
            let mut v: Vec<f64> = (k..m).map(|r| a[r * n + k]).collect();
            v[0] -= alpha;
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 < 1e-300 {
                // Column already reduced; record alpha and continue.
                a[k * n + k] = alpha;
                continue;
            }
            // Apply H = I − 2vvᵀ/‖v‖² to the trailing columns and to y.
            for c in k..n {
                let dot: f64 = (k..m).map(|r| v[r - k] * a[r * n + c]).sum();
                let f = 2.0 * dot / vnorm2;
                for r in k..m {
                    a[r * n + c] -= f * v[r - k];
                }
            }
            let dot: f64 = (k..m).map(|r| v[r - k] * y[r]).sum();
            let f = 2.0 * dot / vnorm2;
            for r in k..m {
                y[r] -= f * v[r - k];
            }
        }
        // Back substitution on R (top n×n of a).
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut s = y[k];
            for c in k + 1..n {
                s -= a[k * n + c] * x[c];
            }
            let d = a[k * n + k];
            if d.abs() < 1e-12 {
                return None;
            }
            x[k] = s / d;
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        // [[2,0],[0,4]] x = [2,8] -> x = [1,2]
        let a = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let x = a.least_squares(&[2.0, 8.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_recovers_planted_coefficients() {
        // y = 3a − 2b + 0.5 with no noise.
        let n = 50;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.11).cos();
            data.extend([a, b, 1.0]);
            y.push(3.0 * a - 2.0 * b + 0.5);
        }
        let m = Matrix::from_rows(n, 3, data);
        let x = m.least_squares(&y).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] + 2.0).abs() < 1e-9);
        assert!((x[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_returns_none() {
        // Two identical columns.
        let mut data = Vec::new();
        for i in 0..10 {
            let v = i as f64;
            data.extend([v, v]);
        }
        let m = Matrix::from_rows(10, 2, data);
        assert!(m.least_squares(&[1.0; 10]).is_none());
    }

    #[test]
    fn underdetermined_returns_none() {
        let m = Matrix::zeros(2, 3);
        assert!(m.least_squares(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        // The least squares residual must be ⟂ to every column.
        let n = 30;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i as f64 * 0.7).sin();
            let b = (i as f64 * 0.3).cos();
            data.extend([a, b]);
            y.push(a * 2.0 + b + (i as f64 * 1.3).sin()); // inconsistent
        }
        let m = Matrix::from_rows(n, 2, data);
        let x = m.least_squares(&y).unwrap();
        let yhat = m.matvec(&x);
        for c in 0..2 {
            let dot: f64 = (0..n).map(|r| (y[r] - yhat[r]) * m.get(r, c)).sum();
            assert!(dot.abs() < 1e-9, "column {c} not orthogonal: {dot}");
        }
    }

    #[test]
    fn select_columns_and_intercept() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.get(0, 0), 3.0);
        assert_eq!(s.get(1, 1), 4.0);
        let w = s.with_intercept();
        assert_eq!(w.cols(), 3);
        assert_eq!(w.get(0, 2), 1.0);
    }
}
