//! Forward stepwise predictor selection.
//!
//! The paper follows Bendel & Afifi's forward stepwise procedure: start
//! from the empty model; at each step add the predictor that most
//! improves R²; stop when no candidate improves it by more than a
//! threshold. The paper keeps all six indicators (Table VIII lists six
//! coefficients), which our reproduction confirms: with diverse HPCC
//! training data, each indicator clears the default threshold.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::ols::{self, LinearModel, OlsSummary};

/// Trace of one forward step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepInfo {
    /// Column added at this step.
    pub added: usize,
    /// R² after adding it.
    pub r_square: f64,
}

/// Result of the stepwise procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepwiseReport {
    /// The final model.
    pub model: LinearModel,
    /// Final fit diagnostics.
    pub summary: OlsSummary,
    /// The steps taken, in order.
    pub steps: Vec<StepInfo>,
}

/// Run forward stepwise selection over all columns of `design`.
///
/// `min_improvement` is the R² gain a candidate must deliver to enter
/// (the paper's stopping rule; 1e-4 keeps everything that measurably
/// helps). Returns `None` if not even a one-predictor model can be fit.
pub fn forward_stepwise(
    design: &Matrix,
    y: &[f64],
    min_improvement: f64,
) -> Option<StepwiseReport> {
    let total = design.cols();
    let mut selected: Vec<usize> = Vec::new();
    let mut best_r2 = f64::NEG_INFINITY;
    let mut best_fit: Option<(LinearModel, OlsSummary)> = None;
    let mut steps = Vec::new();

    loop {
        let mut round_best: Option<(usize, LinearModel, OlsSummary)> = None;
        for cand in 0..total {
            if selected.contains(&cand) {
                continue;
            }
            let mut cols = selected.clone();
            cols.push(cand);
            if let Some((m, s)) = ols::fit(design, y, &cols) {
                let better = match &round_best {
                    Some((_, _, bs)) => s.r_square > bs.r_square,
                    None => true,
                };
                if better {
                    round_best = Some((cand, m, s));
                }
            }
        }
        match round_best {
            Some((cand, m, s)) if s.r_square > best_r2 + min_improvement => {
                selected.push(cand);
                best_r2 = s.r_square;
                steps.push(StepInfo { added: cand, r_square: s.r_square });
                best_fit = Some((m, s));
            }
            _ => break,
        }
        if selected.len() == total {
            break;
        }
    }

    let (model, summary) = best_fit?;
    Some(StepwiseReport { model, summary, steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design_with_noise_column(n: usize) -> (Matrix, Vec<f64>) {
        // y depends on columns 0 and 2; column 1 is pure noise.
        let mut s = 7u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let x: Vec<f64> = (0..3).map(|_| rnd() * 2.0).collect();
            y.push(4.0 * x[0] + 1.5 * x[2] + 0.01 * rnd());
            data.extend(x);
        }
        (Matrix::from_rows(n, 3, data), y)
    }

    #[test]
    fn picks_informative_columns_first() {
        let (x, y) = design_with_noise_column(500);
        let rep = forward_stepwise(&x, &y, 1e-4).unwrap();
        // Strongest predictor (col 0) must be the first step.
        assert_eq!(rep.steps[0].added, 0);
        assert!(rep.steps.iter().any(|s| s.added == 2));
        assert!(rep.summary.r_square > 0.999);
    }

    #[test]
    fn excludes_pure_noise_column() {
        let (x, y) = design_with_noise_column(500);
        let rep = forward_stepwise(&x, &y, 1e-4).unwrap();
        assert!(
            !rep.model.columns.contains(&1),
            "noise column entered the model: {:?}",
            rep.model.columns
        );
    }

    #[test]
    fn r_square_is_monotone_over_steps() {
        let (x, y) = design_with_noise_column(300);
        let rep = forward_stepwise(&x, &y, 0.0).unwrap();
        let mut last = f64::NEG_INFINITY;
        for s in &rep.steps {
            assert!(s.r_square >= last);
            last = s.r_square;
        }
    }

    #[test]
    fn huge_threshold_yields_single_predictor() {
        let (x, y) = design_with_noise_column(300);
        let rep = forward_stepwise(&x, &y, 0.9).unwrap();
        assert_eq!(rep.model.columns.len(), 1);
    }

    #[test]
    fn degenerate_design_returns_none() {
        // All-zero design cannot fit anything.
        let x = Matrix::zeros(10, 2);
        let y = vec![1.0; 10];
        assert!(forward_stepwise(&x, &y, 1e-4).is_none());
    }
}
