//! Ordinary least squares with the diagnostics of the paper's Table VII.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::stats;

/// A fitted linear model `y ≈ Σ bᵢ·xᵢ + C`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Coefficients over the predictor columns used in the fit.
    pub coefficients: Vec<f64>,
    /// Intercept `C`.
    pub intercept: f64,
    /// Indices of the predictor columns (into the original design
    /// matrix) the coefficients refer to.
    pub columns: Vec<usize>,
}

impl LinearModel {
    /// Predict for one full-width feature row (unused columns ignored).
    pub fn predict_row(&self, features: &[f64]) -> f64 {
        self.intercept
            + self
                .columns
                .iter()
                .zip(&self.coefficients)
                .map(|(&c, b)| b * features[c])
                .sum::<f64>()
    }

    /// Predict for every row of a row-major feature block of width
    /// `width`.
    pub fn predict_all(&self, data: &[f64], width: usize) -> Vec<f64> {
        assert_eq!(data.len() % width, 0);
        data.chunks(width).map(|row| self.predict_row(row)).collect()
    }

    /// Coefficient vector expanded to `width` slots (zeros for unused
    /// columns) — the shape of the paper's Table VIII.
    pub fn dense_coefficients(&self, width: usize) -> Vec<f64> {
        let mut out = vec![0.0; width];
        for (&c, b) in self.columns.iter().zip(&self.coefficients) {
            out[c] = *b;
        }
        out
    }
}

/// Fit diagnostics in the shape of the paper's Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OlsSummary {
    /// Multiple R (√R², the correlation between y and ŷ).
    pub multiple_r: f64,
    /// R Square.
    pub r_square: f64,
    /// Adjusted R Square.
    pub adjusted_r_square: f64,
    /// Standard error of the residuals.
    pub standard_error: f64,
    /// Number of observations.
    pub observations: usize,
}

/// Fit `y ≈ X[:, columns]·b + C` by QR least squares.
///
/// Returns `None` when the selected design is rank deficient or there
/// are fewer observations than parameters.
pub fn fit(design: &Matrix, y: &[f64], columns: &[usize]) -> Option<(LinearModel, OlsSummary)> {
    let x = design.select_columns(columns).with_intercept();
    let beta = x.least_squares(y)?;
    let (coefs, intercept) = beta.split_at(columns.len());
    let model = LinearModel {
        coefficients: coefs.to_vec(),
        intercept: intercept[0],
        columns: columns.to_vec(),
    };
    let yhat = x.matvec(&beta);
    let n = y.len();
    let k = columns.len();
    let r2 = stats::r_squared(y, &yhat);
    let adj = if n > k + 1 { 1.0 - (1.0 - r2) * ((n - 1) as f64 / (n - k - 1) as f64) } else { r2 };
    let rss: f64 = y.iter().zip(&yhat).map(|(a, b)| (a - b) * (a - b)).sum();
    let se = if n > k + 1 { (rss / (n - k - 1) as f64).sqrt() } else { 0.0 };
    let summary = OlsSummary {
        multiple_r: r2.max(0.0).sqrt(),
        r_square: r2,
        adjusted_r_square: adj,
        standard_error: se,
        observations: n,
    };
    Some((model, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(n: usize, noise: f64) -> (Matrix, Vec<f64>) {
        // y = 2·x0 − 1·x1 + 0.3·x2 + 5 (x3 is irrelevant).
        let mut data = Vec::new();
        let mut y = Vec::new();
        let mut s = 123u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
        };
        for _ in 0..n {
            let x: Vec<f64> = (0..4).map(|_| rnd() * 4.0).collect();
            y.push(2.0 * x[0] - x[1] + 0.3 * x[2] + 5.0 + noise * rnd());
            data.extend(x);
        }
        (Matrix::from_rows(n, 4, data), y)
    }

    #[test]
    fn recovers_planted_coefficients() {
        let (x, y) = planted(200, 0.0);
        let (model, summary) = fit(&x, &y, &[0, 1, 2]).unwrap();
        assert!((model.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((model.coefficients[1] + 1.0).abs() < 1e-9);
        assert!((model.coefficients[2] - 0.3).abs() < 1e-9);
        assert!((model.intercept - 5.0).abs() < 1e-9);
        assert!((summary.r_square - 1.0).abs() < 1e-12);
        assert!(summary.standard_error < 1e-9);
    }

    #[test]
    fn noise_lowers_r_square_but_keeps_coefficients_close() {
        let (x, y) = planted(2000, 1.0);
        let (model, summary) = fit(&x, &y, &[0, 1, 2]).unwrap();
        assert!((model.coefficients[0] - 2.0).abs() < 0.05);
        assert!(summary.r_square > 0.9 && summary.r_square < 1.0);
        assert!(summary.adjusted_r_square <= summary.r_square);
    }

    #[test]
    fn predict_matches_fit_columns() {
        let (x, y) = planted(100, 0.0);
        let (model, _) = fit(&x, &y, &[2, 0]).unwrap();
        // Row with x = [1, 2, 3, 4]: prediction uses cols 2 and 0 only.
        let p = model.predict_row(&[1.0, 2.0, 3.0, 4.0]);
        let manual = model.intercept + model.coefficients[0] * 3.0 + model.coefficients[1] * 1.0;
        assert!((p - manual).abs() < 1e-12);
    }

    #[test]
    fn dense_coefficients_layout() {
        let (x, y) = planted(100, 0.0);
        let (model, _) = fit(&x, &y, &[2, 0]).unwrap();
        let dense = model.dense_coefficients(4);
        assert_eq!(dense[1], 0.0);
        assert_eq!(dense[3], 0.0);
        assert!((dense[2] - model.coefficients[0]).abs() < 1e-15);
    }

    #[test]
    fn too_few_observations_is_none() {
        let x = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(fit(&x, &[1.0, 2.0], &[0, 1, 2]).is_none());
    }
}
