//! Normalization and goodness-of-fit statistics.
//!
//! The paper normalizes PMU counters and power "to unify the dimensions
//! of different variables" before regression (§VI-A2) and validates with
//! the fitting coefficient of determination `R² = 1 − RSS/TSS`
//! (Eqs. 6–8).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Z-score a column in place; constant columns become all zeros.
pub fn zscore(xs: &mut [f64]) {
    let m = mean(xs);
    let s = std_dev(xs);
    for x in xs.iter_mut() {
        *x = if s > 0.0 { (*x - m) / s } else { 0.0 };
    }
}

/// Per-column normalization parameters, remembered so validation data
/// can be transformed with the *training* statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Column means.
    pub means: Vec<f64>,
    /// Column standard deviations (0 ⇒ constant column).
    pub sds: Vec<f64>,
}

impl Normalizer {
    /// Fit to `rows × cols` data stored row-major.
    pub fn fit(data: &[f64], cols: usize) -> Self {
        assert!(cols > 0 && data.len().is_multiple_of(cols));
        let rows = data.len() / cols;
        let mut means = vec![0.0; cols];
        let mut sds = vec![0.0; cols];
        for c in 0..cols {
            let col: Vec<f64> = (0..rows).map(|r| data[r * cols + c]).collect();
            means[c] = mean(&col);
            sds[c] = std_dev(&col);
        }
        Self { means, sds }
    }

    /// Transform a row-major data block in place.
    pub fn apply(&self, data: &mut [f64]) {
        let cols = self.means.len();
        assert_eq!(data.len() % cols, 0);
        for (i, v) in data.iter_mut().enumerate() {
            let c = i % cols;
            *v = if self.sds[c] > 0.0 { (*v - self.means[c]) / self.sds[c] } else { 0.0 };
        }
    }

    /// Transform a single value of column `c`.
    pub fn apply_one(&self, c: usize, v: f64) -> f64 {
        if self.sds[c] > 0.0 {
            (v - self.means[c]) / self.sds[c]
        } else {
            0.0
        }
    }

    /// Invert the transform for column `c`.
    pub fn invert_one(&self, c: usize, v: f64) -> f64 {
        v * self.sds[c] + self.means[c]
    }
}

/// The paper's fitting coefficient of determination (Eqs. 6–8):
/// `R² = 1 − Σ(xᵢ − x̃ᵢ)² / Σ(xᵢ − x̄)²` over measured `measured` and
/// predicted `predicted`.
///
/// Can be negative when the prediction is worse than the mean.
pub fn r_squared(measured: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(measured.len(), predicted.len());
    if measured.is_empty() {
        return 0.0;
    }
    let m = mean(measured);
    let rss: f64 = measured.iter().zip(predicted).map(|(x, p)| (x - p) * (x - p)).sum();
    let tss: f64 = measured.iter().map(|x| (x - m) * (x - m)).sum();
    if tss <= 0.0 {
        return if rss <= 1e-30 { 1.0 } else { 0.0 };
    }
    1.0 - rss / tss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_normalizes() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        zscore(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_column_is_zeroed() {
        let mut xs = vec![7.0; 5];
        zscore(&mut xs);
        assert!(xs.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn normalizer_round_trip() {
        let data = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let norm = Normalizer::fit(&data, 2);
        let mut t = data.clone();
        norm.apply(&mut t);
        for (i, v) in t.iter().enumerate() {
            let back = norm.invert_one(i % 2, *v);
            assert!((back - data[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn normalizer_apply_one_matches_apply() {
        let data = vec![1.0, 5.0, 3.0, 9.0];
        let norm = Normalizer::fit(&data, 2);
        let mut t = data.clone();
        norm.apply(&mut t);
        assert!((norm.apply_one(0, 1.0) - t[0]).abs() < 1e-12);
        assert!((norm.apply_one(1, 9.0) - t[3]).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&y, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn r_squared_can_be_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [3.0, 2.0, 1.0];
        assert!(r_squared(&y, &bad) < 0.0);
    }
}
