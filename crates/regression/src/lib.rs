//! Multiple linear regression for the power model (paper §VI).
//!
//! The paper trains `P ≈ b1·X1 + … + b6·X6 + C` on HPCC samples with
//! *forward stepwise* selection [Bendel & Afifi 1977], normalizes the
//! variables to unify dimensions, reports R²/adjusted-R²/standard error
//! (Table VII) and the coefficient vector (Table VIII), and validates on
//! NPB with the `R² = 1 − RSS/TSS` fitting coefficient (Eqs. 6–8).
//!
//! * [`matrix`] — dense matrix with Householder QR least squares
//!   (numerically stable; no normal equations),
//! * [`stats`] — means, standard deviations, z-score normalization,
//! * [`ols`] — ordinary least squares with the diagnostics of Table VII,
//! * [`stepwise`] — forward stepwise predictor selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod ols;
pub mod stats;
pub mod stepwise;

pub use matrix::Matrix;
pub use ols::{LinearModel, OlsSummary};
pub use stats::{r_squared, zscore, Normalizer};
pub use stepwise::{forward_stepwise, StepwiseReport};
