//! Cross-width determinism of the parallel kernels.
//!
//! The executor reassembles pieces in order and element-wise kernels
//! never move arithmetic across piece boundaries, so DGEMM, the LU
//! trailing update, STREAM, EP (fixed block decomposition) and the IS
//! histogram must produce *bit-identical* results at every logical
//! thread width. CI runs this suite under both `HPCEVAL_THREADS=1` and
//! `HPCEVAL_THREADS=4`; when that variable is set it pins every width
//! below to the same value, and the whole suite must still pass at
//! either pin.

use hpceval_kernels::hpcc::dgemm::{dgemm, dgemm_naive};
use hpceval_kernels::hpcc::stream;
use hpceval_kernels::hpl::lu;
use hpceval_kernels::npb::{ep, is};
use hpceval_kernels::rng::NpbRng;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn with_width<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn dgemm_bitwise_identical_across_widths() {
    // Not a BLOCK multiple, so edge tiles and the k-unroll remainder
    // path are exercised too.
    let n = 160;
    let mut rng = NpbRng::new(2024);
    let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();

    let run = |width: usize| {
        with_width(width, || {
            let mut c = c0.clone();
            dgemm(n, 1.25, &a, &b, 0.5, &mut c);
            c
        })
    };
    let reference = run(1);
    for width in WIDTHS {
        assert_eq!(bits(&run(width)), bits(&reference), "dgemm diverges at width {width}");
    }
    // Anchor the shared answer against the naive triple loop.
    let mut naive = c0.clone();
    dgemm_naive(n, 1.25, &a, &b, 0.5, &mut naive);
    let max_err = reference.iter().zip(&naive).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    assert!(max_err < 1e-10, "blocked result drifted from naive: {max_err:.3e}");
}

#[test]
fn lu_factorization_bitwise_identical_across_widths() {
    let a = lu::Matrix::random(192, 31);
    let reference = lu::factor(a.clone(), 24, 1).unwrap();
    for width in WIDTHS {
        let f = lu::factor(a.clone(), 24, width).unwrap();
        assert_eq!(f.pivots, reference.pivots, "pivot sequence diverges at width {width}");
        assert_eq!(
            bits(&f.lu.data),
            bits(&reference.lu.data),
            "LU factors diverge at width {width}"
        );
    }
}

#[test]
fn stream_cycle_bitwise_identical_across_widths() {
    let reference = with_width(1, || stream::run(1 << 14, 3));
    for width in WIDTHS {
        let out = with_width(width, || stream::run(1 << 14, 3));
        assert_eq!(
            out.head.to_bits(),
            reference.head.to_bits(),
            "STREAM checksum diverges at width {width}"
        );
        assert!(out.passes(), "STREAM validation fails at width {width}");
    }
}

#[test]
fn ep_sums_bitwise_identical_across_widths() {
    let reference = ep::run(14, 1);
    for width in WIDTHS {
        let out = ep::run(14, width);
        assert_eq!(out.q, reference.q, "EP annulus counts diverge at width {width}");
        assert_eq!(out.sx.to_bits(), reference.sx.to_bits(), "EP Σx diverges at width {width}");
        assert_eq!(out.sy.to_bits(), reference.sy.to_bits(), "EP Σy diverges at width {width}");
    }
}

#[test]
fn is_ranking_identical_across_widths() {
    let keys = is::generate_keys(1 << 15, 1 << 10, 99);
    let reference = with_width(1, || is::rank_keys(&keys, 1 << 10));
    for width in WIDTHS {
        let ranks = with_width(width, || is::rank_keys(&keys, 1 << 10));
        assert_eq!(ranks, reference, "IS ranks diverge at width {width}");
    }
}
