//! Cross-width determinism of the parallel kernels.
//!
//! The executor reassembles pieces in order and element-wise kernels
//! never move arithmetic across piece boundaries, so DGEMM, the HPL LU
//! trailing update, STREAM and all eight NPB programs must produce
//! *bit-identical* results at every logical thread width: EP uses a
//! fixed block decomposition, CG a fixed-chunk dot product, IS a
//! fixed-chunk histogram and owned output segments, FT per-line
//! transforms with tiled elementwise transposes, MG elementwise grid
//! sweeps, BT/SP independent line solves, and NPB-LU a hyperplane
//! wavefront that reproduces the serial Gauss-Seidel order exactly. CI
//! runs this suite under both `HPCEVAL_THREADS=1` and
//! `HPCEVAL_THREADS=4`; when that variable is set it pins every width
//! below to the same value, and the whole suite must still pass at
//! either pin.

use hpceval_kernels::hpcc::dgemm::{dgemm, dgemm_naive};
use hpceval_kernels::hpcc::stream;
use hpceval_kernels::hpl::lu;
use hpceval_kernels::npb::lu as npb_lu;
use hpceval_kernels::npb::{bt, cg, ep, ft, is, mg, sp};
use hpceval_kernels::rng::NpbRng;
use hpceval_kernels::simd::{self, SimdMode};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn with_width<R>(n: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().unwrap().install(f)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn dgemm_bitwise_identical_across_widths() {
    // Not a BLOCK multiple, so edge tiles and the k-unroll remainder
    // path are exercised too.
    let n = 160;
    let mut rng = NpbRng::new(2024);
    let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();

    let run = |width: usize| {
        with_width(width, || {
            let mut c = c0.clone();
            dgemm(n, 1.25, &a, &b, 0.5, &mut c);
            c
        })
    };
    let reference = run(1);
    for width in WIDTHS {
        assert_eq!(bits(&run(width)), bits(&reference), "dgemm diverges at width {width}");
    }
    // Anchor the shared answer against the naive triple loop.
    let mut naive = c0.clone();
    dgemm_naive(n, 1.25, &a, &b, 0.5, &mut naive);
    let max_err = reference.iter().zip(&naive).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
    assert!(max_err < 1e-10, "blocked result drifted from naive: {max_err:.3e}");
}

#[test]
fn lu_factorization_bitwise_identical_across_widths() {
    let a = lu::Matrix::random(192, 31);
    let reference = lu::factor(a.clone(), 24, 1).unwrap();
    for width in WIDTHS {
        let f = lu::factor(a.clone(), 24, width).unwrap();
        assert_eq!(f.pivots, reference.pivots, "pivot sequence diverges at width {width}");
        assert_eq!(
            bits(&f.lu.data),
            bits(&reference.lu.data),
            "LU factors diverge at width {width}"
        );
    }
}

#[test]
fn stream_cycle_bitwise_identical_across_widths() {
    let reference = with_width(1, || stream::run(1 << 14, 3));
    for width in WIDTHS {
        let out = with_width(width, || stream::run(1 << 14, 3));
        assert_eq!(
            out.head.to_bits(),
            reference.head.to_bits(),
            "STREAM checksum diverges at width {width}"
        );
        assert!(out.passes(), "STREAM validation fails at width {width}");
    }
}

#[test]
fn ep_sums_bitwise_identical_across_widths() {
    let reference = ep::run(14, 1);
    for width in WIDTHS {
        let out = ep::run(14, width);
        assert_eq!(out.q, reference.q, "EP annulus counts diverge at width {width}");
        assert_eq!(out.sx.to_bits(), reference.sx.to_bits(), "EP Σx diverges at width {width}");
        assert_eq!(out.sy.to_bits(), reference.sy.to_bits(), "EP Σy diverges at width {width}");
    }
}

#[test]
fn is_ranking_identical_across_widths() {
    let keys = is::generate_keys(1 << 15, 1 << 10, 99);
    let reference = with_width(1, || is::rank_keys(&keys, 1 << 10));
    for width in WIDTHS {
        let ranks = with_width(width, || is::rank_keys(&keys, 1 << 10));
        assert_eq!(ranks, reference, "IS ranks diverge at width {width}");
    }
}

#[test]
fn is_sort_identical_across_widths() {
    let keys = is::generate_keys(1 << 15, 1 << 9, 41);
    let reference = with_width(1, || is::sort_by_ranks(&keys, 1 << 9));
    for width in WIDTHS {
        let sorted = with_width(width, || is::sort_by_ranks(&keys, 1 << 9));
        assert_eq!(sorted, reference, "IS sorted output diverges at width {width}");
    }
}

#[test]
fn cg_outcome_bitwise_identical_across_widths() {
    let reference = with_width(1, || cg::run(800, 6, 3, 10.0));
    for width in WIDTHS {
        let out = with_width(width, || cg::run(800, 6, 3, 10.0));
        assert_eq!(out.zeta.to_bits(), reference.zeta.to_bits(), "CG ζ diverges at width {width}");
        assert_eq!(
            out.residual.to_bits(),
            reference.residual.to_bits(),
            "CG residual diverges at width {width}"
        );
    }
}

#[test]
fn mg_v_cycles_bitwise_identical_across_widths() {
    let n = 32;
    let v = mg::Grid::random_rhs(n, 7);
    let run = |width: usize| {
        with_width(width, || {
            let mut u = mg::Grid::zeros(n);
            let mut ws = mg::MgWorkspace::new(n);
            for _ in 0..2 {
                mg::v_cycle_with(&mut u, &v, &mut ws);
            }
            u.data
        })
    };
    let reference = run(1);
    for width in WIDTHS {
        assert_eq!(bits(&run(width)), bits(&reference), "MG solution diverges at width {width}");
    }
}

#[test]
fn ft_checksums_bitwise_identical_across_widths() {
    let run = |width: usize| with_width(width, || ft::run_scaled(16, 8, 8, 3));
    let reference = run(1);
    for width in WIDTHS {
        let sums = run(width);
        for (i, (a, b)) in sums.iter().zip(&reference).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "FT checksum {i} re, width {width}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "FT checksum {i} im, width {width}");
        }
    }
}

fn vec5_bits(v: &[[f64; 5]]) -> Vec<u64> {
    v.iter().flatten().map(|x| x.to_bits()).collect()
}

#[test]
fn bt_adi_bitwise_identical_across_widths() {
    let n = 8;
    let prob = bt::AdiProblem::new(n, 555);
    let mut rng = NpbRng::new(6);
    let b: Vec<[f64; 5]> = (0..n * n * n)
        .map(|_| [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()])
        .collect();
    let run = |width: usize| {
        with_width(width, || {
            let mut u = vec![[0.0f64; 5]; n * n * n];
            for _ in 0..2 {
                prob.adi_step(&mut u, &b);
            }
            u
        })
    };
    let reference = run(1);
    for width in WIDTHS {
        assert_eq!(
            vec5_bits(&run(width)),
            vec5_bits(&reference),
            "BT solution diverges at width {width}"
        );
    }
}

#[test]
fn sp_adi_bitwise_identical_across_widths() {
    let n = 8;
    let prob = sp::SpProblem::new(n, 444);
    let mut rng = NpbRng::new(8);
    let b: Vec<f64> = (0..n * n * n * 5).map(|_| rng.next_f64() - 0.5).collect();
    let run = |width: usize| {
        with_width(width, || {
            let mut u = vec![0.0f64; n * n * n * 5];
            for _ in 0..2 {
                prob.adi_step(&mut u, &b);
            }
            u
        })
    };
    let reference = run(1);
    for width in WIDTHS {
        assert_eq!(bits(&run(width)), bits(&reference), "SP solution diverges at width {width}");
    }
}

/// The SIMD determinism contract: every kernel that routes spans
/// through `hpceval_kernels::simd` produces *bit-identical* output on
/// the scalar and AVX2 paths, at every logical thread width. Each
/// kernel resolves its mode once at entry on the calling thread —
/// which is where `install` runs its closure — so `with_mode` here
/// governs the whole parallel call. When `HPCEVAL_SIMD` pins a mode
/// (the env wins over `with_mode`, as documented) or the host lacks
/// AVX2, both closures resolve to the same path and the assertions
/// hold trivially — the suite stays green under every CI leg.
#[test]
fn simd_scalar_and_avx2_bitwise_identical_across_widths() {
    fn pair(f: impl Fn() -> Vec<u64>) -> (Vec<u64>, Vec<u64>) {
        (simd::with_mode(SimdMode::Scalar, &f), simd::with_mode(SimdMode::Avx2, &f))
    }

    // DGEMM at a non-BLOCK-multiple order (edge tiles + k remainder).
    let n = 160;
    let mut rng = NpbRng::new(515);
    let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    for width in WIDTHS {
        let (s, v) = pair(|| {
            with_width(width, || {
                let mut c = c0.clone();
                dgemm(n, 1.25, &a, &b, 0.5, &mut c);
                bits(&c)
            })
        });
        assert_eq!(s, v, "dgemm scalar vs avx2 diverges at width {width}");
    }

    // HPL LU (trailing update + U block-row solve).
    let m0 = lu::Matrix::random(96, 77);
    for width in WIDTHS {
        let (s, v) = pair(|| bits(&lu::factor(m0.clone(), 24, width).unwrap().lu.data));
        assert_eq!(s, v, "hpl lu scalar vs avx2 diverges at width {width}");
    }

    // STREAM copy/scale/add/triad.
    for width in WIDTHS {
        let (s, v) = pair(|| with_width(width, || vec![stream::run(1 << 12, 3).head.to_bits()]));
        assert_eq!(s, v, "stream scalar vs avx2 diverges at width {width}");
    }

    // CG (strided-4 dots + axpy/xpby/scale_div updates).
    for width in WIDTHS {
        let (s, v) = pair(|| {
            with_width(width, || {
                let out = cg::run(500, 5, 2, 10.0);
                vec![out.zeta.to_bits(), out.residual.to_bits()]
            })
        });
        assert_eq!(s, v, "cg scalar vs avx2 diverges at width {width}");
    }

    // MG (stencil7 interior spans + axpy smoothing).
    let rhs = mg::Grid::random_rhs(16, 21);
    for width in WIDTHS {
        let (s, v) = pair(|| {
            with_width(width, || {
                let mut u = mg::Grid::zeros(16);
                mg::v_cycle(&mut u, &rhs);
                bits(&u.data)
            })
        });
        assert_eq!(s, v, "mg scalar vs avx2 diverges at width {width}");
    }

    // FT (SIMD butterfly in the batched per-line transforms).
    for width in WIDTHS {
        let (s, v) = pair(|| {
            with_width(width, || {
                ft::run_scaled(16, 8, 8, 2)
                    .iter()
                    .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
                    .collect()
            })
        });
        assert_eq!(s, v, "ft scalar vs avx2 diverges at width {width}");
    }
}

/// The trace recorder's determinism contract: the *captured address
/// trace* — not just the numeric output — is bitwise identical at every
/// width. Chunk ids are width-invariant decomposition indices, epochs
/// advance only at serial points, sampling is a pure hash of
/// (seed, region, id), and the merge sorts chunks by id, so the encoded
/// bytes cannot depend on the pool width. Replayed counters are a pure
/// function of the trace, so they inherit the guarantee.
#[test]
fn captured_traces_bitwise_identical_across_widths() {
    use hpceval_machine::presets;
    use hpceval_trace::{replay, CaptureConfig, CaptureGuard, Region, ReplayOptions, Trace};

    fn capture(region: Region, width: usize) -> Trace {
        // Sampled mode exercises the hash-selected chunk subset; the
        // rate is mild (1-in-2) because the sampler is a pure hash and
        // several kernels only produce a handful of chunks at these
        // sizes — the subset must stay non-empty for every kernel.
        let config = CaptureConfig {
            mode: hpceval_trace::TraceMode::Sampled,
            sample_one_in: 2,
            ..CaptureConfig::default()
        };
        let guard = CaptureGuard::start(region, config).expect("sampled capture starts");
        with_width(width, || match region {
            Region::Dgemm => {
                let n = 96;
                let mut rng = NpbRng::new(31);
                let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
                let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
                let mut c = vec![0.0; n * n];
                dgemm(n, 1.0, &a, &b, 0.0, &mut c);
            }
            Region::Stream => {
                stream::run(1 << 12, 2);
            }
            Region::Cg => {
                cg::run(400, 4, 2, 10.0);
            }
            Region::Mg => {
                let v = mg::Grid::random_rhs(16, 7);
                let mut u = mg::Grid::zeros(16);
                mg::v_cycle(&mut u, &v);
            }
            Region::Is => {
                // 2^18 keys = four histogram chunks, enough for the
                // 1-in-4 sampler to keep at least one.
                let keys = is::generate_keys(1 << 18, 1 << 9, 99);
                is::rank_keys(&keys, 1 << 9);
            }
            Region::RandomAccess => {
                hpceval_kernels::hpcc::random_access::run(14, 4 << 14, 9);
            }
            Region::Ft => {
                ft::run_scaled(16, 16, 8, 1);
            }
            Region::Hpl => {
                // factor() builds its own pool; hand it the ambient
                // width so the banding actually varies under test.
                let a = lu::Matrix::random(96, 5);
                lu::factor(a, 16, rayon::current_num_threads()).unwrap();
            }
            Region::Ep => {
                ep::run(14, rayon::current_num_threads());
            }
            Region::Sp => {
                let n = 8;
                let prob = sp::SpProblem::new(n, 55);
                let mut rng = NpbRng::new(3);
                let b: Vec<f64> = (0..n * n * n * 5).map(|_| rng.next_f64() - 0.5).collect();
                let mut u = vec![0.0; n * n * n * 5];
                prob.adi_step(&mut u, &b);
            }
            Region::Bt => {
                let n = 8;
                let prob = bt::AdiProblem::new(n, 55);
                let mut rng = NpbRng::new(3);
                let b: Vec<_> = (0..n * n * n)
                    .map(|_| {
                        [
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                        ]
                    })
                    .collect();
                let mut u = vec![[0.0f64; 5]; n * n * n];
                prob.adi_step(&mut u, &b);
            }
            Region::Lu => {
                let n = 8;
                let prob = npb_lu::SsorProblem::new(n, 55);
                let mut rng = NpbRng::new(3);
                let b: Vec<_> = (0..n * n * n)
                    .map(|_| {
                        [
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                            rng.next_f64() - 0.5,
                        ]
                    })
                    .collect();
                let mut u = vec![[0.0f64; 5]; n * n * n];
                prob.ssor_step(&mut u, &b, 1.2);
            }
        });
        guard.finish()
    }

    for region in Region::ALL {
        let reference = capture(region, 1);
        assert!(reference.total_events() > 0, "{} captured nothing", region.name());
        let ref_bytes = reference.encode();
        let ref_counters = replay(&reference, &presets::xeon_4870(), ReplayOptions::default());
        for width in WIDTHS {
            let trace = capture(region, width);
            assert_eq!(
                trace.encode(),
                ref_bytes,
                "{} trace diverges at width {width}",
                region.name()
            );
            let counters = replay(&trace, &presets::xeon_4870(), ReplayOptions::default());
            assert_eq!(
                counters,
                ref_counters,
                "{} replayed counters diverge at width {width}",
                region.name()
            );
        }
    }
}

#[test]
fn npb_lu_ssor_bitwise_identical_across_widths() {
    let n = 8;
    let prob = npb_lu::SsorProblem::new(n, 333);
    let mut rng = NpbRng::new(9);
    let b: Vec<[f64; 5]> = (0..n * n * n)
        .map(|_| [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()])
        .collect();
    let run = |width: usize| {
        with_width(width, || {
            let mut u = vec![[0.0f64; 5]; n * n * n];
            for _ in 0..2 {
                prob.ssor_step(&mut u, &b, 1.2);
            }
            u
        })
    };
    let reference = run(1);
    for width in WIDTHS {
        assert_eq!(
            vec5_bits(&run(width)),
            vec5_bits(&reference),
            "LU SSOR solution diverges at width {width}"
        );
    }
}
