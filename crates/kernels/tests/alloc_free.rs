//! Pins the allocation behaviour of the FT hot path: with a warm
//! [`FtWorkspace`], `fft3_with` must perform **zero** heap allocations
//! per call at logical width 1 (the executor's sequential fast path
//! runs every chunk inline; the scratch buffer and twiddle tables are
//! caller-owned). At parallel widths the scheduler allocates O(pieces)
//! bookkeeping per parallel region, which must stay far below the size
//! of the field — the four per-call `Field3` clones this replaced.
//!
//! This file holds a single test on purpose: the counting allocator is
//! process-global, and a concurrent test in the same binary would
//! pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hpceval_kernels::fft::Direction;
use hpceval_kernels::npb::ft::{fft3_with, Field3, FtWorkspace};

/// Forwards to the system allocator, counting calls and bytes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn fft3_with_is_allocation_free_after_warmup() {
    let (nx, ny, nz) = (32, 32, 32);
    // Request width 1; HPCEVAL_THREADS (the CI matrix pin) overrides
    // the request by design, so read back the width that actually took
    // effect and assert accordingly.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    pool.install(|| {
        let width = rayon::current_num_threads();
        let mut ws = FtWorkspace::new(nx, ny, nz);
        let mut f = Field3::random(nx, ny, nz, 2_718_281);
        // Warm up: pool spin-up and any lazy initialization happen here,
        // outside the measured window.
        for _ in 0..3 {
            fft3_with(&mut f, Direction::Forward, &mut ws);
            fft3_with(&mut f, Direction::Inverse, &mut ws);
        }
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let b0 = BYTES.load(Ordering::Relaxed);
        const ITERS: u64 = 10;
        for _ in 0..ITERS {
            fft3_with(&mut f, Direction::Forward, &mut ws);
            fft3_with(&mut f, Direction::Inverse, &mut ws);
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - a0;
        let bytes = BYTES.load(Ordering::Relaxed) - b0;
        let field_bytes = (nx * ny * nz * std::mem::size_of::<f64>() * 2) as u64;
        if width == 1 {
            assert_eq!(
                allocs, 0,
                "fft3_with allocated {allocs} times ({bytes} B) across {ITERS} \
                 warm iterations at width 1"
            );
        } else {
            // 2·ITERS transforms ran; per-transform bookkeeping must be a
            // small fraction of one field (the old code allocated 4 whole
            // fields per call).
            let per_call = bytes / (2 * ITERS);
            assert!(
                per_call < field_bytes / 8,
                "fft3_with allocates {per_call} B per call at width {width} \
                 (field is {field_bytes} B)"
            );
        }
        // The transform still computes something sane.
        assert!(f.checksum().norm_sqr().is_finite());
    });
}
