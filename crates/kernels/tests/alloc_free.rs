//! Pins the allocation behaviour of the warm hot paths: with
//! caller-owned workspaces, `fft3_with`, `dgemm_with` and the HPL
//! `trailing_update` must perform **zero** heap allocations per call at
//! logical width 1 (the executor's sequential fast path runs every
//! chunk inline; scratch buffers, packed tiles and twiddle tables are
//! caller-owned). At parallel widths the scheduler allocates O(pieces)
//! bookkeeping per parallel region, which must stay far below the size
//! of the operands — the whole-array clones and per-panel B packing
//! these replaced.
//!
//! This file holds a single test on purpose: the counting allocator is
//! process-global, and a concurrent test in the same binary would
//! pollute the counters. The three phases run sequentially inside it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hpceval_kernels::fft::Direction;
use hpceval_kernels::hpcc::dgemm::{dgemm_with, DgemmWorkspace};
use hpceval_kernels::hpl::lu;
use hpceval_kernels::npb::ft::{fft3_with, Field3, FtWorkspace};
use hpceval_kernels::rng::NpbRng;

/// Forwards to the system allocator, counting calls and bytes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations and bytes across `iters` runs of `f`, measured after
/// `f` has already run twice (pool spin-up, `OnceLock` env reads and
/// any other lazy initialization happen outside the window).
fn measure(iters: u64, mut f: impl FnMut()) -> (u64, u64) {
    f();
    f();
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    for _ in 0..iters {
        f();
    }
    (ALLOCS.load(Ordering::Relaxed) - a0, BYTES.load(Ordering::Relaxed) - b0)
}

#[test]
fn warm_hot_paths_are_allocation_free() {
    // Request width 1; HPCEVAL_THREADS (the CI matrix pin) overrides
    // the request by design, so read back the width that actually took
    // effect and assert accordingly.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    pool.install(|| {
        let width = rayon::current_num_threads();
        const ITERS: u64 = 10;

        // FT: forward+inverse against a warm FtWorkspace.
        let (nx, ny, nz) = (32, 32, 32);
        let mut ws = FtWorkspace::new(nx, ny, nz);
        let mut f = Field3::random(nx, ny, nz, 2_718_281);
        let (allocs, bytes) = measure(ITERS, || {
            fft3_with(&mut f, Direction::Forward, &mut ws);
            fft3_with(&mut f, Direction::Inverse, &mut ws);
        });
        let field_bytes = (nx * ny * nz * std::mem::size_of::<f64>() * 2) as u64;
        if width == 1 {
            assert_eq!(
                allocs, 0,
                "fft3_with allocated {allocs} times ({bytes} B) across {ITERS} \
                 warm iterations at width 1"
            );
        } else {
            // 2·ITERS transforms ran; per-transform bookkeeping must be a
            // small fraction of one field (the old code allocated 4 whole
            // fields per call).
            let per_call = bytes / (2 * ITERS);
            assert!(
                per_call < field_bytes / 8,
                "fft3_with allocates {per_call} B per call at width {width} \
                 (field is {field_bytes} B)"
            );
        }
        // The transform still computes something sane.
        assert!(f.checksum().norm_sqr().is_finite());

        // DGEMM: warm DgemmWorkspace ⇒ B packs into caller-owned tiles.
        let n = 96;
        let mut rng = NpbRng::new(1_618_033);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut c: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut ws = DgemmWorkspace::new(n);
        let (allocs, bytes) = measure(ITERS, || {
            dgemm_with(n, 1.25, &a, &b, 0.5, &mut c, &mut ws);
        });
        let matrix_bytes = (n * n * std::mem::size_of::<f64>()) as u64;
        if width == 1 {
            assert_eq!(
                allocs, 0,
                "dgemm_with allocated {allocs} times ({bytes} B) across {ITERS} \
                 warm iterations at width 1"
            );
        } else {
            let per_call = bytes / ITERS;
            assert!(
                per_call < matrix_bytes / 8,
                "dgemm_with allocates {per_call} B per call at width {width} \
                 (matrix is {matrix_bytes} B)"
            );
        }
        assert!(c.iter().all(|v| v.is_finite()));

        // HPL trailing update: pure in-place Schur-complement sweep.
        let (rows, cols, k, end) = (64usize, 96usize, 8usize, 24usize);
        let mut tail: Vec<f64> = (0..rows * cols).map(|_| (rng.next_f64() - 0.5) * 1e-3).collect();
        let u12: Vec<f64> = (0..(end - k) * cols).map(|_| (rng.next_f64() - 0.5) * 1e-3).collect();
        let (allocs, bytes) = measure(ITERS, || {
            lu::trailing_update(&mut tail, &u12, cols, k, end);
        });
        if width == 1 {
            assert_eq!(
                allocs, 0,
                "trailing_update allocated {allocs} times ({bytes} B) across {ITERS} \
                 warm iterations at width 1"
            );
        } else {
            let tail_bytes = (rows * cols * std::mem::size_of::<f64>()) as u64;
            let per_call = bytes / ITERS;
            assert!(
                per_call < tail_bytes / 8,
                "trailing_update allocates {per_call} B per call at width {width} \
                 (tail is {tail_bytes} B)"
            );
        }
        assert!(tail.iter().all(|v| v.is_finite()));
    });
}
