//! Property tests of the kernel implementations: solver identities,
//! transform round trips, sort invariants and signature sanity.

use proptest::prelude::*;

use hpceval_kernels::fft::{fft_in_place, Direction, C64};
use hpceval_kernels::hpcc::dgemm::{dgemm, dgemm_naive};
use hpceval_kernels::npb::block5::{block_thomas, vadd, Mat5, Vec5};
use hpceval_kernels::npb::is::{generate_keys, sort_by_ranks};
use hpceval_kernels::npb::sp::penta_solve;
use hpceval_kernels::npb::{Class, Program};
use hpceval_kernels::rng::NpbRng;
use hpceval_kernels::simd::{self, SimdMode};
use hpceval_kernels::tile::TilePlan;
use hpceval_kernels::transpose::{transpose_into, transpose_tiles};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT forward∘inverse is the identity for any power-of-two length.
    #[test]
    fn fft_round_trip(log_n in 1u32..10, seed in 1u64..10_000) {
        let n = 1usize << log_n;
        let mut rng = NpbRng::new(seed);
        let orig: Vec<C64> = (0..n).map(|_| C64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect();
        let mut v = orig.clone();
        fft_in_place(&mut v, Direction::Forward);
        fft_in_place(&mut v, Direction::Inverse);
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    /// Blocked DGEMM equals the naive reference for arbitrary shapes
    /// and scalars.
    #[test]
    fn dgemm_matches_naive(n in 1usize..40, alpha in -2.0..2.0f64, beta in -2.0..2.0f64, seed in 1u64..1000) {
        let mut rng = NpbRng::new(seed);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut fast = c0.clone();
        let mut slow = c0;
        dgemm(n, alpha, &a, &b, beta, &mut fast);
        dgemm_naive(n, alpha, &a, &b, beta, &mut slow);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Counting-sort output is sorted and a permutation, any key set.
    #[test]
    fn is_sort_invariants(log_keys in 4u32..12, log_max in 2u32..10, seed in 1u64..1000) {
        let n = 1usize << log_keys;
        let max_key = 1u32 << log_max;
        let keys = generate_keys(n, max_key, seed);
        let sorted = sort_by_ranks(&keys, max_key);
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut a = keys;
        let mut b = sorted;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Pentadiagonal solve satisfies the original equations.
    #[test]
    fn penta_solve_satisfies_system(n in 3usize..30, seed in 1u64..500) {
        let mut rng = NpbRng::new(seed);
        let (s2, s1, p1, p2) = (-0.06, -0.22, -0.17, -0.05);
        let diag: Vec<f64> = (0..n).map(|_| 2.0 + rng.next_f64()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
        let mut x = b.clone();
        prop_assert!(penta_solve(s2, s1, &diag, p1, p2, &mut x));
        for i in 0..n {
            let mut lhs = diag[i] * x[i];
            if i >= 1 { lhs += s1 * x[i - 1]; }
            if i >= 2 { lhs += s2 * x[i - 2]; }
            if i + 1 < n { lhs += p1 * x[i + 1]; }
            if i + 2 < n { lhs += p2 * x[i + 2]; }
            prop_assert!((lhs - b[i]).abs() < 1e-8, "row {i}: {lhs} vs {}", b[i]);
        }
    }

    /// Block-tridiagonal solve satisfies the original block equations.
    #[test]
    fn block_thomas_satisfies_system(n in 2usize..12, seed in 1u64..300) {
        let mut rng = NpbRng::new(seed);
        let lower: Vec<Mat5> = (0..n).map(|_| Mat5::scaled_identity(-0.15)).collect();
        let upper = lower.clone();
        let diag: Vec<Mat5> = (0..n).map(|_| Mat5::diag_dominant(&mut rng)).collect();
        let b: Vec<Vec5> = (0..n)
            .map(|_| [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()])
            .collect();
        let mut x = b.clone();
        prop_assert!(block_thomas(&lower, &diag, &upper, &mut x));
        for i in 0..n {
            let mut lhs = diag[i].matvec(&x[i]);
            if i > 0 {
                lhs = vadd(&lhs, &lower[i].matvec(&x[i - 1]));
            }
            if i + 1 < n {
                lhs = vadd(&lhs, &upper[i].matvec(&x[i + 1]));
            }
            for c in 0..5 {
                prop_assert!((lhs[c] - b[i][c]).abs() < 1e-8);
            }
        }
    }

    /// The blocked copy-transpose is bitwise identical to the naive
    /// double loop for any shape (tile-edge straddling included).
    #[test]
    fn blocked_transpose_matches_naive(rows in 1usize..80, cols in 1usize..80, seed in 1u64..1000) {
        let mut rng = NpbRng::new(seed);
        let src: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        let mut blocked = vec![0.0; rows * cols];
        transpose_into(&src, rows, cols, &mut blocked);
        let mut naive = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                naive[c * rows + r] = src[r * cols + c];
            }
        }
        prop_assert_eq!(blocked, naive);
    }

    /// The blocked transpose-add (the PTRANS op) is bitwise identical to
    /// the naive accumulating loop.
    #[test]
    fn blocked_transpose_add_matches_naive(n in 1usize..70, seed in 1u64..1000) {
        let mut rng = NpbRng::new(seed);
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let a0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut blocked = a0.clone();
        transpose_tiles(&b, 0, n, &mut blocked, 0, n, n, n, |d, s| *d += s);
        let mut naive = a0;
        for r in 0..n {
            for c in 0..n {
                naive[c * n + r] += b[r * n + c];
            }
        }
        prop_assert_eq!(blocked, naive);
    }

    /// The strided-4-accumulator dot: bitwise identical on the scalar
    /// and AVX2 paths for any length — including non-multiples of the
    /// 4-lane width, where the remainder feeds accumulators `0..len%4`
    /// — and within the documented rounding envelope of the legacy
    /// left-to-right serial dot (each path performs `≤ len` additions
    /// per accumulator, so `Σ|aᵢ·bᵢ|·ε·len` bounds either sum's drift
    /// from the exact value).
    #[test]
    fn strided_dot_bitwise_across_paths_and_near_serial(len in 0usize..600, seed in 1u64..2000) {
        let mut rng = NpbRng::new(seed);
        let a: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let s = simd::dot(SimdMode::Scalar, &a, &b);
        let v = simd::dot(SimdMode::Avx2, &a, &b);
        prop_assert_eq!(s.to_bits(), v.to_bits());
        let serial = simd::dot_serial(&a, &b);
        let magnitude: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let tol = 2.0 * magnitude * f64::EPSILON * (len.max(1) as f64);
        prop_assert!((s - serial).abs() <= tol, "strided {} vs serial {} (tol {})", s, serial, tol);
    }

    /// Every elementwise SIMD span op is bitwise identical on the
    /// scalar and AVX2 paths at any length (vector body + scalar tail
    /// must agree exactly with the pure-scalar loop).
    #[test]
    fn elementwise_span_ops_bitwise_across_paths(len in 0usize..130, seed in 1u64..2000, s in -3.0..3.0f64) {
        let mut rng = NpbRng::new(seed);
        let a: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let c: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let run = |m: SimdMode| {
            let mut outs = Vec::new();
            let mut d = c.clone();
            simd::scale(m, &mut d, &a, s);
            outs.extend_from_slice(&d);
            simd::add(m, &mut d, &a, &b);
            outs.extend_from_slice(&d);
            simd::triad(m, &mut d, &a, &b, s);
            outs.extend_from_slice(&d);
            let mut y = c.clone();
            simd::axpy(m, &mut y, &a, s);
            outs.extend_from_slice(&y);
            let mut y = c.clone();
            simd::xpby(m, &mut y, &a, s);
            outs.extend_from_slice(&y);
            simd::scale_div(m, &mut d, &a, s.abs() + 0.5);
            outs.extend_from_slice(&d);
            outs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
        };
        prop_assert_eq!(run(SimdMode::Scalar), run(SimdMode::Avx2));
    }

    /// The FMA tier's tolerance contract (simd.rs module docs): for
    /// every span op, `|fma(x) − scalar(x)| ≤ ops·ε·scale(x)` with
    /// `ops` the rounding count along the longest dependence chain and
    /// `scale` the sum of absolute terms. The tier is also a pure
    /// function of its operands, so repeated calls are bitwise stable.
    #[test]
    fn fma_tier_within_documented_tolerance(len in 0usize..300, seed in 1u64..2000, s in -3.0..3.0f64) {
        if simd::fma_available() {
            let mut rng = NpbRng::new(seed);
            let a: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
            let b: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
            let c: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
            // axpy: one fused rounding vs two scalar roundings per lane.
            let mut yf = c.clone();
            simd::axpy(SimdMode::Fma, &mut yf, &a, s);
            let mut yf2 = c.clone();
            simd::axpy(SimdMode::Fma, &mut yf2, &a, s);
            prop_assert!(
                yf.iter().zip(&yf2).all(|(x, y)| x.to_bits() == y.to_bits()),
                "fma tier must be deterministic call-to-call"
            );
            let mut ys = c.clone();
            simd::axpy(SimdMode::Scalar, &mut ys, &a, s);
            for i in 0..len {
                let scale = c[i].abs() + (s * a[i]).abs();
                prop_assert!(
                    (yf[i] - ys[i]).abs() <= 2.0 * f64::EPSILON * scale,
                    "axpy[{i}]: {} vs {}", yf[i], ys[i]
                );
            }
            // triad (`dst = a + s·b`): same envelope.
            let mut tf = c.clone();
            simd::triad(SimdMode::Fma, &mut tf, &a, &b, s);
            let mut ts = c.clone();
            simd::triad(SimdMode::Scalar, &mut ts, &a, &b, s);
            for i in 0..len {
                let scale = a[i].abs() + (s * b[i]).abs();
                prop_assert!(
                    (tf[i] - ts[i]).abs() <= 2.0 * f64::EPSILON * scale,
                    "triad[{i}]: {} vs {}", tf[i], ts[i]
                );
            }
            // dot: ≤ 2·len+2 roundings differ along either chain.
            let df = simd::dot(SimdMode::Fma, &a, &b);
            let ds = simd::dot(SimdMode::Scalar, &a, &b);
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let tol = (2 * len + 2) as f64 * f64::EPSILON * mag;
            prop_assert!((df - ds).abs() <= tol, "dot {df} vs {ds} (tol {tol})");
        }
    }

    /// The FMA register tile tracks the scalar micro-kernel within the
    /// `(2·kw+2)·ε·scale` envelope for arbitrary tile shapes (column
    /// tails of every width class included).
    #[test]
    fn fma_tile_within_documented_tolerance(kw in 1usize..70, jw in 1usize..70, seed in 1u64..1000, alpha in -2.0..2.0f64) {
        if simd::fma_available() {
            let mut rng = NpbRng::new(seed);
            let a: Vec<f64> = (0..kw).map(|_| rng.next_f64() - 0.5).collect();
            let bt: Vec<f64> = (0..kw * jw).map(|_| rng.next_f64() - 0.5).collect();
            let c0: Vec<f64> = (0..jw).map(|_| rng.next_f64() - 0.5).collect();
            let mut cf = c0.clone();
            simd::tile_row_update(SimdMode::Fma, &mut cf, &bt, &a, alpha);
            let mut cs = c0.clone();
            simd::tile_row_update(SimdMode::Scalar, &mut cs, &bt, &a, alpha);
            for j in 0..jw {
                let scale: f64 = c0[j].abs()
                    + (0..kw).map(|k| (alpha * a[k] * bt[k * jw + j]).abs()).sum::<f64>();
                let tol = (2 * kw + 2) as f64 * f64::EPSILON * scale;
                prop_assert!(
                    (cf[j] - cs[j]).abs() <= tol,
                    "tile[{j}] (kw {kw}, jw {jw}): {} vs {} (tol {tol})", cf[j], cs[j]
                );
            }
        }
    }

    /// The tile autotuner's closed form is total, deterministic and
    /// cache-feasible for arbitrary geometries: granularities hold,
    /// the packed B tile fits its 5/8-of-L1d budget (the tile must be
    /// L1-resident — the micro-kernel re-streams it per C row), the A
    /// panel an eighth of L2 (except where the 8-row clamp floor
    /// overrides a degenerate tiny-L2/huge-L1 geometry), and one A row
    /// slice plus one C row fit a quarter of L1d (all after the
    /// documented 4 KiB / 16 KiB input floors).
    #[test]
    fn tile_plans_deterministic_and_feasible(l1 in 1u64..1_000_000, l2 in 1u64..100_000_000) {
        let p = TilePlan::for_geometry(l1, l2);
        prop_assert_eq!(p, TilePlan::for_geometry(l1, l2));
        prop_assert_eq!(p.kc % 4, 0);
        prop_assert_eq!(p.nc % 8, 0);
        prop_assert_eq!(p.mc % 4, 0);
        prop_assert!(p.mc >= 8 && p.mc <= 64, "mc {}", p.mc);
        prop_assert!(p.kc >= 4 && p.kc <= 256, "kc {}", p.kc);
        prop_assert!(p.nc >= 8 && p.nc <= 512, "nc {}", p.nc);
        let l1 = l1.max(4 * 1024);
        let l2 = l2.max(16 * 1024);
        prop_assert!((p.kc * p.nc * 8) as u64 <= 5 * l1 / 8, "B tile vs 5·L1/8");
        prop_assert!(p.mc == 8 || (p.mc * p.kc * 8) as u64 <= l2 / 8, "A panel vs L2/8");
        prop_assert!(((p.kc + p.nc) * 8) as u64 <= l1 / 4, "row slices vs L1/4");
    }

    /// Every program × class yields a physically sane signature.
    #[test]
    fn signatures_are_sane(pi in 0usize..8, ci in 0usize..3) {
        let prog = Program::ALL[pi];
        let class = Class::ALL[ci];
        let sig = prog.benchmark(class).signature();
        prop_assert!(sig.reported_flops > 0.0);
        prop_assert!(sig.work_ops >= sig.reported_flops * 0.99);
        prop_assert!(sig.footprint_at(1) > 0.0);
        prop_assert!(sig.comm_fraction >= 0.0 && sig.comm_fraction < 0.5);
        prop_assert!(sig.cpu_intensity > 0.0 && sig.cpu_intensity <= 1.0);
        prop_assert!(sig.locality.is_distribution(1e-6));
    }
}
