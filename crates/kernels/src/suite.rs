//! The common benchmark interface.
//!
//! Every program the paper runs — HPL, the NPB programs, the HPCC
//! programs, the SSJ workload — exposes the same two capabilities: a
//! closed-form [`WorkloadSignature`] for its published problem size, and
//! a *verifiable scaled execution* proving the algorithm is really
//! implemented. The evaluation layers (`hpceval-core`) only consume this
//! trait, so adding a benchmark is one `impl` away.

use hpceval_machine::workload::WorkloadSignature;

/// Restriction a program places on the number of MPI processes.
///
/// This is what makes EP special in the paper (§IV-D: "the number of
/// cores used in the test should be configurable, and this requirement is
/// unable to be met except by EP").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcConstraint {
    /// Any process count ≥ 1 (EP only).
    Any,
    /// Powers of two: 1, 2, 4, 8, … (CG, FT, IS, LU, MG).
    PowerOfTwo,
    /// Perfect squares: 1, 4, 9, 16, 25, 36, … (BT, SP).
    Square,
}

impl ProcConstraint {
    /// Whether `p` processes satisfy the constraint.
    pub fn allows(self, p: u32) -> bool {
        if p == 0 {
            return false;
        }
        match self {
            ProcConstraint::Any => true,
            ProcConstraint::PowerOfTwo => p.is_power_of_two(),
            ProcConstraint::Square => {
                let r = (f64::from(p)).sqrt().round() as u32;
                r * r == p
            }
        }
    }

    /// All allowed process counts up to and including `max`.
    pub fn allowed_up_to(self, max: u32) -> Vec<u32> {
        (1..=max).filter(|&p| self.allows(p)).collect()
    }

    /// The largest allowed process count ≤ `max` (None if max == 0).
    pub fn largest_up_to(self, max: u32) -> Option<u32> {
        (1..=max).rev().find(|&p| self.allows(p))
    }
}

/// Result of running a scaled-down verification instance.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// Did the built-in verification test pass?
    pub passed: bool,
    /// Human-readable verification detail (residual, checksum, …).
    pub detail: String,
    /// Useful operations actually executed by the scaled run.
    pub useful_ops: f64,
}

impl VerifyOutcome {
    /// A passing outcome.
    pub fn pass(detail: impl Into<String>, useful_ops: f64) -> Self {
        Self { passed: true, detail: detail.into(), useful_ops }
    }

    /// A failing outcome.
    pub fn fail(detail: impl Into<String>) -> Self {
        Self { passed: false, detail: detail.into(), useful_ops: 0.0 }
    }
}

/// A benchmark program as the evaluation methodology sees it.
pub trait Benchmark: Send + Sync {
    /// Short identifier, e.g. "ep", "hpl", "stream".
    fn id(&self) -> &'static str;

    /// Display name including the problem class, e.g. "ep.C".
    fn display_name(&self) -> String;

    /// The resource signature of the *published* problem size.
    fn signature(&self) -> WorkloadSignature;

    /// Process-count restriction.
    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    /// Execute a scaled-down instance with `threads` workers and verify
    /// the result (residual/checksum/sortedness as appropriate).
    fn verify(&self, threads: usize) -> VerifyOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_allows_everything_positive() {
        assert!(ProcConstraint::Any.allows(1));
        assert!(ProcConstraint::Any.allows(39));
        assert!(!ProcConstraint::Any.allows(0));
    }

    #[test]
    fn power_of_two_constraint() {
        let c = ProcConstraint::PowerOfTwo;
        assert_eq!(c.allowed_up_to(40), vec![1, 2, 4, 8, 16, 32]);
        assert!(!c.allows(12));
    }

    #[test]
    fn square_constraint_matches_paper_fig12_proc_lists() {
        // Fig 12 runs bt.B and sp.B at 1, 4, 9, 16, 25, 36 processes.
        let c = ProcConstraint::Square;
        assert_eq!(c.allowed_up_to(40), vec![1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn largest_allowed() {
        assert_eq!(ProcConstraint::Square.largest_up_to(40), Some(36));
        assert_eq!(ProcConstraint::PowerOfTwo.largest_up_to(40), Some(32));
        assert_eq!(ProcConstraint::Any.largest_up_to(40), Some(40));
        assert_eq!(ProcConstraint::Any.largest_up_to(0), None);
    }
}
