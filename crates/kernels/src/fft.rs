//! Complex fast Fourier transform shared by NPB-FT and HPCC-FFT.
//!
//! An iterative, in-place, radix-2 Cooley–Tukey transform over
//! `(f64, f64)` pairs, with forward/inverse directions and a
//! rayon-parallel batched form for transforming many independent lines of
//! a 3-D array at once (how NPB-FT applies its 1-D transforms
//! dimension-by-dimension).

use rayon::prelude::*;

use crate::simd;

/// A complex number as a plain pair (re, im); `#[repr(C)]` so a slice
/// of them is guaranteed to be contiguous `(re, im)` `f64` pairs — the
/// layout the SIMD butterfly loads two complexes at a time from.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

#[allow(clippy::should_implement_trait)] // mul/add/sub by value, no operator sugar needed
impl C64 {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex multiply.
    #[inline]
    pub fn mul(self, o: Self) -> Self {
        Self::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    /// Complex add.
    #[inline]
    pub fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtract.
    #[inline]
    pub fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward transform (negative exponent).
    Forward,
    /// Inverse transform (positive exponent, 1/n normalized).
    Inverse,
}

/// Precomputed twiddle factors for radix-2 FFTs of one length.
///
/// Deriving `w^k` per butterfly stage costs a `cos`/`sin` (or an
/// error-accumulating incremental multiply) on every line of a batched
/// transform. The table stores the forward factor for every stage
/// up front — stage `len` needs `len/2` entries `exp(-2πi·k/len)`, for
/// `n − 1` values in total — and the inverse direction is the exact
/// conjugate, so one table serves both directions and any number of
/// lines, bitwise deterministically.
#[derive(Debug, Clone)]
pub struct TwiddleTable {
    n: usize,
    /// Stage-major: stage `len` (`half = len/2`) occupies
    /// `fwd[half − 1 .. 2·half − 1]`, entry `k` being `exp(-2πi·k/len)`.
    fwd: Vec<C64>,
}

impl TwiddleTable {
    /// Build the table for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let mut fwd = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            for k in 0..len / 2 {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                fwd.push(C64::new(ang.cos(), ang.sin()));
            }
            len <<= 1;
        }
        Self { n, fwd }
    }

    /// The transform length this table serves.
    pub fn line_len(&self) -> usize {
        self.n
    }

    /// Forward twiddles of the stage with `half = len/2` butterflies.
    #[inline]
    fn stage(&self, half: usize) -> &[C64] {
        &self.fwd[half - 1..2 * half - 1]
    }
}

/// In-place radix-2 FFT of `data` (length must be a power of two).
///
/// The inverse direction applies the 1/n normalization, so
/// `fft(fft(x, Forward), Inverse) == x` up to rounding.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [C64], dir: Direction) {
    let table = TwiddleTable::new(data.len());
    fft_in_place_with(&table, data, dir);
}

/// [`fft_in_place`] against a caller-owned [`TwiddleTable`]; performs no
/// heap allocation, so a hot loop can amortize the table across calls.
///
/// # Panics
/// Panics if `data.len() != table.line_len()`.
pub fn fft_in_place_with(table: &TwiddleTable, data: &mut [C64], dir: Direction) {
    fft_line(simd::mode(), table, data, dir);
}

/// The transform of a single line with the SIMD path already resolved.
/// Batched callers resolve the mode once on their own thread and pass it
/// in, since worker threads must not consult the thread-local override.
fn fft_line(m: simd::SimdMode, table: &TwiddleTable, data: &mut [C64], dir: Direction) {
    let n = data.len();
    assert_eq!(n, table.n, "data length must match the twiddle table");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies; the inverse twiddle is the conjugate of the stored
    // forward factor (a sign flip — exact, so direction symmetry holds
    // bitwise). Each stage splits every chunk into its lo/hi halves and
    // hands them to the SIMD complex-multiply-accumulate micro-kernel.
    let conj = dir == Direction::Inverse;
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let tw = table.stage(half);
        for chunk in data.chunks_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            simd::butterfly(m, lo, hi, tw, conj);
        }
        len <<= 1;
    }
    if dir == Direction::Inverse {
        let inv = 1.0 / n as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// Transform each contiguous `line_len` chunk of `data` independently and
/// in parallel (the batched 1-D pass of a 3-D FFT). The twiddle table is
/// computed once and shared by every line.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `line_len`.
pub fn fft_batched(data: &mut [C64], line_len: usize, dir: Direction) {
    let table = TwiddleTable::new(line_len);
    fft_batched_with(&table, data, dir);
}

/// [`fft_batched`] against a caller-owned [`TwiddleTable`] (line length
/// is the table's). Each line is a disjoint chunk transformed by the
/// same serial routine, so the result is bitwise identical at any pool
/// width.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `table.line_len()`.
pub fn fft_batched_with(table: &TwiddleTable, data: &mut [C64], dir: Direction) {
    assert_eq!(data.len() % table.n.max(1), 0, "data must be whole lines");
    let m = simd::mode();
    data.par_chunks_mut(table.n.max(1))
        .for_each(|line| fft_line(m, table, line, dir));
}

/// Number of real floating point operations for one radix-2 FFT of
/// length `n`: the conventional `5·n·log2(n)` count.
pub fn fft_flops(n: usize) -> f64 {
    let n = n as f64;
    5.0 * n * n.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn impulse(n: usize) -> Vec<C64> {
        let mut v = vec![C64::default(); n];
        v[0] = C64::new(1.0, 0.0);
        v
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut v = impulse(16);
        fft_in_place(&mut v, Direction::Forward);
        for c in &v {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let mut rng = crate::rng::NpbRng::default_seed();
        let orig: Vec<C64> =
            (0..n).map(|_| C64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect();
        let mut v = orig.clone();
        fft_in_place(&mut v, Direction::Forward);
        fft_in_place(&mut v, Direction::Inverse);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 512;
        let mut rng = crate::rng::NpbRng::new(12345);
        let orig: Vec<C64> =
            (0..n).map(|_| C64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect();
        let mut v = orig.clone();
        fft_in_place(&mut v, Direction::Forward);
        let time_energy: f64 = orig.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = v.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn matches_naive_dft_on_small_input() {
        let n = 8;
        let input: Vec<C64> = (0..n).map(|i| C64::new(i as f64, (i * i) as f64 * 0.1)).collect();
        let mut fast = input.clone();
        fft_in_place(&mut fast, Direction::Forward);
        for k in 0..n {
            let mut acc = C64::default();
            for (j, x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc.add(x.mul(C64::new(ang.cos(), ang.sin())));
            }
            assert!((acc.re - fast[k].re).abs() < 1e-9, "k={k}");
            assert!((acc.im - fast[k].im).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn batched_equals_per_line() {
        let line = 64;
        let lines = 8;
        let mut rng = crate::rng::NpbRng::new(777);
        let data: Vec<C64> =
            (0..line * lines).map(|_| C64::new(rng.next_f64(), rng.next_f64())).collect();
        let mut batched = data.clone();
        fft_batched(&mut batched, line, Direction::Forward);
        let mut manual = data;
        for l in manual.chunks_mut(line) {
            fft_in_place(l, Direction::Forward);
        }
        assert_eq!(batched, manual);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut v = vec![C64::default(); 12];
        fft_in_place(&mut v, Direction::Forward);
    }

    #[test]
    fn twiddle_table_layout() {
        let t = TwiddleTable::new(8);
        assert_eq!(t.line_len(), 8);
        assert_eq!(t.fwd.len(), 7); // n - 1 entries across all stages
                                    // The len=2 stage's single factor is exp(0) = 1.
        assert_eq!(t.stage(1), &[C64::new(1.0, 0.0)]);
        // The len=4 stage's k=1 factor is exp(-iπ/2) = -i.
        let s4 = t.stage(2);
        assert!(s4[1].re.abs() < 1e-15 && (s4[1].im + 1.0).abs() < 1e-15);
    }

    #[test]
    fn shared_table_matches_fresh_table_per_line() {
        let line = 32;
        let lines = 5;
        let mut rng = crate::rng::NpbRng::new(99);
        let data: Vec<C64> =
            (0..line * lines).map(|_| C64::new(rng.next_f64(), rng.next_f64())).collect();
        let table = TwiddleTable::new(line);
        let mut shared = data.clone();
        fft_batched_with(&table, &mut shared, Direction::Forward);
        let mut fresh = data;
        for l in fresh.chunks_mut(line) {
            fft_in_place(l, Direction::Forward);
        }
        assert_eq!(shared, fresh);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(fft_flops(1024), 5.0 * 1024.0 * 10.0);
    }
}
