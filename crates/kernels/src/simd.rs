//! Portable SIMD micro-kernels with a bitwise scalar↔vector
//! determinism contract and an opt-in fused tolerance tier.
//!
//! Every flop-dominated hot loop in this crate (DGEMM's packed-B tile
//! kernel, the HPL trailing update, STREAM's four ops, CG's axpy and
//! fixed-chunk dots, MG's stencil sweeps, the FFT butterfly) funnels
//! through the span operations in this module. The implementations
//! form two tiers:
//!
//! **Bitwise tier** — `scalar` (the *reference semantics*), `avx2`
//! (4-lane f64), `avx512` (8-lane f64) and `neon` (2-lane f64 on
//! aarch64). Every member reproduces the scalar loop bit for bit.
//!
//! **Tolerance tier** — `fma`: AVX2+FMA with fused multiply-adds and
//! wider (8-accumulator) register tiles. Faster, *more* accurate
//! per-element (one rounding instead of two), but **not** bitwise
//! equal to scalar. Never selected by default; see the contract below.
//!
//! # The determinism contract (bitwise tier)
//!
//! The bitwise paths are **identical by construction**, so the
//! cross-width determinism guarantee of the executor (DESIGN.md §10)
//! extends across instruction sets:
//!
//! * Element-wise operations use separate per-lane multiplies and adds
//!   in the exact association order of the scalar loop — never FMA
//!   contraction, whose single rounding would diverge from the two
//!   roundings of `mul` + `add`. An IEEE-754 lane op equals the scalar
//!   op on the same operands, so any vector/tail split point yields
//!   the same bits.
//! * Reductions ([`dot`]) commit to a **fixed 4-accumulator strided
//!   layout**: accumulator `j` sums the products of elements with
//!   index ≡ j (mod 4), the remainder feeds accumulators `0..len%4`,
//!   and the four partials combine as `(acc0 + acc1) + (acc2 + acc3)`.
//!   The scalar path runs the identical recurrence with four scalar
//!   accumulators, so vector lane `j` and scalar accumulator `j` see
//!   the same operands in the same order. The AVX-512 path keeps the
//!   256-bit reduction (widening it would change the recurrence); the
//!   NEON path splits the four accumulators across two 128-bit pairs.
//!
//! # The tolerance contract (fma tier)
//!
//! The `fma` tier never claims bitwise parity. Its documented bound,
//! verified by the property suite (`tests/proptests.rs`), is
//! componentwise
//!
//! ```text
//! |fma(x) − scalar(x)| ≤ ops · ε · scale(x)
//! ```
//!
//! where `ε = f64::EPSILON`, `ops` is the number of roundings along
//! the element's accumulation chain (2 for a single `a + s·b` span op,
//! `2·kw + 2` for a `kw`-deep tile-row accumulation, `2·len + 2` for a
//! dot), and `scale(x)` is the sum of absolute values of every term
//! entering that element (including its initial value). Each fused op
//! replaces two roundings by one, so the fma result is at least as
//! close to the exact value; the bound caps the *divergence between
//! the two paths*, which is at most the sum of both paths' errors.
//! The fma tier is still width-invariant — every span op is a pure
//! function of its operand values — so cross-width determinism holds
//! under an `HPCEVAL_SIMD=fma` pin; only cross-*tier* bitwise equality
//! is given up.
//!
//! # Mode resolution
//!
//! `HPCEVAL_SIMD={auto,scalar,avx2,fma,avx512,neon}` pins the path
//! process-wide (read once, overriding everything — mirroring
//! `HPCEVAL_THREADS`). Otherwise a thread-local [`with_mode`] override
//! applies, else `auto`: AVX2 when the CPU reports it, NEON on
//! aarch64, scalar elsewhere — `auto` **never** selects the tolerance
//! tier or AVX-512, so default behavior is bitwise-unchanged from the
//! two-path layer. Requesting a tier the hardware lacks degrades down
//! the ladder (`fma → avx2 → scalar`, `avx512 → avx2 → scalar`,
//! `neon → scalar`) rather than faulting. Kernels resolve [`mode`]
//! **once at their public entry point, on the caller's thread**, and
//! capture the resolved mode into their parallel closures — worker
//! threads never consult the thread-local, so [`with_mode`] reliably
//! scopes the whole kernel.
// The one place in the kernels crate allowed to use `unsafe`: every
// unsafe block wraps `core::arch` intrinsics that are only reached
// after the matching `is_x86_feature_detected!` (or, for NEON, the
// aarch64 baseline ISA guarantee) has confirmed the ISA.
#![allow(unsafe_code)]

use std::sync::OnceLock;

use crate::fft::C64;

/// Which micro-kernel implementation spans are processed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Plain Rust loops (the reference semantics).
    Scalar,
    /// 4-lane `f64` AVX2 intrinsics (bitwise equal to scalar).
    Avx2,
    /// AVX2+FMA fused tier (tolerance-verified, never bitwise, opt-in).
    Fma,
    /// 8-lane `f64` AVX-512F intrinsics (bitwise equal to scalar).
    Avx512,
    /// 2-lane `f64` NEON intrinsics on aarch64 (bitwise equal to
    /// scalar).
    Neon,
}

impl SimdMode {
    /// Stable lowercase label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            SimdMode::Scalar => "scalar",
            SimdMode::Avx2 => "avx2",
            SimdMode::Fma => "fma",
            SimdMode::Avx512 => "avx512",
            SimdMode::Neon => "neon",
        }
    }

    /// Whether this mode belongs to the bitwise determinism contract
    /// (everything except the fused tolerance tier).
    pub fn bitwise(self) -> bool {
        !matches!(self, SimdMode::Fma)
    }
}

/// Whether this process can execute the AVX2 path.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this process can execute the fused AVX2+FMA tier.
pub fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this process can execute the AVX-512 path. The AVX2 check
/// rides along because the 512-bit module keeps the 256-bit reduction
/// of the contract (every real AVX-512F CPU also reports AVX2).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether this process can execute the NEON path. NEON with f64
/// arithmetic is part of the aarch64 baseline ISA, so this is a
/// compile-time fact rather than a runtime probe.
pub fn neon_available() -> bool {
    cfg!(target_arch = "aarch64")
}

/// The `HPCEVAL_SIMD` pin, read once. `auto`, unset, or unparsable
/// values resolve to `None` (auto-detect), matching the forgiving
/// `HPCEVAL_THREADS` parse.
fn env_mode() -> Option<SimdMode> {
    static ENV: OnceLock<Option<SimdMode>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("HPCEVAL_SIMD").ok()?.trim() {
        "scalar" => Some(SimdMode::Scalar),
        "avx2" => Some(SimdMode::Avx2),
        "fma" => Some(SimdMode::Fma),
        "avx512" => Some(SimdMode::Avx512),
        "neon" => Some(SimdMode::Neon),
        _ => None,
    })
}

thread_local! {
    /// Mode override installed by [`with_mode`] on the calling thread.
    static OVERRIDE: std::cell::Cell<Option<SimdMode>> = const { std::cell::Cell::new(None) };
}

/// Run `f` with the given mode requested on this thread (the
/// determinism suite uses this to compare paths in one process). The
/// `HPCEVAL_SIMD` pin still wins, exactly as `HPCEVAL_THREADS`
/// overrides explicit pool sizes; an `Avx2` request without AVX2
/// hardware degrades to scalar.
pub fn with_mode<R>(mode: SimdMode, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|c| c.replace(Some(mode)));
    let out = f();
    OVERRIDE.with(|c| c.set(prev));
    out
}

/// The resolved mode a kernel entered right now would use:
/// `HPCEVAL_SIMD` pin, else the [`with_mode`] override, else the best
/// *bitwise* path the hardware offers (AVX2 on x86-64, NEON on
/// aarch64, scalar elsewhere). A request the hardware cannot honor
/// degrades down the ladder — `fma → avx2 → scalar`,
/// `avx512 → avx2 → scalar`, `neon → scalar` — and never returns a
/// mode whose intrinsics could fault.
pub fn mode() -> SimdMode {
    let requested = env_mode().or_else(|| OVERRIDE.with(std::cell::Cell::get));
    let best_bitwise_x86 = || {
        if avx2_available() {
            SimdMode::Avx2
        } else {
            SimdMode::Scalar
        }
    };
    match requested {
        Some(SimdMode::Scalar) => SimdMode::Scalar,
        Some(SimdMode::Fma) => {
            if fma_available() {
                SimdMode::Fma
            } else {
                best_bitwise_x86()
            }
        }
        Some(SimdMode::Avx512) => {
            if avx512_available() {
                SimdMode::Avx512
            } else {
                best_bitwise_x86()
            }
        }
        Some(SimdMode::Neon) => {
            if neon_available() {
                SimdMode::Neon
            } else {
                SimdMode::Scalar
            }
        }
        Some(SimdMode::Avx2) => best_bitwise_x86(),
        None => {
            if avx2_available() {
                SimdMode::Avx2
            } else if neon_available() {
                SimdMode::Neon
            } else {
                SimdMode::Scalar
            }
        }
    }
}

/// Dispatch one span operation across the five tiers: the scalar body,
/// or a vector body guarded by a final (cached, branch-predicted)
/// availability check so a hand-constructed vector mode value can
/// never reach intrinsics on hardware without them. Vector arms that
/// fail the check degrade exactly like [`mode`]'s resolution ladder.
/// Ops with no fusable multiply-add pass their `avx2` body for the
/// `fma:` arm — the tiers share those bits by definition.
macro_rules! dispatch {
    ($m:expr,
     scalar: $scalar:expr,
     avx2: $avx2:expr,
     fma: $fma:expr,
     avx512: $avx512:expr,
     neon: $neon:expr) => {
        match $m {
            SimdMode::Scalar => $scalar,
            SimdMode::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx2_available() {
                        // SAFETY: AVX2 support was just confirmed.
                        unsafe { $avx2 }
                    } else {
                        $scalar
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    $scalar
                }
            }
            SimdMode::Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    if fma_available() {
                        // SAFETY: AVX2+FMA support was just confirmed.
                        unsafe { $fma }
                    } else if avx2_available() {
                        // SAFETY: AVX2 support was just confirmed.
                        unsafe { $avx2 }
                    } else {
                        $scalar
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    $scalar
                }
            }
            SimdMode::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    if avx512_available() {
                        // SAFETY: AVX-512F (and AVX2) support was just
                        // confirmed.
                        unsafe { $avx512 }
                    } else if avx2_available() {
                        // SAFETY: AVX2 support was just confirmed.
                        unsafe { $avx2 }
                    } else {
                        $scalar
                    }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    $scalar
                }
            }
            SimdMode::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    // SAFETY: NEON is part of the aarch64 baseline ISA.
                    unsafe { $neon }
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    $scalar
                }
            }
        }
    };
}

// ---------------------------------------------------------------------
// Element-wise spans (STREAM, CG, MG smooth, DGEMM beta scale)
// ---------------------------------------------------------------------

/// `dst[i] = s · src[i]` (STREAM scale).
pub fn scale(m: SimdMode, dst: &mut [f64], src: &[f64], s: f64) {
    assert_eq!(dst.len(), src.len());
    dispatch!(
        m,
        scalar: scalar::scale(dst, src, s),
        avx2: avx2::scale(dst, src, s),
        fma: avx2::scale(dst, src, s),
        avx512: avx512::scale(dst, src, s),
        neon: neon::scale(dst, src, s)
    );
}

/// `dst[i] *= s` in place (DGEMM's beta pass).
pub fn scale_in_place(m: SimdMode, dst: &mut [f64], s: f64) {
    dispatch!(
        m,
        scalar: scalar::scale_in_place(dst, s),
        avx2: avx2::scale_in_place(dst, s),
        fma: avx2::scale_in_place(dst, s),
        avx512: avx512::scale_in_place(dst, s),
        neon: neon::scale_in_place(dst, s)
    );
}

/// `dst[i] = a[i] + b[i]` (STREAM add).
pub fn add(m: SimdMode, dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    dispatch!(
        m,
        scalar: scalar::add(dst, a, b),
        avx2: avx2::add(dst, a, b),
        fma: avx2::add(dst, a, b),
        avx512: avx512::add(dst, a, b),
        neon: neon::add(dst, a, b)
    );
}

/// `dst[i] = a[i] + s · b[i]` (STREAM triad).
pub fn triad(m: SimdMode, dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    dispatch!(
        m,
        scalar: scalar::triad(dst, a, b, s),
        avx2: avx2::triad(dst, a, b, s),
        fma: fma::triad(dst, a, b, s),
        avx512: avx512::triad(dst, a, b, s),
        neon: neon::triad(dst, a, b, s)
    );
}

/// `y[i] += a · x[i]` — the BLAS axpy (CG updates, MG smoothing, and,
/// with a negated coefficient, every `y -= a·x` form: IEEE negation
/// and multiplication commute exactly, so `y + (−a)·x` is bitwise
/// `y − a·x`).
pub fn axpy(m: SimdMode, y: &mut [f64], x: &[f64], a: f64) {
    assert_eq!(y.len(), x.len());
    dispatch!(
        m,
        scalar: scalar::axpy(y, x, a),
        avx2: avx2::axpy(y, x, a),
        fma: fma::axpy(y, x, a),
        avx512: avx512::axpy(y, x, a),
        neon: neon::axpy(y, x, a)
    );
}

/// `y[i] = x[i] + b · y[i]` (CG's search-direction update).
pub fn xpby(m: SimdMode, y: &mut [f64], x: &[f64], b: f64) {
    assert_eq!(y.len(), x.len());
    dispatch!(
        m,
        scalar: scalar::xpby(y, x, b),
        avx2: avx2::xpby(y, x, b),
        fma: fma::xpby(y, x, b),
        avx512: avx512::xpby(y, x, b),
        neon: neon::xpby(y, x, b)
    );
}

/// `dst[i] = src[i] / d` (CG's renormalization; lane division is
/// exactly rounded, so the paths agree bitwise).
pub fn scale_div(m: SimdMode, dst: &mut [f64], src: &[f64], d: f64) {
    assert_eq!(dst.len(), src.len());
    dispatch!(
        m,
        scalar: scalar::scale_div(dst, src, d),
        avx2: avx2::scale_div(dst, src, d),
        fma: avx2::scale_div(dst, src, d),
        avx512: avx512::scale_div(dst, src, d),
        neon: neon::scale_div(dst, src, d)
    );
}

// ---------------------------------------------------------------------
// Reductions (CG dots)
// ---------------------------------------------------------------------

/// Strided-4-accumulator dot product — the reduction layout of the
/// determinism contract (see the module docs). Both paths produce the
/// same bits for the same input; across *different* span lengths the
/// value legitimately differs from a serial sum by accumulated
/// rounding, which [`dot_serial`] exists to bound in tests.
pub fn dot(m: SimdMode, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    dispatch!(
        m,
        scalar: scalar::dot(a, b),
        avx2: avx2::dot(a, b),
        fma: fma::dot(a, b),
        // The strided-4 contract layout is 256-bit shaped; widening
        // the reduction would change the recurrence, so the AVX-512
        // tier keeps the AVX2 dot.
        avx512: avx2::dot(a, b),
        neon: neon::dot(a, b)
    )
}

/// The legacy left-to-right serial dot (`Σ aᵢ·bᵢ` in index order) —
/// the pre-SIMD reference the property suite compares [`dot`] against
/// within a rounding tolerance.
pub fn dot_serial(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

// ---------------------------------------------------------------------
// DGEMM / LU fused update spans
// ---------------------------------------------------------------------

/// `c[i] += a0·b0[i] + a1·b1[i] + a2·b2[i] + a3·b3[i]` — DGEMM's
/// 4×-unrolled register-tile update (broadcast-A, four packed B rows
/// streaming per pass), left-associated exactly like the scalar loop.
#[allow(clippy::too_many_arguments)] // mirrors the 4x-unrolled kernel shape
pub fn update4(
    m: SimdMode,
    c: &mut [f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
    a0: f64,
    a1: f64,
    a2: f64,
    a3: f64,
) {
    assert_eq!(c.len(), b0.len());
    assert_eq!(c.len(), b1.len());
    assert_eq!(c.len(), b2.len());
    assert_eq!(c.len(), b3.len());
    dispatch!(
        m,
        scalar: scalar::update4(c, b0, b1, b2, b3, a0, a1, a2, a3),
        avx2: avx2::update4(c, b0, b1, b2, b3, a0, a1, a2, a3),
        fma: fma::update4(c, b0, b1, b2, b3, a0, a1, a2, a3),
        avx512: avx512::update4(c, b0, b1, b2, b3, a0, a1, a2, a3),
        neon: neon::update4(c, b0, b1, b2, b3, a0, a1, a2, a3)
    );
}

/// One C row against a packed `kw×jw` B tile:
/// `c[j] += Σ_k (alpha·a[k])·bt[k·jw + j]`, accumulated per element as
/// a sequence of [`update4`] k-quads followed by [`axpy`] singles for
/// `kw mod 4` — bitwise, the fused kernel IS that call sequence. The
/// AVX2 path exploits the fusion: the C row stays in registers across
/// the entire k loop (two independent accumulator chains over eight
/// columns at a time) instead of being re-loaded and re-stored per
/// quad, which is where DGEMM's headroom over the scalar path lives.
pub fn tile_row_update(m: SimdMode, c: &mut [f64], bt: &[f64], a: &[f64], alpha: f64) {
    assert_eq!(bt.len(), a.len() * c.len(), "bt must be a packed a.len()×c.len() tile");
    dispatch!(
        m,
        scalar: scalar::tile_row_update(c, bt, a, alpha),
        avx2: avx2::tile_row_update(c, bt, a, alpha),
        fma: fma::tile_row_update(c, bt, a, alpha),
        avx512: avx512::tile_row_update(c, bt, a, alpha),
        neon: neon::tile_row_update(c, bt, a, alpha)
    );
}

/// `row[i] -= m0·u0[i] + m1·u1[i]` — the HPL trailing update's fused
/// two-U-row pass.
pub fn sub2(m: SimdMode, row: &mut [f64], u0: &[f64], u1: &[f64], m0: f64, m1: f64) {
    assert_eq!(row.len(), u0.len());
    assert_eq!(row.len(), u1.len());
    dispatch!(
        m,
        scalar: scalar::sub2(row, u0, u1, m0, m1),
        avx2: avx2::sub2(row, u0, u1, m0, m1),
        fma: fma::sub2(row, u0, u1, m0, m1),
        avx512: avx512::sub2(row, u0, u1, m0, m1),
        neon: neon::sub2(row, u0, u1, m0, m1)
    );
}

// ---------------------------------------------------------------------
// MG 7-point stencil span
// ---------------------------------------------------------------------

/// Interior residual span of the periodic 7-point −∇² stencil:
/// `out[i] = v[i] − (6·uc[i] − uxm[i] − uxp[i] − uym[i] − uyp[i]
/// − uzm[i] − uzp[i])`, subtractions in that exact order. The six
/// neighbor slices are the same row shifted (x±1) or the adjacent
/// rows/planes (y±1, z±1); periodic boundary points stay on the
/// caller's scalar path.
#[allow(clippy::too_many_arguments)] // one slice per stencil leg
pub fn stencil7(
    m: SimdMode,
    out: &mut [f64],
    v: &[f64],
    uc: &[f64],
    uxm: &[f64],
    uxp: &[f64],
    uym: &[f64],
    uyp: &[f64],
    uzm: &[f64],
    uzp: &[f64],
) {
    let n = out.len();
    assert!(
        v.len() == n
            && uc.len() == n
            && uxm.len() == n
            && uxp.len() == n
            && uym.len() == n
            && uyp.len() == n
            && uzm.len() == n
            && uzp.len() == n
    );
    dispatch!(
        m,
        scalar: scalar::stencil7(out, v, uc, uxm, uxp, uym, uyp, uzm, uzp),
        avx2: avx2::stencil7(out, v, uc, uxm, uxp, uym, uyp, uzm, uzp),
        fma: fma::stencil7(out, v, uc, uxm, uxp, uym, uyp, uzm, uzp),
        avx512: avx512::stencil7(out, v, uc, uxm, uxp, uym, uyp, uzm, uzp),
        neon: neon::stencil7(out, v, uc, uxm, uxp, uym, uyp, uzm, uzp)
    );
}

// ---------------------------------------------------------------------
// FFT butterfly span
// ---------------------------------------------------------------------

/// One radix-2 butterfly stage over a chunk split at `half`:
/// `v = hi[k]·w[k]`, `lo[k] = lo[k] + v`, `hi[k] = lo[k] − v`, with
/// `w[k]` conjugated when `conj` (the inverse direction — a sign flip,
/// exact). The complex multiply is per-lane mul/add
/// (`re·re − im·im`, `im·re + re·im`), never FMA.
pub fn butterfly(m: SimdMode, lo: &mut [C64], hi: &mut [C64], tw: &[C64], conj: bool) {
    assert_eq!(lo.len(), hi.len());
    assert_eq!(lo.len(), tw.len());
    dispatch!(
        m,
        scalar: scalar::butterfly(lo, hi, tw, conj),
        avx2: avx2::butterfly(lo, hi, tw, conj),
        fma: fma::butterfly(lo, hi, tw, conj),
        // AVX-512F has no addsub; the bitwise 512-bit emulation (xor
        // sign mask + add) buys nothing over the 256-bit kernel here,
        // so the AVX-512 tier keeps the AVX2 butterfly.
        avx512: avx2::butterfly(lo, hi, tw, conj),
        neon: neon::butterfly(lo, hi, tw, conj)
    );
}

// ---------------------------------------------------------------------
// Scalar reference path
// ---------------------------------------------------------------------

/// The portable loops. Each function is the semantic definition its
/// AVX2 twin must match bitwise; the vector path also calls these for
/// the sub-4-lane tails, so the two implementations can never drift on
/// remainder elements.
mod scalar {
    use crate::fft::C64;

    pub fn scale(dst: &mut [f64], src: &[f64], s: f64) {
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = s * x;
        }
    }

    pub fn scale_in_place(dst: &mut [f64], s: f64) {
        for d in dst.iter_mut() {
            *d *= s;
        }
    }

    pub fn add(dst: &mut [f64], a: &[f64], b: &[f64]) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = x + y;
        }
    }

    pub fn triad(dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d = x + s * y;
        }
    }

    pub fn axpy(y: &mut [f64], x: &[f64], a: f64) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    pub fn xpby(y: &mut [f64], x: &[f64], b: f64) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi + b * *yi;
        }
    }

    pub fn scale_div(dst: &mut [f64], src: &[f64], d: f64) {
        for (o, &x) in dst.iter_mut().zip(src) {
            *o = x / d;
        }
    }

    /// The contract reduction: four strided accumulators, remainder
    /// into accumulators `0..len%4`, combined `(0+1) + (2+3)`.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let mut acc = [0.0f64; 4];
        let n4 = a.len() & !3;
        let mut i = 0;
        while i < n4 {
            acc[0] += a[i] * b[i];
            acc[1] += a[i + 1] * b[i + 1];
            acc[2] += a[i + 2] * b[i + 2];
            acc[3] += a[i + 3] * b[i + 3];
            i += 4;
        }
        dot_tail(&mut acc, &a[n4..], &b[n4..]);
        dot_combine(acc)
    }

    /// Remainder elements feed accumulators `0..tail_len` (shared with
    /// the AVX2 path so the tail recurrence is literally the same code).
    pub fn dot_tail(acc: &mut [f64; 4], a: &[f64], b: &[f64]) {
        for (j, (&x, &y)) in a.iter().zip(b).enumerate() {
            acc[j] += x * y;
        }
    }

    /// The fixed combine order of the contract.
    pub fn dot_combine(acc: [f64; 4]) -> f64 {
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    #[allow(clippy::too_many_arguments)]
    pub fn update4(
        c: &mut [f64],
        b0: &[f64],
        b1: &[f64],
        b2: &[f64],
        b3: &[f64],
        a0: f64,
        a1: f64,
        a2: f64,
        a3: f64,
    ) {
        for (i, cv) in c.iter_mut().enumerate() {
            *cv += a0 * b0[i] + a1 * b1[i] + a2 * b2[i] + a3 * b3[i];
        }
    }

    /// The semantic definition of the fused tile kernel: k-quads via
    /// [`update4`], the `kw mod 4` remainder via [`axpy`], on full rows.
    pub fn tile_row_update(c: &mut [f64], bt: &[f64], a: &[f64], alpha: f64) {
        let jw = c.len();
        let kw = a.len();
        let mut kk = 0;
        while kk + 4 <= kw {
            let a0 = alpha * a[kk];
            let a1 = alpha * a[kk + 1];
            let a2 = alpha * a[kk + 2];
            let a3 = alpha * a[kk + 3];
            let (b0, rest) = bt[kk * jw..].split_at(jw);
            let (b1, rest) = rest.split_at(jw);
            let (b2, rest) = rest.split_at(jw);
            update4(c, b0, b1, b2, &rest[..jw], a0, a1, a2, a3);
            kk += 4;
        }
        while kk < kw {
            axpy(c, &bt[kk * jw..kk * jw + jw], alpha * a[kk]);
            kk += 1;
        }
    }

    pub fn sub2(row: &mut [f64], u0: &[f64], u1: &[f64], m0: f64, m1: f64) {
        for (i, r) in row.iter_mut().enumerate() {
            *r -= m0 * u0[i] + m1 * u1[i];
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn stencil7(
        out: &mut [f64],
        v: &[f64],
        uc: &[f64],
        uxm: &[f64],
        uxp: &[f64],
        uym: &[f64],
        uyp: &[f64],
        uzm: &[f64],
        uzp: &[f64],
    ) {
        for (i, o) in out.iter_mut().enumerate() {
            let au = 6.0 * uc[i] - uxm[i] - uxp[i] - uym[i] - uyp[i] - uzm[i] - uzp[i];
            *o = v[i] - au;
        }
    }

    pub fn butterfly(lo: &mut [C64], hi: &mut [C64], tw: &[C64], conj: bool) {
        for k in 0..lo.len() {
            let w = if conj { C64::new(tw[k].re, -tw[k].im) } else { tw[k] };
            let h = hi[k];
            let l = lo[k];
            // Lane order of the AVX2 addsub: re·re − im·im, im·re + re·im.
            let vre = h.re * w.re - h.im * w.im;
            let vim = h.im * w.re + h.re * w.im;
            lo[k] = C64::new(l.re + vre, l.im + vim);
            hi[k] = C64::new(l.re - vre, l.im - vim);
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 path
// ---------------------------------------------------------------------

/// Four-lane `f64` implementations. Unaligned loads/stores throughout
/// (`Vec<f64>` gives no 32-byte guarantee); every arithmetic step is a
/// separate `vmulpd`/`vaddpd`/`vsubpd`/`vdivpd` so lane `i` performs
/// the scalar path's exact operation sequence — FMA contraction is
/// deliberately absent. Tails shorter than one vector defer to the
/// [`scalar`] functions on the remaining subslice.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_addsub_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_movedup_pd,
        _mm256_mul_pd, _mm256_permute_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _mm256_xor_pd,
    };

    use super::scalar;
    use crate::fft::C64;

    /// `f64` lanes per vector.
    const LANES: usize = 4;

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(dst: &mut [f64], src: &[f64], s: f64) {
        let n4 = dst.len() & !(LANES - 1);
        let vs = _mm256_set1_pd(s);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_mul_pd(vs, x));
            i += LANES;
        }
        scalar::scale(&mut dst[n4..], &src[n4..], s);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_in_place(dst: &mut [f64], s: f64) {
        let n4 = dst.len() & !(LANES - 1);
        let vs = _mm256_set1_pd(s);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(dst.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_mul_pd(x, vs));
            i += LANES;
        }
        scalar::scale_in_place(&mut dst[n4..], s);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn add(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n4 = dst.len() & !(LANES - 1);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(a.as_ptr().add(i));
            let y = _mm256_loadu_pd(b.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(x, y));
            i += LANES;
        }
        scalar::add(&mut dst[n4..], &a[n4..], &b[n4..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn triad(dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        let n4 = dst.len() & !(LANES - 1);
        let vs = _mm256_set1_pd(s);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(a.as_ptr().add(i));
            let y = _mm256_loadu_pd(b.as_ptr().add(i));
            let t = _mm256_mul_pd(vs, y);
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_add_pd(x, t));
            i += LANES;
        }
        scalar::triad(&mut dst[n4..], &a[n4..], &b[n4..], s);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(y: &mut [f64], x: &[f64], a: f64) {
        let n4 = y.len() & !(LANES - 1);
        let va = _mm256_set1_pd(a);
        let mut i = 0;
        while i < n4 {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            let t = _mm256_mul_pd(va, xv);
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_add_pd(yv, t));
            i += LANES;
        }
        scalar::axpy(&mut y[n4..], &x[n4..], a);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn xpby(y: &mut [f64], x: &[f64], b: f64) {
        let n4 = y.len() & !(LANES - 1);
        let vb = _mm256_set1_pd(b);
        let mut i = 0;
        while i < n4 {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            let t = _mm256_mul_pd(vb, yv);
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_add_pd(xv, t));
            i += LANES;
        }
        scalar::xpby(&mut y[n4..], &x[n4..], b);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_div(dst: &mut [f64], src: &[f64], d: f64) {
        let n4 = dst.len() & !(LANES - 1);
        let vd = _mm256_set1_pd(d);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(src.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_div_pd(x, vd));
            i += LANES;
        }
        scalar::scale_div(&mut dst[n4..], &src[n4..], d);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n4 = a.len() & !(LANES - 1);
        let mut vacc = _mm256_setzero_pd();
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(a.as_ptr().add(i));
            let y = _mm256_loadu_pd(b.as_ptr().add(i));
            // Lane j accumulates index 4k+j products: the strided layout.
            vacc = _mm256_add_pd(vacc, _mm256_mul_pd(x, y));
            i += LANES;
        }
        let mut acc = [0.0f64; 4];
        _mm256_storeu_pd(acc.as_mut_ptr(), vacc);
        scalar::dot_tail(&mut acc, &a[n4..], &b[n4..]);
        scalar::dot_combine(acc)
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn update4(
        c: &mut [f64],
        b0: &[f64],
        b1: &[f64],
        b2: &[f64],
        b3: &[f64],
        a0: f64,
        a1: f64,
        a2: f64,
        a3: f64,
    ) {
        let n4 = c.len() & !(LANES - 1);
        let va0 = _mm256_set1_pd(a0);
        let va1 = _mm256_set1_pd(a1);
        let va2 = _mm256_set1_pd(a2);
        let va3 = _mm256_set1_pd(a3);
        let mut i = 0;
        while i < n4 {
            // t = ((a0·b0 + a1·b1) + a2·b2) + a3·b3, then c += t —
            // the scalar expression's association, lane for lane.
            let t0 = _mm256_mul_pd(va0, _mm256_loadu_pd(b0.as_ptr().add(i)));
            let t1 = _mm256_mul_pd(va1, _mm256_loadu_pd(b1.as_ptr().add(i)));
            let t2 = _mm256_mul_pd(va2, _mm256_loadu_pd(b2.as_ptr().add(i)));
            let t3 = _mm256_mul_pd(va3, _mm256_loadu_pd(b3.as_ptr().add(i)));
            let s = _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(t0, t1), t2), t3);
            let cv = _mm256_loadu_pd(c.as_ptr().add(i));
            _mm256_storeu_pd(c.as_mut_ptr().add(i), _mm256_add_pd(cv, s));
            i += LANES;
        }
        scalar::update4(&mut c[n4..], &b0[n4..], &b1[n4..], &b2[n4..], &b3[n4..], a0, a1, a2, a3);
    }

    /// The fused DGEMM tile kernel. Per element this performs exactly
    /// the scalar path's k-quad `update4` expressions and `axpy`
    /// singles, in the same order — but the C accumulators live in
    /// registers for the whole k loop (intermediate loads/stores round
    /// nothing, so eliding them is bitwise-neutral). k is walked in
    /// `KC`-sized blocks so the scaled multipliers `alpha·a[k]` fit a
    /// stack buffer; `KC` is a multiple of 4, so blocking never splits
    /// a quad and the quad/single grouping matches the scalar path.
    #[target_feature(enable = "avx2")]
    pub unsafe fn tile_row_update(c: &mut [f64], bt: &[f64], a: &[f64], alpha: f64) {
        const KC: usize = 64;
        let jw = c.len();
        let kw = a.len();
        let mut k0 = 0;
        while k0 < kw {
            let kc = (kw - k0).min(KC);
            let mut sa = [0.0f64; KC];
            for (s, &av) in sa[..kc].iter_mut().zip(&a[k0..k0 + kc]) {
                *s = alpha * av;
            }
            let bt0 = bt.as_ptr().add(k0 * jw);
            // Eight columns per pass: two independent accumulator
            // chains hide the add latency the single-chain quad loop
            // would serialize on.
            let mut j = 0;
            while j + 8 <= jw {
                let mut c0 = _mm256_loadu_pd(c.as_ptr().add(j));
                let mut c1 = _mm256_loadu_pd(c.as_ptr().add(j + 4));
                let mut kk = 0;
                while kk + 4 <= kc {
                    let va0 = _mm256_set1_pd(sa[kk]);
                    let va1 = _mm256_set1_pd(sa[kk + 1]);
                    let va2 = _mm256_set1_pd(sa[kk + 2]);
                    let va3 = _mm256_set1_pd(sa[kk + 3]);
                    let r0 = bt0.add(kk * jw + j);
                    let r1 = bt0.add((kk + 1) * jw + j);
                    let r2 = bt0.add((kk + 2) * jw + j);
                    let r3 = bt0.add((kk + 3) * jw + j);
                    let s0 = _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(
                                _mm256_mul_pd(va0, _mm256_loadu_pd(r0)),
                                _mm256_mul_pd(va1, _mm256_loadu_pd(r1)),
                            ),
                            _mm256_mul_pd(va2, _mm256_loadu_pd(r2)),
                        ),
                        _mm256_mul_pd(va3, _mm256_loadu_pd(r3)),
                    );
                    c0 = _mm256_add_pd(c0, s0);
                    let s1 = _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(
                                _mm256_mul_pd(va0, _mm256_loadu_pd(r0.add(4))),
                                _mm256_mul_pd(va1, _mm256_loadu_pd(r1.add(4))),
                            ),
                            _mm256_mul_pd(va2, _mm256_loadu_pd(r2.add(4))),
                        ),
                        _mm256_mul_pd(va3, _mm256_loadu_pd(r3.add(4))),
                    );
                    c1 = _mm256_add_pd(c1, s1);
                    kk += 4;
                }
                while kk < kc {
                    let va = _mm256_set1_pd(sa[kk]);
                    let r = bt0.add(kk * jw + j);
                    c0 = _mm256_add_pd(c0, _mm256_mul_pd(va, _mm256_loadu_pd(r)));
                    c1 = _mm256_add_pd(c1, _mm256_mul_pd(va, _mm256_loadu_pd(r.add(4))));
                    kk += 1;
                }
                _mm256_storeu_pd(c.as_mut_ptr().add(j), c0);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 4), c1);
                j += 8;
            }
            while j + 4 <= jw {
                let mut c0 = _mm256_loadu_pd(c.as_ptr().add(j));
                let mut kk = 0;
                while kk + 4 <= kc {
                    let s0 = _mm256_add_pd(
                        _mm256_add_pd(
                            _mm256_add_pd(
                                _mm256_mul_pd(
                                    _mm256_set1_pd(sa[kk]),
                                    _mm256_loadu_pd(bt0.add(kk * jw + j)),
                                ),
                                _mm256_mul_pd(
                                    _mm256_set1_pd(sa[kk + 1]),
                                    _mm256_loadu_pd(bt0.add((kk + 1) * jw + j)),
                                ),
                            ),
                            _mm256_mul_pd(
                                _mm256_set1_pd(sa[kk + 2]),
                                _mm256_loadu_pd(bt0.add((kk + 2) * jw + j)),
                            ),
                        ),
                        _mm256_mul_pd(
                            _mm256_set1_pd(sa[kk + 3]),
                            _mm256_loadu_pd(bt0.add((kk + 3) * jw + j)),
                        ),
                    );
                    c0 = _mm256_add_pd(c0, s0);
                    kk += 4;
                }
                while kk < kc {
                    let va = _mm256_set1_pd(sa[kk]);
                    c0 =
                        _mm256_add_pd(c0, _mm256_mul_pd(va, _mm256_loadu_pd(bt0.add(kk * jw + j))));
                    kk += 1;
                }
                _mm256_storeu_pd(c.as_mut_ptr().add(j), c0);
                j += 4;
            }
            // Column tail: the same per-element expressions, plain Rust.
            while j < jw {
                let mut cj = c[j];
                let mut kk = 0;
                while kk + 4 <= kc {
                    cj += sa[kk] * *bt0.add(kk * jw + j)
                        + sa[kk + 1] * *bt0.add((kk + 1) * jw + j)
                        + sa[kk + 2] * *bt0.add((kk + 2) * jw + j)
                        + sa[kk + 3] * *bt0.add((kk + 3) * jw + j);
                    kk += 4;
                }
                while kk < kc {
                    cj += sa[kk] * *bt0.add(kk * jw + j);
                    kk += 1;
                }
                c[j] = cj;
                j += 1;
            }
            k0 += kc;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub2(row: &mut [f64], u0: &[f64], u1: &[f64], m0: f64, m1: f64) {
        let n4 = row.len() & !(LANES - 1);
        let vm0 = _mm256_set1_pd(m0);
        let vm1 = _mm256_set1_pd(m1);
        let mut i = 0;
        while i < n4 {
            let t0 = _mm256_mul_pd(vm0, _mm256_loadu_pd(u0.as_ptr().add(i)));
            let t1 = _mm256_mul_pd(vm1, _mm256_loadu_pd(u1.as_ptr().add(i)));
            let s = _mm256_add_pd(t0, t1);
            let r = _mm256_loadu_pd(row.as_ptr().add(i));
            _mm256_storeu_pd(row.as_mut_ptr().add(i), _mm256_sub_pd(r, s));
            i += LANES;
        }
        scalar::sub2(&mut row[n4..], &u0[n4..], &u1[n4..], m0, m1);
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn stencil7(
        out: &mut [f64],
        v: &[f64],
        uc: &[f64],
        uxm: &[f64],
        uxp: &[f64],
        uym: &[f64],
        uyp: &[f64],
        uzm: &[f64],
        uzp: &[f64],
    ) {
        let n4 = out.len() & !(LANES - 1);
        let six = _mm256_set1_pd(6.0);
        let mut i = 0;
        while i < n4 {
            // 6·uc − uxm − uxp − uym − uyp − uzm − uzp, subtractions in
            // the scalar expression's left-to-right order.
            let mut au = _mm256_mul_pd(six, _mm256_loadu_pd(uc.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uxm.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uxp.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uym.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uyp.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uzm.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uzp.as_ptr().add(i)));
            let vv = _mm256_loadu_pd(v.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_sub_pd(vv, au));
            i += LANES;
        }
        scalar::stencil7(
            &mut out[n4..],
            &v[n4..],
            &uc[n4..],
            &uxm[n4..],
            &uxp[n4..],
            &uym[n4..],
            &uyp[n4..],
            &uzm[n4..],
            &uzp[n4..],
        );
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly(lo: &mut [C64], hi: &mut [C64], tw: &[C64], conj: bool) {
        // Two complexes (four f64) per vector: [re0, im0, re1, im1].
        // C64 is #[repr(C)], so a C64 pointer is a pair-of-f64 pointer.
        let half = lo.len();
        let n2 = half & !1;
        // Conjugation flips the sign bit of the imaginary lanes — the
        // exact operation the scalar path's `-tw[k].im` performs.
        let conj_mask = if conj {
            _mm256_loadu_pd([0.0f64, -0.0, 0.0, -0.0].as_ptr())
        } else {
            _mm256_setzero_pd()
        };
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let tp = tw.as_ptr() as *const f64;
        let mut k = 0;
        while k < n2 {
            let w = _mm256_xor_pd(_mm256_loadu_pd(tp.add(2 * k)), conj_mask);
            let h = _mm256_loadu_pd(hp.add(2 * k));
            let l = _mm256_loadu_pd(lp.add(2 * k));
            // v = h·w: addsub(h·dup(w.re), swap(h)·dup(w.im)) gives
            // (h.re·w.re − h.im·w.im, h.im·w.re + h.re·w.im) per complex.
            let wre = _mm256_movedup_pd(w);
            let wim = _mm256_permute_pd::<0b1111>(w);
            let hswap = _mm256_permute_pd::<0b0101>(h);
            let v = _mm256_addsub_pd(_mm256_mul_pd(h, wre), _mm256_mul_pd(hswap, wim));
            _mm256_storeu_pd(lp.add(2 * k), _mm256_add_pd(l, v));
            _mm256_storeu_pd(hp.add(2 * k), _mm256_sub_pd(l, v));
            k += 2;
        }
        scalar::butterfly(&mut lo[n2..], &mut hi[n2..], &tw[n2..], conj);
    }
}

// ---------------------------------------------------------------------
// FMA tolerance tier
// ---------------------------------------------------------------------

/// The fused AVX2+FMA tier — the one module exempt from the bitwise
/// contract. Each `_mm256_fmadd_pd` performs one rounding where the
/// scalar path performs two, so results differ from scalar by at most
/// the documented componentwise tolerance (module docs) while being
/// pointwise *closer* to the exact value. Ops with no multiply-add to
/// fuse (`scale`, `scale_in_place`, `add`, `scale_div`) are dispatched
/// to the [`avx2`] bodies and stay bitwise. Sub-vector tails use
/// `f64::mul_add`, which compiles to the scalar FMA instruction inside
/// these `target_feature` functions, so tails obey the same bound.
#[cfg(target_arch = "x86_64")]
mod fma {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_fmadd_pd, _mm256_fmaddsub_pd, _mm256_fmsub_pd, _mm256_fnmadd_pd,
        _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd, _mm256_permute_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd,
    };

    use super::scalar;
    use crate::fft::C64;

    /// `f64` lanes per vector.
    const LANES: usize = 4;

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn triad(dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        let n4 = dst.len() & !(LANES - 1);
        let vs = _mm256_set1_pd(s);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(a.as_ptr().add(i));
            let y = _mm256_loadu_pd(b.as_ptr().add(i));
            _mm256_storeu_pd(dst.as_mut_ptr().add(i), _mm256_fmadd_pd(vs, y, x));
            i += LANES;
        }
        for j in n4..dst.len() {
            dst[j] = s.mul_add(b[j], a[j]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(y: &mut [f64], x: &[f64], a: f64) {
        let n4 = y.len() & !(LANES - 1);
        let va = _mm256_set1_pd(a);
        let mut i = 0;
        while i < n4 {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_fmadd_pd(va, xv, yv));
            i += LANES;
        }
        for j in n4..y.len() {
            y[j] = a.mul_add(x[j], y[j]);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn xpby(y: &mut [f64], x: &[f64], b: f64) {
        let n4 = y.len() & !(LANES - 1);
        let vb = _mm256_set1_pd(b);
        let mut i = 0;
        while i < n4 {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(y.as_mut_ptr().add(i), _mm256_fmadd_pd(vb, yv, xv));
            i += LANES;
        }
        for j in n4..y.len() {
            y[j] = b.mul_add(y[j], x[j]);
        }
    }

    /// Two fused accumulator chains over eight elements per pass; the
    /// tolerance tier keeps the 4-accumulator *combine* of the
    /// contract so its value stays comparable to the bitwise dots.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let n8 = n & !(2 * LANES - 1);
        let n4 = n & !(LANES - 1);
        let mut vacc0 = _mm256_setzero_pd();
        let mut vacc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i < n8 {
            let x0 = _mm256_loadu_pd(a.as_ptr().add(i));
            let y0 = _mm256_loadu_pd(b.as_ptr().add(i));
            vacc0 = _mm256_fmadd_pd(x0, y0, vacc0);
            let x1 = _mm256_loadu_pd(a.as_ptr().add(i + LANES));
            let y1 = _mm256_loadu_pd(b.as_ptr().add(i + LANES));
            vacc1 = _mm256_fmadd_pd(x1, y1, vacc1);
            i += 2 * LANES;
        }
        if i < n4 {
            let x = _mm256_loadu_pd(a.as_ptr().add(i));
            let y = _mm256_loadu_pd(b.as_ptr().add(i));
            vacc0 = _mm256_fmadd_pd(x, y, vacc0);
        }
        let mut acc = [0.0f64; 4];
        _mm256_storeu_pd(acc.as_mut_ptr(), _mm256_add_pd(vacc0, vacc1));
        for (j, idx) in (n4..n).enumerate() {
            acc[j] = a[idx].mul_add(b[idx], acc[j]);
        }
        scalar::dot_combine(acc)
    }

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn update4(
        c: &mut [f64],
        b0: &[f64],
        b1: &[f64],
        b2: &[f64],
        b3: &[f64],
        a0: f64,
        a1: f64,
        a2: f64,
        a3: f64,
    ) {
        let n4 = c.len() & !(LANES - 1);
        let va0 = _mm256_set1_pd(a0);
        let va1 = _mm256_set1_pd(a1);
        let va2 = _mm256_set1_pd(a2);
        let va3 = _mm256_set1_pd(a3);
        let mut i = 0;
        while i < n4 {
            let mut cv = _mm256_loadu_pd(c.as_ptr().add(i));
            cv = _mm256_fmadd_pd(va0, _mm256_loadu_pd(b0.as_ptr().add(i)), cv);
            cv = _mm256_fmadd_pd(va1, _mm256_loadu_pd(b1.as_ptr().add(i)), cv);
            cv = _mm256_fmadd_pd(va2, _mm256_loadu_pd(b2.as_ptr().add(i)), cv);
            cv = _mm256_fmadd_pd(va3, _mm256_loadu_pd(b3.as_ptr().add(i)), cv);
            _mm256_storeu_pd(c.as_mut_ptr().add(i), cv);
            i += LANES;
        }
        for j in n4..c.len() {
            c[j] = a3.mul_add(b3[j], a2.mul_add(b2[j], a1.mul_add(b1[j], a0.mul_add(b0[j], c[j]))));
        }
    }

    /// The wide register tile of the tolerance tier: **eight** fused
    /// accumulator chains spanning 32 C columns per pass (vs the
    /// bitwise kernel's two chains over 8), with one fmadd per packed
    /// B row — half the arithmetic ops of the mul+add kernel and four
    /// times the chain-level parallelism, which is where the measured
    /// DGEMM headroom of this tier comes from.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tile_row_update(c: &mut [f64], bt: &[f64], a: &[f64], alpha: f64) {
        const KC: usize = 64;
        let jw = c.len();
        let kw = a.len();
        let mut k0 = 0;
        while k0 < kw {
            let kc = (kw - k0).min(KC);
            let mut sa = [0.0f64; KC];
            for (s, &av) in sa[..kc].iter_mut().zip(&a[k0..k0 + kc]) {
                *s = alpha * av;
            }
            let bt0 = bt.as_ptr().add(k0 * jw);
            let mut j = 0;
            while j + 8 * LANES <= jw {
                let mut c0 = _mm256_loadu_pd(c.as_ptr().add(j));
                let mut c1 = _mm256_loadu_pd(c.as_ptr().add(j + 4));
                let mut c2 = _mm256_loadu_pd(c.as_ptr().add(j + 8));
                let mut c3 = _mm256_loadu_pd(c.as_ptr().add(j + 12));
                let mut c4 = _mm256_loadu_pd(c.as_ptr().add(j + 16));
                let mut c5 = _mm256_loadu_pd(c.as_ptr().add(j + 20));
                let mut c6 = _mm256_loadu_pd(c.as_ptr().add(j + 24));
                let mut c7 = _mm256_loadu_pd(c.as_ptr().add(j + 28));
                for (kk, &s) in sa[..kc].iter().enumerate() {
                    let va = _mm256_set1_pd(s);
                    let r = bt0.add(kk * jw + j);
                    c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r), c0);
                    c1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(4)), c1);
                    c2 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(8)), c2);
                    c3 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(12)), c3);
                    c4 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(16)), c4);
                    c5 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(20)), c5);
                    c6 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(24)), c6);
                    c7 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(28)), c7);
                }
                _mm256_storeu_pd(c.as_mut_ptr().add(j), c0);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 4), c1);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 8), c2);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 12), c3);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 16), c4);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 20), c5);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 24), c6);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 28), c7);
                j += 8 * LANES;
            }
            while j + 2 * LANES <= jw {
                let mut c0 = _mm256_loadu_pd(c.as_ptr().add(j));
                let mut c1 = _mm256_loadu_pd(c.as_ptr().add(j + 4));
                for (kk, &s) in sa[..kc].iter().enumerate() {
                    let va = _mm256_set1_pd(s);
                    let r = bt0.add(kk * jw + j);
                    c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r), c0);
                    c1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(r.add(4)), c1);
                }
                _mm256_storeu_pd(c.as_mut_ptr().add(j), c0);
                _mm256_storeu_pd(c.as_mut_ptr().add(j + 4), c1);
                j += 2 * LANES;
            }
            while j + LANES <= jw {
                let mut c0 = _mm256_loadu_pd(c.as_ptr().add(j));
                for (kk, &s) in sa[..kc].iter().enumerate() {
                    let va = _mm256_set1_pd(s);
                    c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(bt0.add(kk * jw + j)), c0);
                }
                _mm256_storeu_pd(c.as_mut_ptr().add(j), c0);
                j += LANES;
            }
            while j < jw {
                let mut cj = c[j];
                for (kk, &s) in sa[..kc].iter().enumerate() {
                    cj = s.mul_add(*bt0.add(kk * jw + j), cj);
                }
                c[j] = cj;
                j += 1;
            }
            k0 += kc;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sub2(row: &mut [f64], u0: &[f64], u1: &[f64], m0: f64, m1: f64) {
        let n4 = row.len() & !(LANES - 1);
        let vm0 = _mm256_set1_pd(m0);
        let vm1 = _mm256_set1_pd(m1);
        let mut i = 0;
        while i < n4 {
            let r = _mm256_loadu_pd(row.as_ptr().add(i));
            let t = _mm256_fnmadd_pd(vm0, _mm256_loadu_pd(u0.as_ptr().add(i)), r);
            let t = _mm256_fnmadd_pd(vm1, _mm256_loadu_pd(u1.as_ptr().add(i)), t);
            _mm256_storeu_pd(row.as_mut_ptr().add(i), t);
            i += LANES;
        }
        for j in n4..row.len() {
            row[j] = (-m1).mul_add(u1[j], (-m0).mul_add(u0[j], row[j]));
        }
    }

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn stencil7(
        out: &mut [f64],
        v: &[f64],
        uc: &[f64],
        uxm: &[f64],
        uxp: &[f64],
        uym: &[f64],
        uyp: &[f64],
        uzm: &[f64],
        uzp: &[f64],
    ) {
        let n4 = out.len() & !(LANES - 1);
        let six = _mm256_set1_pd(6.0);
        let mut i = 0;
        while i < n4 {
            // au = 6·uc − uxm fused, then the remaining subtractions.
            let mut au = _mm256_fmsub_pd(
                six,
                _mm256_loadu_pd(uc.as_ptr().add(i)),
                _mm256_loadu_pd(uxm.as_ptr().add(i)),
            );
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uxp.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uym.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uyp.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uzm.as_ptr().add(i)));
            au = _mm256_sub_pd(au, _mm256_loadu_pd(uzp.as_ptr().add(i)));
            let vv = _mm256_loadu_pd(v.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_sub_pd(vv, au));
            i += LANES;
        }
        for j in n4..out.len() {
            let au = 6.0f64.mul_add(uc[j], -uxm[j]) - uxp[j] - uym[j] - uyp[j] - uzm[j] - uzp[j];
            out[j] = v[j] - au;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn butterfly(lo: &mut [C64], hi: &mut [C64], tw: &[C64], conj: bool) {
        // Same two-complex layout as the AVX2 kernel; the complex
        // multiply fuses into one fmaddsub per vector.
        let half = lo.len();
        let n2 = half & !1;
        let conj_mask = if conj {
            _mm256_loadu_pd([0.0f64, -0.0, 0.0, -0.0].as_ptr())
        } else {
            _mm256_setzero_pd()
        };
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let tp = tw.as_ptr() as *const f64;
        let mut k = 0;
        while k < n2 {
            let w = _mm256_xor_pd(_mm256_loadu_pd(tp.add(2 * k)), conj_mask);
            let h = _mm256_loadu_pd(hp.add(2 * k));
            let l = _mm256_loadu_pd(lp.add(2 * k));
            let wre = _mm256_movedup_pd(w);
            let wim = _mm256_permute_pd::<0b1111>(w);
            let hswap = _mm256_permute_pd::<0b0101>(h);
            let v = _mm256_fmaddsub_pd(h, wre, _mm256_mul_pd(hswap, wim));
            _mm256_storeu_pd(lp.add(2 * k), _mm256_add_pd(l, v));
            _mm256_storeu_pd(hp.add(2 * k), _mm256_sub_pd(l, v));
            k += 2;
        }
        scalar::butterfly(&mut lo[n2..], &mut hi[n2..], &tw[n2..], conj);
    }
}

// ---------------------------------------------------------------------
// AVX-512 path (bitwise tier)
// ---------------------------------------------------------------------

/// Eight-lane `f64` implementations of the element-wise spans and the
/// fused tile kernel. Same rules as [`avx2`]: separate per-lane
/// mul/add/sub/div in the scalar expression's association order, never
/// FMA; tails defer to the [`scalar`] functions. The reduction
/// ([`super::dot`]) and the butterfly stay on the AVX2 bodies — the
/// contract's 4-accumulator layout and addsub shape are 256-bit-wide
/// by definition.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::{
        _mm512_add_pd, _mm512_div_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd,
        _mm512_storeu_pd, _mm512_sub_pd,
    };

    use super::scalar;

    /// `f64` lanes per vector.
    const LANES: usize = 8;

    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale(dst: &mut [f64], src: &[f64], s: f64) {
        let n8 = dst.len() & !(LANES - 1);
        let vs = _mm512_set1_pd(s);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(src.as_ptr().add(i));
            _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_mul_pd(vs, x));
            i += LANES;
        }
        scalar::scale(&mut dst[n8..], &src[n8..], s);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale_in_place(dst: &mut [f64], s: f64) {
        let n8 = dst.len() & !(LANES - 1);
        let vs = _mm512_set1_pd(s);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(dst.as_ptr().add(i));
            _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_mul_pd(x, vs));
            i += LANES;
        }
        scalar::scale_in_place(&mut dst[n8..], s);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn add(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n8 = dst.len() & !(LANES - 1);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(a.as_ptr().add(i));
            let y = _mm512_loadu_pd(b.as_ptr().add(i));
            _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_add_pd(x, y));
            i += LANES;
        }
        scalar::add(&mut dst[n8..], &a[n8..], &b[n8..]);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn triad(dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        let n8 = dst.len() & !(LANES - 1);
        let vs = _mm512_set1_pd(s);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(a.as_ptr().add(i));
            let y = _mm512_loadu_pd(b.as_ptr().add(i));
            let t = _mm512_mul_pd(vs, y);
            _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_add_pd(x, t));
            i += LANES;
        }
        scalar::triad(&mut dst[n8..], &a[n8..], &b[n8..], s);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy(y: &mut [f64], x: &[f64], a: f64) {
        let n8 = y.len() & !(LANES - 1);
        let va = _mm512_set1_pd(a);
        let mut i = 0;
        while i < n8 {
            let xv = _mm512_loadu_pd(x.as_ptr().add(i));
            let yv = _mm512_loadu_pd(y.as_ptr().add(i));
            let t = _mm512_mul_pd(va, xv);
            _mm512_storeu_pd(y.as_mut_ptr().add(i), _mm512_add_pd(yv, t));
            i += LANES;
        }
        scalar::axpy(&mut y[n8..], &x[n8..], a);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn xpby(y: &mut [f64], x: &[f64], b: f64) {
        let n8 = y.len() & !(LANES - 1);
        let vb = _mm512_set1_pd(b);
        let mut i = 0;
        while i < n8 {
            let xv = _mm512_loadu_pd(x.as_ptr().add(i));
            let yv = _mm512_loadu_pd(y.as_ptr().add(i));
            let t = _mm512_mul_pd(vb, yv);
            _mm512_storeu_pd(y.as_mut_ptr().add(i), _mm512_add_pd(xv, t));
            i += LANES;
        }
        scalar::xpby(&mut y[n8..], &x[n8..], b);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale_div(dst: &mut [f64], src: &[f64], d: f64) {
        let n8 = dst.len() & !(LANES - 1);
        let vd = _mm512_set1_pd(d);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(src.as_ptr().add(i));
            _mm512_storeu_pd(dst.as_mut_ptr().add(i), _mm512_div_pd(x, vd));
            i += LANES;
        }
        scalar::scale_div(&mut dst[n8..], &src[n8..], d);
    }

    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn update4(
        c: &mut [f64],
        b0: &[f64],
        b1: &[f64],
        b2: &[f64],
        b3: &[f64],
        a0: f64,
        a1: f64,
        a2: f64,
        a3: f64,
    ) {
        let n8 = c.len() & !(LANES - 1);
        let va0 = _mm512_set1_pd(a0);
        let va1 = _mm512_set1_pd(a1);
        let va2 = _mm512_set1_pd(a2);
        let va3 = _mm512_set1_pd(a3);
        let mut i = 0;
        while i < n8 {
            let t0 = _mm512_mul_pd(va0, _mm512_loadu_pd(b0.as_ptr().add(i)));
            let t1 = _mm512_mul_pd(va1, _mm512_loadu_pd(b1.as_ptr().add(i)));
            let t2 = _mm512_mul_pd(va2, _mm512_loadu_pd(b2.as_ptr().add(i)));
            let t3 = _mm512_mul_pd(va3, _mm512_loadu_pd(b3.as_ptr().add(i)));
            let s = _mm512_add_pd(_mm512_add_pd(_mm512_add_pd(t0, t1), t2), t3);
            let cv = _mm512_loadu_pd(c.as_ptr().add(i));
            _mm512_storeu_pd(c.as_mut_ptr().add(i), _mm512_add_pd(cv, s));
            i += LANES;
        }
        scalar::update4(&mut c[n8..], &b0[n8..], &b1[n8..], &b2[n8..], &b3[n8..], a0, a1, a2, a3);
    }

    /// The fused tile kernel at 512-bit width: 16 columns per pass via
    /// two accumulator chains, the same k-quad/single grouping and
    /// per-element association as the scalar definition.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tile_row_update(c: &mut [f64], bt: &[f64], a: &[f64], alpha: f64) {
        const KC: usize = 64;
        let jw = c.len();
        let kw = a.len();
        let mut k0 = 0;
        while k0 < kw {
            let kc = (kw - k0).min(KC);
            let mut sa = [0.0f64; KC];
            for (s, &av) in sa[..kc].iter_mut().zip(&a[k0..k0 + kc]) {
                *s = alpha * av;
            }
            let bt0 = bt.as_ptr().add(k0 * jw);
            let mut j = 0;
            while j + 2 * LANES <= jw {
                let mut c0 = _mm512_loadu_pd(c.as_ptr().add(j));
                let mut c1 = _mm512_loadu_pd(c.as_ptr().add(j + LANES));
                let mut kk = 0;
                while kk + 4 <= kc {
                    let va0 = _mm512_set1_pd(sa[kk]);
                    let va1 = _mm512_set1_pd(sa[kk + 1]);
                    let va2 = _mm512_set1_pd(sa[kk + 2]);
                    let va3 = _mm512_set1_pd(sa[kk + 3]);
                    let r0 = bt0.add(kk * jw + j);
                    let r1 = bt0.add((kk + 1) * jw + j);
                    let r2 = bt0.add((kk + 2) * jw + j);
                    let r3 = bt0.add((kk + 3) * jw + j);
                    let s0 = _mm512_add_pd(
                        _mm512_add_pd(
                            _mm512_add_pd(
                                _mm512_mul_pd(va0, _mm512_loadu_pd(r0)),
                                _mm512_mul_pd(va1, _mm512_loadu_pd(r1)),
                            ),
                            _mm512_mul_pd(va2, _mm512_loadu_pd(r2)),
                        ),
                        _mm512_mul_pd(va3, _mm512_loadu_pd(r3)),
                    );
                    c0 = _mm512_add_pd(c0, s0);
                    let s1 = _mm512_add_pd(
                        _mm512_add_pd(
                            _mm512_add_pd(
                                _mm512_mul_pd(va0, _mm512_loadu_pd(r0.add(LANES))),
                                _mm512_mul_pd(va1, _mm512_loadu_pd(r1.add(LANES))),
                            ),
                            _mm512_mul_pd(va2, _mm512_loadu_pd(r2.add(LANES))),
                        ),
                        _mm512_mul_pd(va3, _mm512_loadu_pd(r3.add(LANES))),
                    );
                    c1 = _mm512_add_pd(c1, s1);
                    kk += 4;
                }
                while kk < kc {
                    let va = _mm512_set1_pd(sa[kk]);
                    let r = bt0.add(kk * jw + j);
                    c0 = _mm512_add_pd(c0, _mm512_mul_pd(va, _mm512_loadu_pd(r)));
                    c1 = _mm512_add_pd(c1, _mm512_mul_pd(va, _mm512_loadu_pd(r.add(LANES))));
                    kk += 1;
                }
                _mm512_storeu_pd(c.as_mut_ptr().add(j), c0);
                _mm512_storeu_pd(c.as_mut_ptr().add(j + LANES), c1);
                j += 2 * LANES;
            }
            while j + LANES <= jw {
                let mut c0 = _mm512_loadu_pd(c.as_ptr().add(j));
                let mut kk = 0;
                while kk + 4 <= kc {
                    let s0 = _mm512_add_pd(
                        _mm512_add_pd(
                            _mm512_add_pd(
                                _mm512_mul_pd(
                                    _mm512_set1_pd(sa[kk]),
                                    _mm512_loadu_pd(bt0.add(kk * jw + j)),
                                ),
                                _mm512_mul_pd(
                                    _mm512_set1_pd(sa[kk + 1]),
                                    _mm512_loadu_pd(bt0.add((kk + 1) * jw + j)),
                                ),
                            ),
                            _mm512_mul_pd(
                                _mm512_set1_pd(sa[kk + 2]),
                                _mm512_loadu_pd(bt0.add((kk + 2) * jw + j)),
                            ),
                        ),
                        _mm512_mul_pd(
                            _mm512_set1_pd(sa[kk + 3]),
                            _mm512_loadu_pd(bt0.add((kk + 3) * jw + j)),
                        ),
                    );
                    c0 = _mm512_add_pd(c0, s0);
                    kk += 4;
                }
                while kk < kc {
                    let va = _mm512_set1_pd(sa[kk]);
                    c0 =
                        _mm512_add_pd(c0, _mm512_mul_pd(va, _mm512_loadu_pd(bt0.add(kk * jw + j))));
                    kk += 1;
                }
                _mm512_storeu_pd(c.as_mut_ptr().add(j), c0);
                j += LANES;
            }
            // Column tail: the same per-element expressions, plain Rust.
            while j < jw {
                let mut cj = c[j];
                let mut kk = 0;
                while kk + 4 <= kc {
                    cj += sa[kk] * *bt0.add(kk * jw + j)
                        + sa[kk + 1] * *bt0.add((kk + 1) * jw + j)
                        + sa[kk + 2] * *bt0.add((kk + 2) * jw + j)
                        + sa[kk + 3] * *bt0.add((kk + 3) * jw + j);
                    kk += 4;
                }
                while kk < kc {
                    cj += sa[kk] * *bt0.add(kk * jw + j);
                    kk += 1;
                }
                c[j] = cj;
                j += 1;
            }
            k0 += kc;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn sub2(row: &mut [f64], u0: &[f64], u1: &[f64], m0: f64, m1: f64) {
        let n8 = row.len() & !(LANES - 1);
        let vm0 = _mm512_set1_pd(m0);
        let vm1 = _mm512_set1_pd(m1);
        let mut i = 0;
        while i < n8 {
            let t0 = _mm512_mul_pd(vm0, _mm512_loadu_pd(u0.as_ptr().add(i)));
            let t1 = _mm512_mul_pd(vm1, _mm512_loadu_pd(u1.as_ptr().add(i)));
            let s = _mm512_add_pd(t0, t1);
            let r = _mm512_loadu_pd(row.as_ptr().add(i));
            _mm512_storeu_pd(row.as_mut_ptr().add(i), _mm512_sub_pd(r, s));
            i += LANES;
        }
        scalar::sub2(&mut row[n8..], &u0[n8..], &u1[n8..], m0, m1);
    }

    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn stencil7(
        out: &mut [f64],
        v: &[f64],
        uc: &[f64],
        uxm: &[f64],
        uxp: &[f64],
        uym: &[f64],
        uyp: &[f64],
        uzm: &[f64],
        uzp: &[f64],
    ) {
        let n8 = out.len() & !(LANES - 1);
        let six = _mm512_set1_pd(6.0);
        let mut i = 0;
        while i < n8 {
            let mut au = _mm512_mul_pd(six, _mm512_loadu_pd(uc.as_ptr().add(i)));
            au = _mm512_sub_pd(au, _mm512_loadu_pd(uxm.as_ptr().add(i)));
            au = _mm512_sub_pd(au, _mm512_loadu_pd(uxp.as_ptr().add(i)));
            au = _mm512_sub_pd(au, _mm512_loadu_pd(uym.as_ptr().add(i)));
            au = _mm512_sub_pd(au, _mm512_loadu_pd(uyp.as_ptr().add(i)));
            au = _mm512_sub_pd(au, _mm512_loadu_pd(uzm.as_ptr().add(i)));
            au = _mm512_sub_pd(au, _mm512_loadu_pd(uzp.as_ptr().add(i)));
            let vv = _mm512_loadu_pd(v.as_ptr().add(i));
            _mm512_storeu_pd(out.as_mut_ptr().add(i), _mm512_sub_pd(vv, au));
            i += LANES;
        }
        scalar::stencil7(
            &mut out[n8..],
            &v[n8..],
            &uc[n8..],
            &uxm[n8..],
            &uxp[n8..],
            &uym[n8..],
            &uyp[n8..],
            &uzm[n8..],
            &uzp[n8..],
        );
    }
}

// ---------------------------------------------------------------------
// NEON path (bitwise tier, aarch64)
// ---------------------------------------------------------------------

/// Two-lane `f64` NEON implementations, bitwise equal to scalar by the
/// same rules as [`avx2`]: per-lane mul/add/sub/div in the scalar
/// association order, never `vfmaq`; tails defer to [`scalar`]. The
/// contract's four dot accumulators split across two 128-bit vectors
/// (`acc01` holds strides 4k/4k+1, `acc23` holds 4k+2/4k+3), so lane
/// contents match the scalar accumulators element for element. This
/// module compiles only on aarch64; CI's cross-`cargo check` gate
/// keeps it building without ARM hardware in the loop.
#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        vaddq_f64, vdivq_f64, vdupq_laneq_f64, vdupq_n_f64, veorq_u64, vextq_f64, vgetq_lane_f64,
        vld1q_f64, vmulq_f64, vreinterpretq_f64_u64, vreinterpretq_u64_f64, vst1q_f64, vsubq_f64,
    };

    use super::scalar;
    use crate::fft::C64;

    /// `f64` lanes per vector.
    const LANES: usize = 2;

    #[target_feature(enable = "neon")]
    pub unsafe fn scale(dst: &mut [f64], src: &[f64], s: f64) {
        let n2 = dst.len() & !(LANES - 1);
        let vs = vdupq_n_f64(s);
        let mut i = 0;
        while i < n2 {
            let x = vld1q_f64(src.as_ptr().add(i));
            vst1q_f64(dst.as_mut_ptr().add(i), vmulq_f64(vs, x));
            i += LANES;
        }
        scalar::scale(&mut dst[n2..], &src[n2..], s);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn scale_in_place(dst: &mut [f64], s: f64) {
        let n2 = dst.len() & !(LANES - 1);
        let vs = vdupq_n_f64(s);
        let mut i = 0;
        while i < n2 {
            let x = vld1q_f64(dst.as_ptr().add(i));
            vst1q_f64(dst.as_mut_ptr().add(i), vmulq_f64(x, vs));
            i += LANES;
        }
        scalar::scale_in_place(&mut dst[n2..], s);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn add(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n2 = dst.len() & !(LANES - 1);
        let mut i = 0;
        while i < n2 {
            let x = vld1q_f64(a.as_ptr().add(i));
            let y = vld1q_f64(b.as_ptr().add(i));
            vst1q_f64(dst.as_mut_ptr().add(i), vaddq_f64(x, y));
            i += LANES;
        }
        scalar::add(&mut dst[n2..], &a[n2..], &b[n2..]);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn triad(dst: &mut [f64], a: &[f64], b: &[f64], s: f64) {
        let n2 = dst.len() & !(LANES - 1);
        let vs = vdupq_n_f64(s);
        let mut i = 0;
        while i < n2 {
            let x = vld1q_f64(a.as_ptr().add(i));
            let y = vld1q_f64(b.as_ptr().add(i));
            let t = vmulq_f64(vs, y);
            vst1q_f64(dst.as_mut_ptr().add(i), vaddq_f64(x, t));
            i += LANES;
        }
        scalar::triad(&mut dst[n2..], &a[n2..], &b[n2..], s);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(y: &mut [f64], x: &[f64], a: f64) {
        let n2 = y.len() & !(LANES - 1);
        let va = vdupq_n_f64(a);
        let mut i = 0;
        while i < n2 {
            let xv = vld1q_f64(x.as_ptr().add(i));
            let yv = vld1q_f64(y.as_ptr().add(i));
            let t = vmulq_f64(va, xv);
            vst1q_f64(y.as_mut_ptr().add(i), vaddq_f64(yv, t));
            i += LANES;
        }
        scalar::axpy(&mut y[n2..], &x[n2..], a);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn xpby(y: &mut [f64], x: &[f64], b: f64) {
        let n2 = y.len() & !(LANES - 1);
        let vb = vdupq_n_f64(b);
        let mut i = 0;
        while i < n2 {
            let xv = vld1q_f64(x.as_ptr().add(i));
            let yv = vld1q_f64(y.as_ptr().add(i));
            let t = vmulq_f64(vb, yv);
            vst1q_f64(y.as_mut_ptr().add(i), vaddq_f64(xv, t));
            i += LANES;
        }
        scalar::xpby(&mut y[n2..], &x[n2..], b);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn scale_div(dst: &mut [f64], src: &[f64], d: f64) {
        let n2 = dst.len() & !(LANES - 1);
        let vd = vdupq_n_f64(d);
        let mut i = 0;
        while i < n2 {
            let x = vld1q_f64(src.as_ptr().add(i));
            vst1q_f64(dst.as_mut_ptr().add(i), vdivq_f64(x, vd));
            i += LANES;
        }
        scalar::scale_div(&mut dst[n2..], &src[n2..], d);
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n4 = a.len() & !3;
        let mut acc01 = vdupq_n_f64(0.0);
        let mut acc23 = vdupq_n_f64(0.0);
        let mut i = 0;
        while i < n4 {
            let x0 = vld1q_f64(a.as_ptr().add(i));
            let y0 = vld1q_f64(b.as_ptr().add(i));
            acc01 = vaddq_f64(acc01, vmulq_f64(x0, y0));
            let x1 = vld1q_f64(a.as_ptr().add(i + 2));
            let y1 = vld1q_f64(b.as_ptr().add(i + 2));
            acc23 = vaddq_f64(acc23, vmulq_f64(x1, y1));
            i += 4;
        }
        let mut acc = [
            vgetq_lane_f64::<0>(acc01),
            vgetq_lane_f64::<1>(acc01),
            vgetq_lane_f64::<0>(acc23),
            vgetq_lane_f64::<1>(acc23),
        ];
        scalar::dot_tail(&mut acc, &a[n4..], &b[n4..]);
        scalar::dot_combine(acc)
    }

    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn update4(
        c: &mut [f64],
        b0: &[f64],
        b1: &[f64],
        b2: &[f64],
        b3: &[f64],
        a0: f64,
        a1: f64,
        a2: f64,
        a3: f64,
    ) {
        let n2 = c.len() & !(LANES - 1);
        let va0 = vdupq_n_f64(a0);
        let va1 = vdupq_n_f64(a1);
        let va2 = vdupq_n_f64(a2);
        let va3 = vdupq_n_f64(a3);
        let mut i = 0;
        while i < n2 {
            let t0 = vmulq_f64(va0, vld1q_f64(b0.as_ptr().add(i)));
            let t1 = vmulq_f64(va1, vld1q_f64(b1.as_ptr().add(i)));
            let t2 = vmulq_f64(va2, vld1q_f64(b2.as_ptr().add(i)));
            let t3 = vmulq_f64(va3, vld1q_f64(b3.as_ptr().add(i)));
            let s = vaddq_f64(vaddq_f64(vaddq_f64(t0, t1), t2), t3);
            let cv = vld1q_f64(c.as_ptr().add(i));
            vst1q_f64(c.as_mut_ptr().add(i), vaddq_f64(cv, s));
            i += LANES;
        }
        scalar::update4(&mut c[n2..], &b0[n2..], &b1[n2..], &b2[n2..], &b3[n2..], a0, a1, a2, a3);
    }

    /// The fused tile kernel as its scalar definition spells it: k-quad
    /// [`update4`] passes then [`axpy`] singles over full rows, with
    /// the vector bodies above. Register-tiling the C row buys little
    /// at 2 lanes, so the NEON kernel keeps the simple shape.
    #[target_feature(enable = "neon")]
    pub unsafe fn tile_row_update(c: &mut [f64], bt: &[f64], a: &[f64], alpha: f64) {
        let jw = c.len();
        let kw = a.len();
        let mut kk = 0;
        while kk + 4 <= kw {
            let a0 = alpha * a[kk];
            let a1 = alpha * a[kk + 1];
            let a2 = alpha * a[kk + 2];
            let a3 = alpha * a[kk + 3];
            let (b0, rest) = bt[kk * jw..].split_at(jw);
            let (b1, rest) = rest.split_at(jw);
            let (b2, rest) = rest.split_at(jw);
            update4(c, b0, b1, b2, &rest[..jw], a0, a1, a2, a3);
            kk += 4;
        }
        while kk < kw {
            axpy(c, &bt[kk * jw..kk * jw + jw], alpha * a[kk]);
            kk += 1;
        }
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn sub2(row: &mut [f64], u0: &[f64], u1: &[f64], m0: f64, m1: f64) {
        let n2 = row.len() & !(LANES - 1);
        let vm0 = vdupq_n_f64(m0);
        let vm1 = vdupq_n_f64(m1);
        let mut i = 0;
        while i < n2 {
            let t0 = vmulq_f64(vm0, vld1q_f64(u0.as_ptr().add(i)));
            let t1 = vmulq_f64(vm1, vld1q_f64(u1.as_ptr().add(i)));
            let s = vaddq_f64(t0, t1);
            let r = vld1q_f64(row.as_ptr().add(i));
            vst1q_f64(row.as_mut_ptr().add(i), vsubq_f64(r, s));
            i += LANES;
        }
        scalar::sub2(&mut row[n2..], &u0[n2..], &u1[n2..], m0, m1);
    }

    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn stencil7(
        out: &mut [f64],
        v: &[f64],
        uc: &[f64],
        uxm: &[f64],
        uxp: &[f64],
        uym: &[f64],
        uyp: &[f64],
        uzm: &[f64],
        uzp: &[f64],
    ) {
        let n2 = out.len() & !(LANES - 1);
        let six = vdupq_n_f64(6.0);
        let mut i = 0;
        while i < n2 {
            let mut au = vmulq_f64(six, vld1q_f64(uc.as_ptr().add(i)));
            au = vsubq_f64(au, vld1q_f64(uxm.as_ptr().add(i)));
            au = vsubq_f64(au, vld1q_f64(uxp.as_ptr().add(i)));
            au = vsubq_f64(au, vld1q_f64(uym.as_ptr().add(i)));
            au = vsubq_f64(au, vld1q_f64(uyp.as_ptr().add(i)));
            au = vsubq_f64(au, vld1q_f64(uzm.as_ptr().add(i)));
            au = vsubq_f64(au, vld1q_f64(uzp.as_ptr().add(i)));
            let vv = vld1q_f64(v.as_ptr().add(i));
            vst1q_f64(out.as_mut_ptr().add(i), vsubq_f64(vv, au));
            i += LANES;
        }
        scalar::stencil7(
            &mut out[n2..],
            &v[n2..],
            &uc[n2..],
            &uxm[n2..],
            &uxp[n2..],
            &uym[n2..],
            &uyp[n2..],
            &uzm[n2..],
            &uzp[n2..],
        );
    }

    #[target_feature(enable = "neon")]
    pub unsafe fn butterfly(lo: &mut [C64], hi: &mut [C64], tw: &[C64], conj: bool) {
        // One complex ([re, im]) per 128-bit vector. C64 is #[repr(C)],
        // so a C64 pointer is a pair-of-f64 pointer.
        let half = lo.len();
        // Conjugation flips the sign bit of the imaginary lane; the
        // addsub shape negates the real lane of the cross term — both
        // are xor with a sign mask, and IEEE `a − b ≡ a + (−b)` bitwise.
        let conj_mask = if conj {
            vreinterpretq_u64_f64(vld1q_f64([0.0f64, -0.0].as_ptr()))
        } else {
            vreinterpretq_u64_f64(vdupq_n_f64(0.0))
        };
        let neg_re = vreinterpretq_u64_f64(vld1q_f64([-0.0f64, 0.0].as_ptr()));
        let lp = lo.as_mut_ptr() as *mut f64;
        let hp = hi.as_mut_ptr() as *mut f64;
        let tp = tw.as_ptr() as *const f64;
        for k in 0..half {
            let w = vreinterpretq_f64_u64(veorq_u64(
                vreinterpretq_u64_f64(vld1q_f64(tp.add(2 * k))),
                conj_mask,
            ));
            let h = vld1q_f64(hp.add(2 * k));
            let l = vld1q_f64(lp.add(2 * k));
            // v = h·w: [h.re·w.re − h.im·w.im, h.im·w.re + h.re·w.im],
            // lane order exactly as the scalar expressions.
            let wre = vdupq_laneq_f64::<0>(w);
            let wim = vdupq_laneq_f64::<1>(w);
            let hswap = vextq_f64::<1>(h, h);
            let cross = vreinterpretq_f64_u64(veorq_u64(
                vreinterpretq_u64_f64(vmulq_f64(hswap, wim)),
                neg_re,
            ));
            let v = vaddq_f64(vmulq_f64(h, wre), cross);
            vst1q_f64(lp.add(2 * k), vaddq_f64(l, v));
            vst1q_f64(hp.add(2 * k), vsubq_f64(l, v));
        }
    }
}

/// Stubs so the dispatch macro's module-path arms name-resolve on
/// architectures where the matching arm is `cfg`'d out before it can
/// be called.
#[cfg(not(target_arch = "x86_64"))]
mod avx2 {}
#[cfg(not(target_arch = "x86_64"))]
mod fma {}
#[cfg(not(target_arch = "x86_64"))]
mod avx512 {}
#[cfg(not(target_arch = "aarch64"))]
mod neon {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::NpbRng;

    fn vecs(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = NpbRng::new(seed);
        let a = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let b = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        let c = (0..len).map(|_| rng.next_f64() - 0.5).collect();
        (a, b, c)
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// The bitwise modes compared against scalar in the equality tests
    /// below. On hardware missing an ISA the dispatch arm degrades to
    /// a lower bitwise tier, so each comparison is vacuous-but-true
    /// there and a real cross-ISA check where the silicon exists.
    const BITWISE_VECTOR_MODES: [SimdMode; 3] = [SimdMode::Avx2, SimdMode::Avx512, SimdMode::Neon];

    #[test]
    fn mode_resolves_to_a_runnable_path() {
        let m = mode();
        match m {
            SimdMode::Avx2 => assert!(avx2_available()),
            SimdMode::Fma => assert!(fma_available()),
            SimdMode::Avx512 => assert!(avx512_available()),
            SimdMode::Neon => assert!(neon_available()),
            SimdMode::Scalar => {}
        }
    }

    #[test]
    fn requested_tiers_degrade_down_the_ladder() {
        if std::env::var("HPCEVAL_SIMD").is_ok() {
            return; // the env pin overrides the scoped request by design
        }
        let expect_x86_fallback = if avx2_available() { SimdMode::Avx2 } else { SimdMode::Scalar };
        with_mode(SimdMode::Fma, || {
            let want = if fma_available() { SimdMode::Fma } else { expect_x86_fallback };
            assert_eq!(mode(), want);
        });
        with_mode(SimdMode::Avx512, || {
            let want = if avx512_available() { SimdMode::Avx512 } else { expect_x86_fallback };
            assert_eq!(mode(), want);
        });
        with_mode(SimdMode::Neon, || {
            let want = if neon_available() { SimdMode::Neon } else { SimdMode::Scalar };
            assert_eq!(mode(), want);
        });
    }

    #[test]
    fn tier_labels_and_bitwise_flags() {
        for (m, label, bitwise) in [
            (SimdMode::Scalar, "scalar", true),
            (SimdMode::Avx2, "avx2", true),
            (SimdMode::Fma, "fma", false),
            (SimdMode::Avx512, "avx512", true),
            (SimdMode::Neon, "neon", true),
        ] {
            assert_eq!(m.label(), label);
            assert_eq!(m.bitwise(), bitwise);
        }
    }

    #[test]
    fn with_mode_scopes_and_restores() {
        if std::env::var("HPCEVAL_SIMD").is_ok() {
            return; // the env pin overrides the scoped request by design
        }
        let outer = mode();
        with_mode(SimdMode::Scalar, || assert_eq!(mode(), SimdMode::Scalar));
        assert_eq!(mode(), outer);
    }

    #[test]
    fn elementwise_ops_bitwise_equal_across_paths() {
        // Odd length exercises every tail; the contract holds anyway.
        for len in [1, 3, 4, 7, 16, 61, 256] {
            let (a, b, c0) = vecs(len, 42 + len as u64);
            let pair = |f: &dyn Fn(SimdMode) -> Vec<f64>, v: SimdMode| (f(SimdMode::Scalar), f(v));
            let ops: Vec<Box<dyn Fn(SimdMode) -> Vec<f64>>> = vec![
                Box::new(|m| {
                    let mut d = c0.clone();
                    scale(m, &mut d, &a, 1.7);
                    d
                }),
                Box::new(|m| {
                    let mut d = c0.clone();
                    scale_in_place(m, &mut d, -0.3);
                    d
                }),
                Box::new(|m| {
                    let mut d = c0.clone();
                    add(m, &mut d, &a, &b);
                    d
                }),
                Box::new(|m| {
                    let mut d = c0.clone();
                    triad(m, &mut d, &a, &b, 3.0);
                    d
                }),
                Box::new(|m| {
                    let mut d = c0.clone();
                    axpy(m, &mut d, &a, -2.25);
                    d
                }),
                Box::new(|m| {
                    let mut d = c0.clone();
                    xpby(m, &mut d, &a, 0.9);
                    d
                }),
                Box::new(|m| {
                    let mut d = c0.clone();
                    scale_div(m, &mut d, &a, 1.3);
                    d
                }),
            ];
            for op in &ops {
                for vm in BITWISE_VECTOR_MODES {
                    let (s, v) = pair(&**op, vm);
                    assert_eq!(bits(&s), bits(&v), "len {len} mode {vm:?}");
                }
            }
        }
    }

    #[test]
    fn dot_bitwise_equal_across_paths() {
        for len in [0, 1, 2, 3, 4, 5, 8, 31, 4096, 4099] {
            let (a, b, _) = vecs(len, 7 + len as u64);
            let s = dot(SimdMode::Scalar, &a, &b);
            for vm in BITWISE_VECTOR_MODES {
                let v = dot(vm, &a, &b);
                assert_eq!(s.to_bits(), v.to_bits(), "len {len} mode {vm:?}");
            }
        }
    }

    #[test]
    fn update4_and_sub2_bitwise_equal_across_paths() {
        for len in [1, 4, 6, 48, 50] {
            let (b0, b1, mut c) = vecs(len, 100 + len as u64);
            let (b2, b3, _) = vecs(len, 200 + len as u64);
            let c0 = c.clone();
            update4(SimdMode::Scalar, &mut c, &b0, &b1, &b2, &b3, 1.1, -0.2, 0.7, 2.0);
            let s = c.clone();
            for vm in BITWISE_VECTOR_MODES {
                c = c0.clone();
                update4(vm, &mut c, &b0, &b1, &b2, &b3, 1.1, -0.2, 0.7, 2.0);
                assert_eq!(bits(&s), bits(&c), "update4 len {len} mode {vm:?}");
            }

            let mut r = c0.clone();
            sub2(SimdMode::Scalar, &mut r, &b0, &b1, 0.6, -1.4);
            let s = r.clone();
            for vm in BITWISE_VECTOR_MODES {
                r = c0.clone();
                sub2(vm, &mut r, &b0, &b1, 0.6, -1.4);
                assert_eq!(bits(&s), bits(&r), "sub2 len {len} mode {vm:?}");
            }
        }
    }

    /// The fused tile kernel must be bitwise the k-quad/axpy call
    /// sequence it documents, on both paths, at every jw/kw shape —
    /// including column tails (jw mod 8, jw mod 4), k singles
    /// (kw mod 4) and k blocks past the AVX2 stack-buffer size (kw 70).
    #[test]
    fn tile_row_update_bitwise_equals_quad_sequence_across_paths() {
        for &(kw, jw) in
            &[(1usize, 1usize), (3, 5), (4, 4), (4, 11), (5, 8), (7, 12), (48, 48), (70, 13)]
        {
            let mut rng = NpbRng::new((kw * 131 + jw) as u64);
            let bt: Vec<f64> = (0..kw * jw).map(|_| rng.next_f64() - 0.5).collect();
            let a: Vec<f64> = (0..kw).map(|_| rng.next_f64() - 0.5).collect();
            let c0: Vec<f64> = (0..jw).map(|_| rng.next_f64() - 0.5).collect();
            let alpha = 1.3;

            // Reference: the documented update4/axpy sequence.
            let mut want = c0.clone();
            let mut kk = 0;
            while kk + 4 <= kw {
                let rows: Vec<&[f64]> =
                    (0..4).map(|q| &bt[(kk + q) * jw..(kk + q + 1) * jw]).collect();
                update4(
                    SimdMode::Scalar,
                    &mut want,
                    rows[0],
                    rows[1],
                    rows[2],
                    rows[3],
                    alpha * a[kk],
                    alpha * a[kk + 1],
                    alpha * a[kk + 2],
                    alpha * a[kk + 3],
                );
                kk += 4;
            }
            while kk < kw {
                axpy(SimdMode::Scalar, &mut want, &bt[kk * jw..(kk + 1) * jw], alpha * a[kk]);
                kk += 1;
            }

            for m in [SimdMode::Scalar, SimdMode::Avx2, SimdMode::Avx512, SimdMode::Neon] {
                let mut c = c0.clone();
                tile_row_update(m, &mut c, &bt, &a, alpha);
                assert_eq!(bits(&want), bits(&c), "kw {kw} jw {jw} mode {:?}", m);
            }
        }
    }

    #[test]
    fn butterfly_bitwise_equal_across_paths_and_legacy_mul() {
        for half in [1usize, 2, 3, 8, 17] {
            let mut rng = NpbRng::new(half as u64 + 5);
            let mk = |rng: &mut NpbRng| {
                (0..half)
                    .map(|_| C64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
                    .collect::<Vec<_>>()
            };
            let lo0 = mk(&mut rng);
            let hi0 = mk(&mut rng);
            let tw = mk(&mut rng);
            for conj in [false, true] {
                let run = |m: SimdMode| {
                    let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                    butterfly(m, &mut lo, &mut hi, &tw, conj);
                    (lo, hi)
                };
                let (slo, shi) = run(SimdMode::Scalar);
                for vm in BITWISE_VECTOR_MODES {
                    let (tlo, thi) = run(vm);
                    for k in 0..half {
                        assert_eq!(slo[k].re.to_bits(), tlo[k].re.to_bits(), "{vm:?} {half} {k}");
                        assert_eq!(slo[k].im.to_bits(), tlo[k].im.to_bits(), "{vm:?} {half} {k}");
                        assert_eq!(shi[k].re.to_bits(), thi[k].re.to_bits(), "{vm:?} {half} {k}");
                        assert_eq!(shi[k].im.to_bits(), thi[k].im.to_bits(), "{vm:?} {half} {k}");
                    }
                }
                let (vlo, vhi) = run(SimdMode::Avx2);
                for k in 0..half {
                    assert_eq!(slo[k].re.to_bits(), vlo[k].re.to_bits(), "half {half} k {k}");
                    assert_eq!(slo[k].im.to_bits(), vlo[k].im.to_bits(), "half {half} k {k}");
                    assert_eq!(shi[k].re.to_bits(), vhi[k].re.to_bits(), "half {half} k {k}");
                    assert_eq!(shi[k].im.to_bits(), vhi[k].im.to_bits(), "half {half} k {k}");
                    // And both match the legacy C64::mul butterfly bitwise
                    // (the im sum is commuted, which IEEE addition absorbs).
                    let w = if conj { C64::new(tw[k].re, -tw[k].im) } else { tw[k] };
                    let v = hi0[k].mul(w);
                    let l = lo0[k].add(v);
                    let h = lo0[k].sub(v);
                    assert_eq!(slo[k].re.to_bits(), l.re.to_bits());
                    assert_eq!(slo[k].im.to_bits(), l.im.to_bits());
                    assert_eq!(shi[k].re.to_bits(), h.re.to_bits());
                    assert_eq!(shi[k].im.to_bits(), h.im.to_bits());
                }
            }
        }
    }

    /// Smoke check of the fma tolerance contract (the property suite
    /// sweeps shapes): every fused op lands within the documented
    /// componentwise bound of scalar. On hardware without FMA the
    /// dispatch arm degrades to a bitwise tier and the diffs are zero.
    #[test]
    fn fma_tier_tracks_scalar_within_tolerance() {
        let eps = f64::EPSILON;
        for len in [1usize, 3, 7, 32, 61, 255] {
            let (a, b, c0) = vecs(len, 900 + len as u64);
            // axpy: 2 roundings per element on each path.
            let mut s = c0.clone();
            axpy(SimdMode::Scalar, &mut s, &a, 1.75);
            let mut f = c0.clone();
            axpy(SimdMode::Fma, &mut f, &a, 1.75);
            for i in 0..len {
                let scale = c0[i].abs() + (1.75 * a[i]).abs();
                assert!((f[i] - s[i]).abs() <= 2.0 * eps * scale, "axpy len {len} i {i}");
            }
            // dot: 2·len + 2 roundings against the magnitude sum.
            let sd = dot(SimdMode::Scalar, &a, &b);
            let fd = dot(SimdMode::Fma, &a, &b);
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let bound = (2 * len + 2) as f64 * eps * mag;
            assert!((fd - sd).abs() <= bound, "dot len {len}: {fd} vs {sd}");
        }
        // tile_row_update: kw-deep accumulation per element.
        for &(kw, jw) in &[(5usize, 9usize), (48, 48), (70, 37)] {
            let mut rng = NpbRng::new((kw * 977 + jw) as u64);
            let bt: Vec<f64> = (0..kw * jw).map(|_| rng.next_f64() - 0.5).collect();
            let a: Vec<f64> = (0..kw).map(|_| rng.next_f64() - 0.5).collect();
            let c0: Vec<f64> = (0..jw).map(|_| rng.next_f64() - 0.5).collect();
            let mut s = c0.clone();
            tile_row_update(SimdMode::Scalar, &mut s, &bt, &a, 1.3);
            let mut f = c0.clone();
            tile_row_update(SimdMode::Fma, &mut f, &bt, &a, 1.3);
            for j in 0..jw {
                let scale: f64 =
                    c0[j].abs() + (0..kw).map(|k| (1.3 * a[k] * bt[k * jw + j]).abs()).sum::<f64>();
                let bound = (2 * kw + 2) as f64 * f64::EPSILON * scale;
                assert!((f[j] - s[j]).abs() <= bound, "tile kw {kw} jw {jw} j {j}");
            }
        }
    }

    #[test]
    fn strided_dot_tracks_serial_dot() {
        let (a, b, _) = vecs(1001, 9);
        let strided = dot(SimdMode::Scalar, &a, &b);
        let serial = dot_serial(&a, &b);
        let bound: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum::<f64>()
            * f64::EPSILON
            * a.len() as f64;
        assert!((strided - serial).abs() <= bound, "{strided} vs {serial}");
    }
}
