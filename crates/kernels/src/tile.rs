//! Cache-geometry DGEMM tile autotuner.
//!
//! Replaces the hard-coded 48×48 blocking of the original multiply
//! with MC/KC/NC derived from a [`ServerSpec`] cache hierarchy by a
//! **deterministic closed form** — no timing at plan time, so
//! width-invariance and trace replayability survive. The working-set
//! model follows the micro-kernel's actual reuse structure, which has
//! no multi-row register blocking: `simd::tile_row_update` streams the
//! *entire* packed `KC×NC` B tile once per C row, so the tile is
//! re-read `MC` times per panel and must live in **L1d**, not L2 —
//! an L2-resident tile measurably halves vector throughput. Hence:
//!
//! * the packed `KC×NC` B tile gets **5/8 of L1d** (at the 32 KiB
//!   reference geometry this reproduces exactly the empirically strong
//!   legacy 48×48 tile), leaving the A row slice, the C row and
//!   working margin the rest of the set;
//! * the `MC×KC` A panel slice is held to **an eighth of the per-core
//!   L2** so it streams beside the packed array without evicting the
//!   next tiles, and MC is further capped at 64 rows to keep enough
//!   row panels for the parallel loop at bench sizes.
//!
//! The closed form (clamped, rounded to the contract's granularities),
//! with B = 5·L1/64 the tile budget in f64 elements:
//!
//! ```text
//! KC = min(⌊√B⌋₄, 256)                (square-ish B tile, ≤ 256 deep)
//! NC = min(⌊B/KC⌋₈, 512)
//! MC = clamp(⌊L2/(64·KC)⌋₄, 8, 64)
//! ```
//!
//! with L1/L2 in bytes per core and `⌊x⌋ₙ` rounding down to a multiple
//! of n. **KC is always a multiple of 4**, which is what makes the
//! autotuner bitwise-neutral: `simd::tile_row_update` groups k into
//! quads while `kk + 4 ≤ kw` and singles after, so as long as every
//! interior tile depth is ≡ 0 (mod 4) and k tiles are walked in
//! ascending order, the global quad/single grouping — and therefore
//! every per-element expression — is identical for *any* KC. NC and MC
//! only repartition which elements a call touches, never the
//! arithmetic on an element. The determinism suite pins this with a
//! plan-invariance bitwise test.
//!
//! The **default plan** is pinned to a documented reference geometry
//! (32 KiB L1d, 256 KiB per-core L2 — Table I's Xeon X7560-class
//! private L2, also the paper's Xeon-4870 per-core shape) rather than
//! probed from the host, so captured traces and recorded benchmarks
//! replay identically everywhere. `HPCEVAL_SPEC=<preset name>` pins
//! the plan to one of the paper servers' hierarchies instead (read
//! once, like `HPCEVAL_SIMD`).

use std::sync::OnceLock;

use hpceval_machine::presets;
use hpceval_machine::spec::ServerSpec;

/// Reference L1d capacity (bytes) of the default plan's geometry.
pub const REFERENCE_L1D_BYTES: u64 = 32 * 1024;
/// Reference per-core L2 capacity (bytes) of the default plan's
/// geometry.
pub const REFERENCE_L2_BYTES: u64 = 256 * 1024;

/// A DGEMM blocking plan: row-panel height, tile depth, tile width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// C/A row-panel height (rows per parallel panel), multiple of 4.
    pub mc: usize,
    /// Packed-tile k depth, multiple of 4 (the bitwise-neutrality
    /// granularity of the quad-grouped micro-kernel).
    pub kc: usize,
    /// Packed-tile column width, multiple of 8 (two full AVX2
    /// accumulator chains per pass).
    pub nc: usize,
}

/// Round `x` down to a multiple of `g`, but never below `g`.
fn round_down(x: u64, g: u64) -> u64 {
    (x / g).max(1) * g
}

/// Integer square root (floor), monotone and exact for u64.
fn isqrt(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).sqrt() as u64;
    // The float estimate can be off by one in either direction.
    while r * r > x {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    r
}

impl TilePlan {
    /// The closed-form pick for a cache geometry, in bytes per core.
    /// Total and deterministic: degenerate inputs are clamped up to a
    /// 4 KiB L1 / 16 KiB L2 floor before the formula applies, so the
    /// feasibility invariants below hold for every input.
    pub fn for_geometry(l1d_bytes: u64, l2_bytes: u64) -> Self {
        let l1 = l1d_bytes.max(4 * 1024);
        let l2 = l2_bytes.max(16 * 1024);
        // B-tile budget in f64 elements: 5/8 of L1d. The micro-kernel
        // re-streams the whole packed tile for every C row, so this is
        // the working set that must stay L1-resident; the remaining
        // 3/8 covers the A row slice, the C row and incidental lines.
        let budget = 5 * (l1 / 8) / 8;
        let kc = round_down(isqrt(budget), 4).min(256);
        let nc = round_down(budget / kc, 8).min(512);
        let mc = round_down(l2 / (64 * kc), 4).clamp(8, 64);
        Self { mc: mc as usize, kc: kc as usize, nc: nc as usize }
    }

    /// The pick for a server's cache hierarchy (L1d and L2 taken per
    /// core; L3 does not enter the two-level working-set model).
    pub fn for_spec(spec: &ServerSpec) -> Self {
        Self::for_geometry(spec.l1d.bytes_per_core(), spec.l2.bytes_per_core())
    }

    /// The process-wide plan every default-constructed
    /// [`crate::hpcc::dgemm::DgemmWorkspace`] uses: the
    /// `HPCEVAL_SPEC` preset's hierarchy if the pin is set and names a
    /// known server, else the reference geometry. Resolved once.
    pub fn active() -> Self {
        static ACTIVE: OnceLock<TilePlan> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            std::env::var("HPCEVAL_SPEC")
                .ok()
                .and_then(|name| presets::by_name(name.trim()))
                .map(|spec| Self::for_spec(&spec))
                .unwrap_or_else(|| Self::for_geometry(REFERENCE_L1D_BYTES, REFERENCE_L2_BYTES))
        })
    }

    /// Elements of one packed tile slot (`kc·nc`).
    pub fn tile_elems(&self) -> usize {
        self.kc * self.nc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_plan_is_the_documented_pick() {
        // 5·32768/64 = 2560 element budget → ⌊√2560⌋₄ = 48, 2560/48
        // rounds to 48: the reference geometry reproduces the legacy
        // hand-tuned 48×48 tile exactly, with a 64-row panel.
        let p = TilePlan::for_geometry(REFERENCE_L1D_BYTES, REFERENCE_L2_BYTES);
        assert_eq!(p, TilePlan { mc: 64, kc: 48, nc: 48 });
    }

    #[test]
    fn preset_plans_fit_their_hierarchies() {
        for spec in presets::all_servers() {
            let p = TilePlan::for_spec(&spec);
            let l1 = spec.l1d.bytes_per_core();
            let l2 = spec.l2.bytes_per_core();
            assert_eq!(p.kc % 4, 0, "{}", spec.name);
            assert_eq!(p.nc % 8, 0, "{}", spec.name);
            assert_eq!(p.mc % 4, 0, "{}", spec.name);
            assert!((p.kc * p.nc * 8) as u64 <= 5 * l1 / 8, "{}: B tile vs L1d", spec.name);
            assert!((p.mc * p.kc * 8) as u64 <= l2 / 8, "{}: A panel vs L2", spec.name);
            assert!(((p.kc + p.nc) * 8) as u64 <= l1 / 4, "{}: row slices vs L1", spec.name);
        }
    }

    #[test]
    fn picks_are_deterministic_across_calls() {
        for spec in presets::all_servers() {
            assert_eq!(TilePlan::for_spec(&spec), TilePlan::for_spec(&spec));
        }
        assert_eq!(TilePlan::active(), TilePlan::active());
    }

    #[test]
    fn isqrt_is_exact_floor() {
        for x in [0u64, 1, 2, 3, 4, 15, 16, 17, 255, 256, 1 << 40, (1 << 40) + 1] {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "x={x} r={r}");
        }
    }
}
