//! The NPB pseudo-random number generator.
//!
//! NPB specifies a linear congruential generator
//! `x_{k+1} = a · x_k (mod 2^46)` with `a = 5^13 = 1220703125` and default
//! seed `271828183`, returning `x_k · 2^-46 ∈ (0, 1)`. EP, CG, FT and IS
//! all draw their inputs from this generator, and EP's parallel
//! decomposition depends on the O(log k) *jump-ahead* (computing `a^k mod
//! 2^46` by repeated squaring) so every process can position its stream
//! independently — which is also what makes our parallel runs bitwise
//! reproducible.

/// Multiplier `a = 5^13` from the NPB specification.
pub const NPB_A: u64 = 1_220_703_125;
/// Default seed used by EP and the other NPB kernels.
pub const NPB_SEED: u64 = 271_828_183;
/// Modulus 2^46.
pub const MOD46: u64 = 1 << 46;
const MASK46: u64 = MOD46 - 1;
const R46: f64 = 1.0 / (1u64 << 46) as f64;

/// NPB linear congruential generator over 46-bit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpbRng {
    state: u64,
    mult: u64,
}

impl NpbRng {
    /// Generator with the standard multiplier and the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed & MASK46, mult: NPB_A }
    }

    /// Generator with the NPB default seed.
    pub fn default_seed() -> Self {
        Self::new(NPB_SEED)
    }

    /// Current 46-bit state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next uniform deviate in (0, 1) — NPB's `randlc`.
    pub fn next_f64(&mut self) -> f64 {
        self.state = mul46(self.state, self.mult);
        self.state as f64 * R46
    }

    /// Fill `out` with uniform deviates — NPB's `vranlc`.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.next_f64();
        }
    }

    /// Skip `k` draws in O(log k) — the basis of EP's parallel streams.
    pub fn jump(&mut self, k: u64) {
        self.state = mul46(self.state, pow46(self.mult, k));
    }

    /// A generator positioned `k` draws after `self` without advancing
    /// `self`.
    pub fn at_offset(&self, k: u64) -> Self {
        let mut c = *self;
        c.jump(k);
        c
    }
}

/// `(x · y) mod 2^46` without overflow.
#[inline]
fn mul46(x: u64, y: u64) -> u64 {
    ((u128::from(x) * u128::from(y)) & u128::from(MASK46)) as u64
}

/// `a^k mod 2^46` by binary exponentiation.
fn pow46(a: u64, mut k: u64) -> u64 {
    let mut base = a & MASK46;
    let mut acc: u64 = 1;
    while k > 0 {
        if k & 1 == 1 {
            acc = mul46(acc, base);
        }
        base = mul46(base, base);
        k >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviates_in_open_unit_interval() {
        let mut rng = NpbRng::default_seed();
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!(v > 0.0 && v < 1.0, "{v}");
        }
    }

    #[test]
    fn jump_matches_sequential_draws() {
        for k in [0u64, 1, 2, 7, 100, 12345] {
            let mut seq = NpbRng::default_seed();
            for _ in 0..k {
                seq.next_f64();
            }
            let mut jumped = NpbRng::default_seed();
            jumped.jump(k);
            assert_eq!(seq.state(), jumped.state(), "k={k}");
        }
    }

    #[test]
    fn at_offset_does_not_advance_original() {
        let rng = NpbRng::default_seed();
        let s0 = rng.state();
        let _ = rng.at_offset(1000);
        assert_eq!(rng.state(), s0);
    }

    #[test]
    fn mean_is_about_half() {
        let mut rng = NpbRng::default_seed();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn disjoint_streams_reproduce_one_stream() {
        // Two half-streams via jump-ahead == one full stream.
        let n = 1000u64;
        let mut full = NpbRng::default_seed();
        let all: Vec<f64> = (0..n).map(|_| full.next_f64()).collect();

        let mut lo = NpbRng::default_seed();
        let mut hi = NpbRng::default_seed();
        hi.jump(n / 2);
        let first: Vec<f64> = (0..n / 2).map(|_| lo.next_f64()).collect();
        let second: Vec<f64> = (0..n / 2).map(|_| hi.next_f64()).collect();

        assert_eq!(&all[..(n / 2) as usize], &first[..]);
        assert_eq!(&all[(n / 2) as usize..], &second[..]);
    }

    #[test]
    fn state_stays_within_46_bits() {
        let mut rng = NpbRng::new(u64::MAX);
        assert!(rng.state() < MOD46);
        for _ in 0..100 {
            rng.next_f64();
            assert!(rng.state() < MOD46);
        }
    }
}
