//! NPB BT — the Block Tri-diagonal pseudo-application.
//!
//! BT solves the compressible Navier–Stokes equations with an
//! Alternating Direction Implicit scheme: each time step performs three
//! sweeps (x, y, z), each solving independent block-tridiagonal systems
//! with 5×5 coupling blocks along every grid line. The square process
//! grid of its MPI "multi-partition" decomposition forces perfect-square
//! process counts — which is why Figs 3/4/12 run bt at 1, 4, 9, 16, 25,
//! 36 processes only.
//!
//! Class grids: A = 64³ / 200 steps, B = 102³ / 200, C = 162³ / 200.
//!
//! The implementation keeps the real solver structure — per-line block
//! Thomas solves in all three directions, rayon-parallel across lines —
//! and verifies by driving a manufactured solution to convergence.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

use super::block5::{block_thomas, vnorm, vsub, Mat5, Vec5};
use super::Class;

// Logical trace addresses for the ADI line solves. Each direction
// sweep is its own epoch; within a sweep the chunk id is the line
// index, whose decomposition never depends on the worker count. The
// 5-vector fields stride 40 bytes per point, the 5×5 diagonal blocks
// 200 — both scaled by 1/n/n² across the x/y/z sweeps.
const TRACE_U: u64 = 0x1_0000_0000;
const TRACE_B: u64 = 0x2_0000_0000;
const TRACE_DIAG: u64 = 0x3_0000_0000;
const TRACE_AU: u64 = 0x4_0000_0000;
/// Bytes per grid point of a [`Vec5`] field.
const VEC5_BYTES: usize = 40;
/// Bytes per grid point of a [`Mat5`] field.
const MAT5_BYTES: usize = 200;

/// Reported flops per grid point per time step (official NPB counts:
/// BT.A = 168,300 Mop over 64³ × 200).
pub const FLOPS_PER_POINT_STEP: f64 = 3200.0;
/// ADI time steps, fixed per the NPB specification.
pub const STEPS: u32 = 200;

/// The BT benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Bt {
    class: Class,
}

impl Bt {
    /// BT at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// Grid edge for the class.
    pub fn edge(&self) -> u64 {
        match self.class {
            Class::W => 24,
            Class::A => 64,
            Class::B => 102,
            Class::C => 162,
        }
    }
}

/// A 3-D field of 5-vectors on an `n³` grid plus the line-solve
/// machinery of one ADI sweep direction.
#[derive(Debug, Clone)]
pub struct AdiProblem {
    /// Grid edge.
    pub n: usize,
    /// Off-diagonal coupling strength (sub/super blocks are −c·I).
    pub coupling: f64,
    /// Per-point diagonal blocks (same for every line direction; the
    /// real code rebuilds them from the flow state each step).
    pub diag: Vec<Mat5>,
}

impl AdiProblem {
    /// Build a diagonally dominant ADI problem on an `n³` grid.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        let coupling = 0.12;
        let diag = (0..n * n * n).map(|_| Mat5::diag_dominant(&mut rng)).collect();
        Self { n, coupling, diag }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }

    /// Apply the full 3-D operator `A·u` (diag blocks + six −c·I
    /// neighbour couplings with zero Dirichlet exterior).
    pub fn apply(&self, u: &[Vec5]) -> Vec<Vec5> {
        let n = self.n;
        (0..u.len())
            .into_par_iter()
            .map(|i| {
                let x = i % n;
                let y = (i / n) % n;
                let z = i / (n * n);
                let mut acc = self.diag[i].matvec(&u[i]);
                let mut nb = |xi: isize, yi: isize, zi: isize| {
                    if xi >= 0
                        && yi >= 0
                        && zi >= 0
                        && (xi as usize) < n
                        && (yi as usize) < n
                        && (zi as usize) < n
                    {
                        let j = self.idx(xi as usize, yi as usize, zi as usize);
                        for c in 0..5 {
                            acc[c] -= self.coupling * u[j][c];
                        }
                    }
                };
                nb(x as isize - 1, y as isize, z as isize);
                nb(x as isize + 1, y as isize, z as isize);
                nb(x as isize, y as isize - 1, z as isize);
                nb(x as isize, y as isize + 1, z as isize);
                nb(x as isize, y as isize, z as isize - 1);
                nb(x as isize, y as isize, z as isize + 1);
                acc
            })
            .collect()
    }

    /// One ADI iteration on `A·u = b`: sweep x, then y, then z. Each
    /// sweep solves, for every grid line, the block-tridiagonal system
    /// formed by the diagonal blocks and the couplings along that line,
    /// with the residual of the other directions on the right-hand side.
    ///
    /// Trace capture (`Region::Bt`): each direction sweep opens a new
    /// epoch and the chunk id is the line index, so the trace is
    /// bitwise width-invariant like the solve itself. A traced line
    /// records its strided reads (the 5×5 diagonal blocks plus the u,
    /// A·u, and b 5-vectors) and the solution write-back; the point
    /// stride jumps from unit (x lines) to `n`/`n²` (y/z lines) —
    /// the locality cliff the replay driver needs to see.
    pub fn adi_step(&self, u: &mut [Vec5], b: &[Vec5]) {
        let n = self.n;
        // The sub/super bands are the same constant −c·I along every
        // line of every sweep; build the band once per step instead of
        // twice per line.
        let off_band: Vec<Mat5> = (0..n).map(|_| Mat5::scaled_identity(-self.coupling)).collect();
        for dir in 0..3 {
            hooks::begin_epoch(Region::Bt);
            let au = self.apply(u);
            // Lines: iterate over the two non-swept coordinates.
            let new_u: Vec<Vec<Vec5>> = (0..n * n)
                .into_par_iter()
                .map(|line| {
                    let (a, c) = (line % n, line / n);
                    let line_idx = |k: usize| match dir {
                        0 => self.idx(k, a, c),
                        1 => self.idx(a, k, c),
                        _ => self.idx(a, c, k),
                    };
                    if hooks::chunk_enabled(Region::Bt, line as u64) {
                        let ch = line as u64;
                        // Per point: the dense 5×5 diagonal block (25
                        // contiguous doubles) and the three 5-vectors.
                        // The across-point jump — unit blocks in the x
                        // sweep, n/n² apart in y/z — shows up in the
                        // successive record bases.
                        for k in 0..n {
                            let i = line_idx(k);
                            let diag_at = TRACE_DIAG + (i * MAT5_BYTES) as u64;
                            let vec_at = (i * VEC5_BYTES) as u64;
                            hooks::record(Region::Bt, ch, AccessKind::Read, diag_at, 8, 25);
                            hooks::record(Region::Bt, ch, AccessKind::Read, TRACE_U + vec_at, 8, 5);
                            hooks::record(
                                Region::Bt,
                                ch,
                                AccessKind::Read,
                                TRACE_AU + vec_at,
                                8,
                                5,
                            );
                            hooks::record(Region::Bt, ch, AccessKind::Read, TRACE_B + vec_at, 8, 5);
                        }
                    }
                    let diag: Vec<Mat5> = (0..n).map(|k| self.diag[line_idx(k)]).collect();
                    // rhs = b − A·u + (line part of A·u): move the line's
                    // own contribution back to the left-hand side.
                    let mut rhs: Vec<Vec5> = (0..n)
                        .map(|k| {
                            let i = line_idx(k);
                            let mut line_contrib = self.diag[i].matvec(&u[i]);
                            if k > 0 {
                                let j = line_idx(k - 1);
                                for comp in 0..5 {
                                    line_contrib[comp] -= self.coupling * u[j][comp];
                                }
                            }
                            if k + 1 < n {
                                let j = line_idx(k + 1);
                                for comp in 0..5 {
                                    line_contrib[comp] -= self.coupling * u[j][comp];
                                }
                            }
                            let mut r = vsub(&b[i], &au[i]);
                            for comp in 0..5 {
                                r[comp] += line_contrib[comp];
                            }
                            r
                        })
                        .collect();
                    let ok = block_thomas(&off_band, &diag, &off_band, &mut rhs);
                    assert!(ok, "diagonally dominant line solve cannot be singular");
                    rhs
                })
                .collect();
            // Scatter the line solutions back.
            for (line, sol) in new_u.into_iter().enumerate() {
                let (a, c) = (line % n, line / n);
                let traced = hooks::chunk_enabled(Region::Bt, line as u64);
                for (k, v) in sol.into_iter().enumerate() {
                    let i = match dir {
                        0 => self.idx(k, a, c),
                        1 => self.idx(a, k, c),
                        _ => self.idx(a, c, k),
                    };
                    if traced {
                        let at = TRACE_U + (i * VEC5_BYTES) as u64;
                        hooks::record(Region::Bt, line as u64, AccessKind::Write, at, 8, 5);
                    }
                    u[i] = v;
                }
            }
        }
    }

    /// `‖b − A·u‖₂` over all points and components.
    pub fn residual_norm(&self, u: &[Vec5], b: &[Vec5]) -> f64 {
        let au = self.apply(u);
        au.iter().zip(b).map(|(x, y)| vnorm(&vsub(y, x)).powi(2)).sum::<f64>().sqrt()
    }
}

impl Benchmark for Bt {
    fn id(&self) -> &'static str {
        "bt"
    }

    fn display_name(&self) -> String {
        format!("bt.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let pts = (self.edge().pow(3)) as f64;
        let flops = FLOPS_PER_POINT_STEP * pts * f64::from(STEPS);
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.1,
            dram_bytes: flops * 0.25,
            footprint_bytes: pts * 600.0, // ~15 five-component arrays
            footprint_per_proc_bytes: 30.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.10,
            cpu_intensity: 0.82,
            kind: ComputeKind::Mixed(0.75),
            locality: LocalityProfile {
                instr_per_op: 1.4,
                accesses_per_instr: 0.38,
                l1_hit: 0.90,
                l2_hit: 0.05,
                l3_hit: 0.02,
                mem: 0.03,
                write_fraction: 0.3,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Square
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 10;
        let prob = AdiProblem::new(n, 20_000_003);
        // Manufactured solution.
        let mut rng = NpbRng::new(31);
        let u_true: Vec<Vec5> = (0..n * n * n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let b = prob.apply(&u_true);
        let mut u = vec![[0.0f64; 5]; n * n * n];
        let r0 = prob.residual_norm(&u, &b);
        for _ in 0..6 {
            prob.adi_step(&mut u, &b);
        }
        let r = prob.residual_norm(&u, &b);
        if r < r0 * 1e-3 {
            VerifyOutcome::pass(
                format!("ADI converged: residual {r0:.3e} -> {r:.3e} in 6 steps"),
                FLOPS_PER_POINT_STEP * (n * n * n) as f64 * 6.0,
            )
        } else {
            VerifyOutcome::fail(format!("ADI stalled: {r0:.3e} -> {r:.3e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_of_zero_is_zero() {
        let p = AdiProblem::new(4, 1);
        let u = vec![[0.0; 5]; 64];
        let au = p.apply(&u);
        assert!(au.iter().all(|v| vnorm(v) == 0.0));
    }

    #[test]
    fn adi_reduces_residual_monotonically() {
        let n = 6;
        let p = AdiProblem::new(n, 77);
        let mut rng = NpbRng::new(3);
        let b: Vec<Vec5> = (0..n * n * n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let mut u = vec![[0.0; 5]; n * n * n];
        let mut last = p.residual_norm(&u, &b);
        for step in 0..4 {
            p.adi_step(&mut u, &b);
            let r = p.residual_norm(&u, &b);
            assert!(r < last, "step {step}: {r} !< {last}");
            last = r;
        }
    }

    #[test]
    fn verify_passes() {
        let out = Bt::new(Class::C).verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn class_flops_match_official_counts() {
        // BT.A ≈ 1.68e11 (official 168,300 Mop).
        let sig = Bt::new(Class::A).signature();
        assert!((sig.reported_flops - 1.68e11).abs() / 1.68e11 < 0.01);
    }

    #[test]
    fn signature_is_compute_leaning() {
        let sig = Bt::new(Class::C).signature();
        assert!(sig.arithmetic_intensity() > 1.0);
        assert!(sig.cpu_intensity > 0.8, "BT sits near HPL in the power figures");
    }
}
