//! NPB FT — the 3-D fast Fourier Transform kernel.
//!
//! FT solves a 3-D diffusion PDE spectrally: forward-transform an initial
//! random field, evolve it `niter` times by multiplying with Gaussian
//! exponential factors, inverse-transform and emit a checksum each
//! iteration. The distributed version's all-to-all transposes make it the
//! suite's *largest memory consumer* — the paper's Fig 8 shows FT's
//! footprint growing fastest with class — and its transpose buffer is why
//! ft.C only runs at ≥ 4 processes on the 8 GiB Xeon-E5462 (Fig 3).
//!
//! Class grids: A = 256×256×128 / 6 iters, B = 512×256×256 / 20,
//! C = 512×512×512 / 20.

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};
use rayon::prelude::*;

use crate::fft::{fft_batched_with, Direction, TwiddleTable, C64};
use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};
use crate::transpose::{transpose_tiles, TILE};

use super::Class;

// Logical trace address bases for the two transpose buffers. The
// transposes ping-pong between the live field and the workspace scratch
// (`mem::swap` after each one), so which physical buffer is the source
// alternates with the transpose phase; labelling by parity makes the
// replayed streams alias exactly like the real buffers do.
const TRACE_FIELD: u64 = 0x10_0000_0000;
const TRACE_SCRATCH: u64 = 0x20_0000_0000;

/// The FT benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Ft {
    class: Class,
}

impl Ft {
    /// FT at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// (nx, ny, nz, iterations) for the class.
    pub fn params(&self) -> (u64, u64, u64, u32) {
        match self.class {
            Class::W => (128, 128, 32, 6),
            Class::A => (256, 256, 128, 6),
            Class::B => (512, 256, 256, 20),
            Class::C => (512, 512, 512, 20),
        }
    }

    /// Total grid points.
    pub fn points(&self) -> u64 {
        let (nx, ny, nz, _) = self.params();
        nx * ny * nz
    }
}

/// A dense 3-D complex field, x-fastest.
#[derive(Debug, Clone)]
pub struct Field3 {
    /// X extent.
    pub nx: usize,
    /// Y extent.
    pub ny: usize,
    /// Z extent.
    pub nz: usize,
    /// `nx·ny·nz` complex values.
    pub data: Vec<C64>,
}

impl Field3 {
    /// Random field from the NPB generator.
    pub fn random(nx: usize, ny: usize, nz: usize, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        let data = (0..nx * ny * nz).map(|_| C64::new(rng.next_f64(), rng.next_f64())).collect();
        Self { nx, ny, nz, data }
    }

    /// Sum of all values (the NPB checksum basis).
    pub fn checksum(&self) -> C64 {
        let mut acc = C64::default();
        for v in &self.data {
            acc = acc.add(*v);
        }
        acc
    }
}

/// Reusable FT transform storage: one scratch field the transposes write
/// into (then swapped with the live data) plus the twiddle table for
/// each axis length. With a warm workspace, [`fft3_with`] performs zero
/// heap allocations per call at logical width 1 (pinned by
/// `tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct FtWorkspace {
    nx: usize,
    ny: usize,
    nz: usize,
    scratch: Vec<C64>,
    tw_x: TwiddleTable,
    tw_y: TwiddleTable,
    tw_z: TwiddleTable,
}

impl FtWorkspace {
    /// Workspace for `nx × ny × nz` transforms (power-of-two extents).
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            scratch: vec![C64::default(); nx * ny * nz],
            tw_x: TwiddleTable::new(nx),
            tw_y: TwiddleTable::new(ny),
            tw_z: TwiddleTable::new(nz),
        }
    }
}

/// Forward or inverse 3-D FFT in place: batched 1-D transforms along x,
/// then y, then z via explicit transposes (the same dataflow as the
/// distributed NPB implementation, whose transposes are MPI all-to-alls).
///
/// Allocates a fresh [`FtWorkspace`] per call; hot loops should hold one
/// and call [`fft3_with`].
pub fn fft3(f: &mut Field3, dir: Direction) {
    let mut ws = FtWorkspace::new(f.nx, f.ny, f.nz);
    fft3_with(f, dir, &mut ws);
}

/// [`fft3`] against caller-owned storage. Each transpose writes into
/// `ws.scratch` with cache-blocked tiles and the buffers are exchanged
/// with `mem::swap`, so no pass copies more than once and nothing is
/// allocated. Every parallel unit (an FFT line, a transpose plane or
/// band) is a disjoint chunk produced by the same serial code at any
/// pool width, so the result is bitwise deterministic.
pub fn fft3_with(f: &mut Field3, dir: Direction, ws: &mut FtWorkspace) {
    assert_eq!((f.nx, f.ny, f.nz), (ws.nx, ws.ny, ws.nz), "workspace shape must match the field");
    // Pass 1: lines along x are contiguous. Each dimension pass opens a
    // trace epoch so the sweeps stay separated in the captured stream
    // (one call transposes the same logical chunks four times).
    hooks::begin_epoch(Region::Ft);
    fft_batched_with(&ws.tw_x, &mut f.data, dir);
    // Pass 2: transpose x<->y, transform the old-y lines (now
    // contiguous), transpose back.
    hooks::begin_epoch(Region::Ft);
    transpose_xy_into(f.nx, f.ny, f.nz, &f.data, &mut ws.scratch, 0);
    std::mem::swap(&mut f.data, &mut ws.scratch);
    std::mem::swap(&mut f.nx, &mut f.ny);
    fft_batched_with(&ws.tw_y, &mut f.data, dir);
    transpose_xy_into(f.nx, f.ny, f.nz, &f.data, &mut ws.scratch, 1);
    std::mem::swap(&mut f.data, &mut ws.scratch);
    std::mem::swap(&mut f.nx, &mut f.ny);
    // Pass 3: the same dance for x<->z.
    hooks::begin_epoch(Region::Ft);
    transpose_xz_into(f.nx, f.ny, f.nz, &f.data, &mut ws.scratch, 2);
    std::mem::swap(&mut f.data, &mut ws.scratch);
    std::mem::swap(&mut f.nx, &mut f.nz);
    fft_batched_with(&ws.tw_z, &mut f.data, dir);
    transpose_xz_into(f.nx, f.ny, f.nz, &f.data, &mut ws.scratch, 3);
    std::mem::swap(&mut f.data, &mut ws.scratch);
    std::mem::swap(&mut f.nx, &mut f.nz);
}

/// Source/destination trace bases for transpose `phase` (0..4 within
/// one [`fft3_with`]): even phases read the buffer that started as the
/// live field, odd phases read the one that started as scratch.
fn trace_bases(phase: u64) -> (u64, u64) {
    if phase.is_multiple_of(2) {
        (TRACE_FIELD, TRACE_SCRATCH)
    } else {
        (TRACE_SCRATCH, TRACE_FIELD)
    }
}

/// Transpose the x and y axes: `dst[(z·nx + x)·ny + y] =
/// src[(z·ny + y)·nx + x]`. Parallel over the destination's z-planes,
/// each a tiled 2-D transpose of the matching source plane.
fn transpose_xy_into(nx: usize, ny: usize, nz: usize, src: &[C64], dst: &mut [C64], phase: u64) {
    debug_assert_eq!(src.len(), nx * ny * nz);
    debug_assert_eq!(dst.len(), nx * ny * nz);
    dst.par_chunks_mut(nx * ny).enumerate().for_each(|(z, plane)| {
        // Trace the plane's traffic: the matching source plane streams
        // in, the destination plane streams out (the within-plane
        // permutation is cache-blocked, so plane granularity is the
        // honest level). The chunk id is a pure function of (phase, z),
        // never of which worker ran the plane.
        let chunk = (phase << 32) | z as u64;
        if hooks::chunk_enabled(Region::Ft, chunk) {
            let (src_base, dst_base) = trace_bases(phase);
            let plane_bytes = (nx * ny * 16) as u32;
            let off = (z as u64) * u64::from(plane_bytes);
            hooks::record(
                Region::Ft,
                chunk,
                AccessKind::Read,
                src_base + off,
                16,
                plane_bytes / 16,
            );
            hooks::record(
                Region::Ft,
                chunk,
                AccessKind::Write,
                dst_base + off,
                16,
                plane_bytes / 16,
            );
        }
        // plane[x·ny + y] = src[z·nx·ny + y·nx + x]
        transpose_tiles(src, z * nx * ny, nx, plane, 0, ny, ny, nx, |d, s| *d = s);
    });
}

/// Transpose the x and z axes: `dst[(x·ny + y)·nz + z] =
/// src[(z·ny + y)·nx + x]`. Parallel over x-bands of the destination;
/// within a band, each y gives a strided 2-D transpose over (z, x).
fn transpose_xz_into(nx: usize, ny: usize, nz: usize, src: &[C64], dst: &mut [C64], phase: u64) {
    debug_assert_eq!(src.len(), nx * ny * nz);
    debug_assert_eq!(dst.len(), nx * ny * nz);
    dst.par_chunks_mut(TILE * ny * nz).enumerate().for_each(|(band, chunk)| {
        let x0 = band * TILE;
        let band_w = chunk.len() / (ny * nz);
        // The xz band gathers a column slab from *every* source plane —
        // the all-to-all character the distributed FT pays for. Model
        // the reads as one large-stride descriptor per plane (a row
        // start per y; the band's rows are nx elements apart) and the
        // writes as the band's contiguous destination stream.
        let trace_chunk = (phase << 32) | band as u64;
        if hooks::chunk_enabled(Region::Ft, trace_chunk) {
            let (src_base, dst_base) = trace_bases(phase);
            for z in 0..nz {
                let off = ((z * ny * nx + x0) * 16) as u64;
                hooks::record(
                    Region::Ft,
                    trace_chunk,
                    AccessKind::Read,
                    src_base + off,
                    (nx * 16) as u32,
                    ny as u32,
                );
            }
            let off = (x0 * ny * nz * 16) as u64;
            hooks::record(
                Region::Ft,
                trace_chunk,
                AccessKind::Write,
                dst_base + off,
                16,
                chunk.len() as u32,
            );
        }
        for y in 0..ny {
            // chunk[(dx·ny + y)·nz + z] = src[z·nx·ny + y·nx + x0 + dx]
            transpose_tiles(
                src,
                y * nx + x0,
                nx * ny,
                chunk,
                y * nz,
                ny * nz,
                nz,
                band_w,
                |d, s| *d = s,
            );
        }
    });
}

/// Run the NPB FT structure at a scaled grid: returns the per-iteration
/// checksums. All buffers (the evolved field, the transform scratch, the
/// twiddle tables) are allocated once up front; the iteration loop is
/// allocation-free.
pub fn run_scaled(nx: usize, ny: usize, nz: usize, niter: u32) -> Vec<C64> {
    let mut ws = FtWorkspace::new(nx, ny, nz);
    let mut u0 = Field3::random(nx, ny, nz, 314_159_265);
    fft3_with(&mut u0, Direction::Forward, &mut ws);
    // Evolution factors exp(-4π²·α·t·k²) per mode.
    let alpha = 1e-6;
    let mut checksums = Vec::with_capacity(niter as usize);
    let mut w = u0.clone();
    for t in 1..=niter {
        let tt = f64::from(t);
        // Evolve the saved forward transform into `w`: elementwise with
        // disjoint writes per z-plane, so width-invariant.
        w.data.par_chunks_mut(nx * ny).enumerate().for_each(|(z, plane)| {
            let kz = wavenumber(z, nz);
            for y in 0..ny {
                let ky = wavenumber(y, ny);
                for x in 0..nx {
                    let kx = wavenumber(x, nx);
                    let k2 = (kx * kx + ky * ky + kz * kz) as f64;
                    let factor = (-4.0 * std::f64::consts::PI.powi(2) * alpha * tt * k2).exp();
                    plane[y * nx + x] = u0.data[(z * ny + y) * nx + x].scale(factor);
                }
            }
        });
        fft3_with(&mut w, Direction::Inverse, &mut ws);
        checksums.push(w.checksum());
    }
    checksums
}

fn wavenumber(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

impl Benchmark for Ft {
    fn id(&self) -> &'static str {
        "ft"
    }

    fn display_name(&self) -> String {
        format!("ft.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let (nx, ny, nz, niter) = self.params();
        let pts = self.points() as f64;
        let logs = ((nx as f64).log2() + (ny as f64).log2() + (nz as f64).log2()).max(1.0);
        // 5·N·log2(N_total) per 3-D transform, ~1.24 overhead for evolve
        // and checksum; two transforms live per iteration (evolve applies
        // to the saved forward transform).
        let flops = 6.2 * pts * logs * f64::from(niter) / 3.0 * 3.0;
        let bytes_per_pt = 16.0;
        // u0, u1 and the transform workspace resident; plus an all-ranks
        // transpose buffer that shrinks with p.
        let footprint = pts * bytes_per_pt * 2.55;
        let scratch = pts * bytes_per_pt * 2.55;
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.1,
            dram_bytes: pts * bytes_per_pt * 6.0 * f64::from(niter),
            footprint_bytes: footprint,
            footprint_per_proc_bytes: 16.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: scratch,
            comm_fraction: 0.18,
            cpu_intensity: 0.80,
            kind: ComputeKind::Mixed(0.8),
            locality: LocalityProfile::streaming(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::PowerOfTwo
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        // Round-trip identity at a scaled grid.
        let mut f = Field3::random(16, 8, 8, 777);
        let orig = f.clone();
        fft3(&mut f, Direction::Forward);
        fft3(&mut f, Direction::Inverse);
        let max_err = f
            .data
            .iter()
            .zip(&orig.data)
            .map(|(a, b)| a.sub(*b).norm_sqr().sqrt())
            .fold(0.0, f64::max);
        if max_err > 1e-10 {
            return VerifyOutcome::fail(format!("3-D round trip error {max_err:.3e}"));
        }
        // Checksums of the evolution must be finite and decaying in
        // magnitude (diffusion damps every nonzero mode).
        let sums = run_scaled(16, 8, 8, 4);
        let mags: Vec<f64> = sums.iter().map(|c| c.norm_sqr().sqrt()).collect();
        let decaying = mags.windows(2).all(|w| w[1] <= w[0] * (1.0 + 1e-9));
        if !decaying || mags.iter().any(|m| !m.is_finite()) {
            return VerifyOutcome::fail(format!("checksums not damped: {mags:?}"));
        }
        VerifyOutcome::pass(
            format!(
                "round-trip err {max_err:.2e}; checksum |s| {:.4} -> {:.4}",
                mags[0],
                mags[mags.len() - 1]
            ),
            crate::fft::fft_flops(16 * 8 * 8) * 4.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_xy_matches_naive_and_round_trips() {
        let (nx, ny, nz) = (8, 4, 2);
        let f = Field3::random(nx, ny, nz, 3);
        let mut t = vec![C64::default(); f.data.len()];
        transpose_xy_into(nx, ny, nz, &f.data, &mut t, 0);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    assert_eq!(t[(z * nx + x) * ny + y], f.data[(z * ny + y) * nx + x]);
                }
            }
        }
        let mut back = vec![C64::default(); f.data.len()];
        transpose_xy_into(ny, nx, nz, &t, &mut back, 1);
        assert_eq!(f.data, back);
    }

    #[test]
    fn transpose_xz_matches_naive_and_round_trips() {
        // ny=3 / nz=5 are deliberately neither powers of two nor TILE
        // multiples: the band/tile edge handling is what's under test.
        let (nx, ny, nz) = (8, 3, 5);
        let f = Field3::random(nx, ny, nz, 3);
        let mut t = vec![C64::default(); f.data.len()];
        transpose_xz_into(nx, ny, nz, &f.data, &mut t, 2);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    assert_eq!(t[(x * ny + y) * nz + z], f.data[(z * ny + y) * nx + x]);
                }
            }
        }
        let mut back = vec![C64::default(); f.data.len()];
        transpose_xz_into(nz, ny, nx, &t, &mut back, 3);
        assert_eq!(f.data, back);
    }

    #[test]
    fn transpose_xz_handles_wide_x() {
        // nx wider than one TILE band exercises the multi-band path.
        let (nx, ny, nz) = (64, 4, 8);
        let f = Field3::random(nx, ny, nz, 11);
        let mut t = vec![C64::default(); f.data.len()];
        transpose_xz_into(nx, ny, nz, &f.data, &mut t, 2);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    assert_eq!(t[(x * ny + y) * nz + z], f.data[(z * ny + y) * nx + x]);
                }
            }
        }
    }

    #[test]
    fn fft3_with_reused_workspace_matches_fresh() {
        let mut ws = FtWorkspace::new(8, 16, 4);
        let mut reused = Field3::random(8, 16, 4, 55);
        let mut fresh = reused.clone();
        // Warm the workspace with one unrelated transform first.
        let mut warmup = Field3::random(8, 16, 4, 1);
        fft3_with(&mut warmup, Direction::Forward, &mut ws);
        fft3_with(&mut reused, Direction::Forward, &mut ws);
        fft3(&mut fresh, Direction::Forward);
        assert_eq!(reused.data, fresh.data);
    }

    #[test]
    fn fft3_round_trip() {
        let mut f = Field3::random(8, 16, 4, 55);
        let orig = f.clone();
        fft3(&mut f, Direction::Forward);
        fft3(&mut f, Direction::Inverse);
        for (a, b) in f.data.iter().zip(&orig.data) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft3_dc_component_is_field_sum() {
        let mut f = Field3::random(8, 8, 8, 4);
        let sum = f.checksum();
        fft3(&mut f, Direction::Forward);
        assert!((f.data[0].re - sum.re).abs() < 1e-9);
        assert!((f.data[0].im - sum.im).abs() < 1e-9);
    }

    #[test]
    fn evolution_checksums_decay() {
        let sums = run_scaled(8, 8, 8, 3);
        let mags: Vec<f64> = sums.iter().map(|c| c.norm_sqr().sqrt()).collect();
        assert!(mags[2] <= mags[0]);
    }

    #[test]
    fn verify_passes() {
        let out = Ft::new(Class::C).verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn ft_c_needs_four_procs_on_8gib() {
        // Fig 3: ft.C.4 present, ft.C.2 / ft.C.1 absent on the Xeon-E5462.
        let sig = Ft::new(Class::C).signature();
        let gib8 = 8u64 << 30;
        assert!(!sig.fits_in(1, gib8));
        assert!(!sig.fits_in(2, gib8));
        assert!(sig.fits_in(4, gib8));
    }

    #[test]
    fn ft_has_largest_growth_in_footprint() {
        // Fig 8: FT's footprint grows fastest with class.
        let a = Ft::new(Class::A).signature().footprint_at(1);
        let c = Ft::new(Class::C).signature().footprint_at(1);
        assert!(c / a > 15.0, "growth {}", c / a);
    }
}
