//! NPB LU — the Lower-Upper Gauss-Seidel (SSOR) pseudo-application.
//!
//! LU integrates the Navier–Stokes equations with a Symmetric Successive
//! Over-Relaxation scheme: each iteration performs a *lower-triangular*
//! sweep (points updated in increasing x+y+z wavefront order, consuming
//! freshly updated upstream neighbours) followed by an *upper-triangular*
//! sweep in the reverse order. The wavefront dependency is what gives the
//! MPI version its pipelined communication pattern.
//!
//! Class grids: A = 64³, B = 102³, C = 162³, 250 SSOR iterations each
//! (official op counts: LU.A = 119,280 Mop ⇒ ~1820 flop/point/iter).

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};
use rayon::prelude::*;

use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

use super::block5::{vnorm, vsub, Mat5, Vec5};
use super::Class;

// Logical trace addresses for the SSOR sweeps. Each triangular sweep
// (lower, then upper) is its own epoch; the chunk id is the grid point
// index, which the wavefront decomposition fixes independently of the
// worker count. The 5-vector fields stride 40 bytes per point, the
// cached 5×5 diagonal inverses 200.
const TRACE_U: u64 = 0x1_0000_0000;
const TRACE_B: u64 = 0x2_0000_0000;
const TRACE_DINV: u64 = 0x3_0000_0000;
/// Bytes per grid point of a [`Vec5`] field.
const VEC5_BYTES: usize = 40;
/// Bytes per grid point of a [`Mat5`] field.
const MAT5_BYTES: usize = 200;

/// Reported flops per grid point per SSOR iteration.
pub const FLOPS_PER_POINT_ITER: f64 = 1820.0;
/// SSOR iterations, fixed per the NPB specification.
pub const ITERATIONS: u32 = 250;

/// The LU benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Lu {
    class: Class,
}

impl Lu {
    /// LU at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// Grid edge for the class.
    pub fn edge(&self) -> u64 {
        match self.class {
            Class::W => 33,
            Class::A => 64,
            Class::B => 102,
            Class::C => 162,
        }
    }
}

/// An SSOR problem: `A = D + L + U` where `D` holds per-point diagonally
/// dominant 5×5 blocks and `L`/`U` couple the three lower/upper
/// neighbours with `−c·I`.
#[derive(Debug, Clone)]
pub struct SsorProblem {
    /// Grid edge.
    pub n: usize,
    /// Neighbour coupling strength.
    pub coupling: f64,
    /// Per-point diagonal blocks.
    pub diag: Vec<Mat5>,
    /// Cached inverses of the diagonal blocks.
    pub diag_inv: Vec<Mat5>,
}

impl SsorProblem {
    /// Build a problem of edge `n`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        let diag: Vec<Mat5> = (0..n * n * n).map(|_| Mat5::diag_dominant(&mut rng)).collect();
        let diag_inv = diag
            .iter()
            .map(|m| m.inverse().expect("diagonally dominant blocks are invertible"))
            .collect();
        Self { n, coupling: 0.15, diag, diag_inv }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }

    /// Apply `A·u` (Dirichlet exterior); parallel over grid points —
    /// each output point is an independent read-only stencil, so the
    /// result is width-invariant.
    pub fn apply(&self, u: &[Vec5]) -> Vec<Vec5> {
        let n = self.n;
        let mut out = vec![[0.0; 5]; u.len()];
        out.par_iter_mut().enumerate().for_each(|(i, o)| {
            let x = i % n;
            let y = (i / n) % n;
            let z = i / (n * n);
            let mut acc = self.diag[i].matvec(&u[i]);
            let mut nb = |j: usize| {
                for c in 0..5 {
                    acc[c] -= self.coupling * u[j][c];
                }
            };
            if x > 0 {
                nb(self.idx(x - 1, y, z));
            }
            if y > 0 {
                nb(self.idx(x, y - 1, z));
            }
            if z > 0 {
                nb(self.idx(x, y, z - 1));
            }
            if x + 1 < n {
                nb(self.idx(x + 1, y, z));
            }
            if y + 1 < n {
                nb(self.idx(x, y + 1, z));
            }
            if z + 1 < n {
                nb(self.idx(x, y, z + 1));
            }
            *o = acc;
        });
        out
    }

    /// One SSOR iteration with relaxation factor `omega` on `A·u = b`.
    ///
    /// Lower sweep: solve `(D + ω·L)·u* = rhs` in wavefront order;
    /// upper sweep: `(D + ω·U)` in reverse. This is the sequential
    /// dependency chain the NPB pipelines across ranks — and the
    /// wavefront is exactly how this implementation parallelizes it:
    /// the points of hyperplane `x+y+z = k` are mutually independent
    /// (the 7-point stencil's neighbours all live on planes `k ± 1`),
    /// and the lexicographic serial sweep gives every point of plane
    /// `k` fresh plane-`k−1` values and stale plane-`k+1` values —
    /// precisely what a plane-at-a-time update computes. The parallel
    /// sweep is therefore *bitwise identical* to the serial one at any
    /// pool width (pinned by `wavefront_matches_lexicographic_sweep`).
    pub fn ssor_step(&self, u: &mut [Vec5], b: &[Vec5], omega: f64) {
        let n = self.n;
        if n == 0 {
            return;
        }
        // Per-sweep scratch: plane point indices and their new values
        // (a cube cross-section never exceeds n² points).
        let mut idx: Vec<usize> = Vec::with_capacity(n * n);
        let mut val: Vec<Vec5> = vec![[0.0; 5]; n * n];
        let kmax = 3 * (n - 1);
        // Lower-triangular sweep (Gauss-Seidel with fresh lower points).
        hooks::begin_epoch(Region::Lu);
        for k in 0..=kmax {
            self.relax_plane(u, b, k, omega, &mut idx, &mut val);
        }
        // Upper-triangular sweep.
        hooks::begin_epoch(Region::Lu);
        for k in (0..=kmax).rev() {
            self.relax_plane(u, b, k, omega, &mut idx, &mut val);
        }
    }

    /// Record the memory traffic of relaxing point `i`: the 7-point
    /// `u` stencil (one strided read per axis covering the present
    /// neighbours), the right-hand side, and the cached diagonal
    /// inverse. Reads only — the scatter loop records the write.
    fn trace_point(&self, i: usize) {
        let n = self.n;
        let (x, y, z) = (i % n, (i / n) % n, i / (n * n));
        let ch = i as u64;
        let dinv_at = TRACE_DINV + (i * MAT5_BYTES) as u64;
        hooks::record(Region::Lu, ch, AccessKind::Read, dinv_at, 8, 25);
        let b_at = TRACE_B + (i * VEC5_BYTES) as u64;
        hooks::record(Region::Lu, ch, AccessKind::Read, b_at, 8, 5);
        for (coord, step) in [(x, 1), (y, n), (z, n * n)] {
            let lo = if coord > 0 { i - step } else { i };
            let hi = if coord + 1 < n { i + step } else { i };
            let count = ((hi - lo) / step + 1) as u32;
            let at = TRACE_U + (lo * VEC5_BYTES) as u64;
            hooks::record(Region::Lu, ch, AccessKind::Read, at, (step * VEC5_BYTES) as u32, count);
        }
    }

    /// Relax every point of hyperplane `x+y+z = k`: gather the plane's
    /// indices, compute all new values in parallel against the frozen
    /// `u`, then scatter serially. Computing into `val` first keeps the
    /// parallel stage free of writes to `u` (no unsafe scatter needed).
    fn relax_plane(
        &self,
        u: &mut [Vec5],
        b: &[Vec5],
        k: usize,
        omega: f64,
        idx: &mut Vec<usize>,
        val: &mut [Vec5],
    ) {
        let n = self.n;
        idx.clear();
        for z in k.saturating_sub(2 * (n - 1))..=k.min(n - 1) {
            let rem = k - z;
            for y in rem.saturating_sub(n - 1)..=rem.min(n - 1) {
                idx.push(self.idx(rem - y, y, z));
            }
        }
        let m = idx.len();
        {
            let u_read: &[Vec5] = u;
            val[..m].par_iter_mut().zip(&idx[..m]).for_each(|(slot, &i)| {
                if hooks::chunk_enabled(Region::Lu, i as u64) {
                    self.trace_point(i);
                }
                *slot = self.relaxed_value(u_read, b, i, omega);
            });
        }
        for (&i, v) in idx.iter().zip(&val[..m]) {
            if hooks::chunk_enabled(Region::Lu, i as u64) {
                let at = TRACE_U + (i * VEC5_BYTES) as u64;
                hooks::record(Region::Lu, i as u64, AccessKind::Write, at, VEC5_BYTES as u32, 1);
            }
            u[i] = *v;
        }
    }

    /// The SSOR update `u_i ← (1−ω)·u_i + ω·D⁻¹·r` with
    /// `r = b − (L+U)·u` at point `i`, returned rather than written.
    #[inline]
    fn relaxed_value(&self, u: &[Vec5], b: &[Vec5], i: usize, omega: f64) -> Vec5 {
        let n = self.n;
        let x = i % n;
        let y = (i / n) % n;
        let z = i / (n * n);
        let mut r = b[i];
        let nb = |j: usize, r: &mut Vec5| {
            for c in 0..5 {
                r[c] += self.coupling * u[j][c];
            }
        };
        if x > 0 {
            nb(self.idx(x - 1, y, z), &mut r);
        }
        if y > 0 {
            nb(self.idx(x, y - 1, z), &mut r);
        }
        if z > 0 {
            nb(self.idx(x, y, z - 1), &mut r);
        }
        if x + 1 < n {
            nb(self.idx(x + 1, y, z), &mut r);
        }
        if y + 1 < n {
            nb(self.idx(x, y + 1, z), &mut r);
        }
        if z + 1 < n {
            nb(self.idx(x, y, z + 1), &mut r);
        }
        let dinv_r = self.diag_inv[i].matvec(&r);
        let mut out = [0.0; 5];
        for c in 0..5 {
            out[c] = (1.0 - omega) * u[i][c] + omega * dinv_r[c];
        }
        out
    }

    /// `‖b − A·u‖₂`.
    pub fn residual_norm(&self, u: &[Vec5], b: &[Vec5]) -> f64 {
        let au = self.apply(u);
        au.iter().zip(b).map(|(x, y)| vnorm(&vsub(y, x)).powi(2)).sum::<f64>().sqrt()
    }
}

impl Benchmark for Lu {
    fn id(&self) -> &'static str {
        "lu"
    }

    fn display_name(&self) -> String {
        format!("lu.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let pts = (self.edge().pow(3)) as f64;
        let flops = FLOPS_PER_POINT_ITER * pts * f64::from(ITERATIONS);
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.1,
            dram_bytes: flops * 0.4,
            footprint_bytes: pts * 280.0, // ~7 five-component arrays
            footprint_per_proc_bytes: 20.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.15, // pipelined wavefront exchanges
            cpu_intensity: 0.85,
            kind: ComputeKind::Mixed(0.65),
            locality: LocalityProfile {
                instr_per_op: 1.45,
                accesses_per_instr: 0.38,
                l1_hit: 0.88,
                l2_hit: 0.06,
                l3_hit: 0.03,
                mem: 0.03,
                write_fraction: 0.3,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::PowerOfTwo
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 10;
        let prob = SsorProblem::new(n, 271_828);
        let mut rng = NpbRng::new(7);
        let u_true: Vec<Vec5> = (0..n * n * n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let b = prob.apply(&u_true);
        let mut u = vec![[0.0; 5]; n * n * n];
        let r0 = prob.residual_norm(&u, &b);
        for _ in 0..10 {
            prob.ssor_step(&mut u, &b, 1.2);
        }
        let r = prob.residual_norm(&u, &b);
        if r < r0 * 1e-4 {
            VerifyOutcome::pass(
                format!("SSOR converged: residual {r0:.3e} -> {r:.3e} in 10 sweeps"),
                FLOPS_PER_POINT_ITER * (n * n * n) as f64 * 10.0,
            )
        } else {
            VerifyOutcome::fail(format!("SSOR stalled: {r0:.3e} -> {r:.3e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssor_converges_monotonically() {
        let n = 6;
        let p = SsorProblem::new(n, 42);
        let mut rng = NpbRng::new(5);
        let b: Vec<Vec5> = (0..n * n * n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let mut u = vec![[0.0; 5]; n * n * n];
        let mut last = p.residual_norm(&u, &b);
        for _ in 0..5 {
            p.ssor_step(&mut u, &b, 1.0);
            let r = p.residual_norm(&u, &b);
            assert!(r < last, "{r} !< {last}");
            last = r;
        }
    }

    #[test]
    fn over_relaxation_beats_gauss_seidel_here() {
        let n = 6;
        let p = SsorProblem::new(n, 42);
        let mut rng = NpbRng::new(5);
        let b: Vec<Vec5> = (0..n * n * n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let r0 = {
            let u = vec![[0.0; 5]; n * n * n];
            p.residual_norm(&u, &b)
        };
        let run = |omega: f64| {
            let mut u = vec![[0.0; 5]; n * n * n];
            for _ in 0..4 {
                p.ssor_step(&mut u, &b, omega);
            }
            p.residual_norm(&u, &b)
        };
        // Both relaxation factors must contract by orders of magnitude
        // within 4 sweeps.
        assert!(run(1.2) < r0 * 1e-3, "omega=1.2: {} vs r0={r0}", run(1.2));
        assert!(run(1.0) < r0 * 1e-3, "omega=1.0: {} vs r0={r0}", run(1.0));
    }

    #[test]
    fn recovers_manufactured_solution() {
        let n = 5;
        let p = SsorProblem::new(n, 9);
        let u_true = vec![[1.0, -0.5, 0.25, 2.0, 0.0]; n * n * n];
        let b = p.apply(&u_true);
        let mut u = vec![[0.0; 5]; n * n * n];
        for _ in 0..30 {
            p.ssor_step(&mut u, &b, 1.1);
        }
        for (a, t) in u.iter().zip(&u_true) {
            for c in 0..5 {
                assert!((a[c] - t[c]).abs() < 1e-8, "{} vs {}", a[c], t[c]);
            }
        }
    }

    #[test]
    fn verify_passes() {
        let out = Lu::new(Class::C).verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn wavefront_matches_lexicographic_sweep() {
        // The parallel hyperplane sweep must be bitwise identical to the
        // serial lexicographic Gauss-Seidel order it replaces.
        let n = 7;
        let p = SsorProblem::new(n, 12_345);
        let mut rng = NpbRng::new(77);
        let b: Vec<Vec5> = (0..n * n * n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        let mut wavefront = vec![[0.125; 5]; n * n * n];
        let mut lex = wavefront.clone();
        for _ in 0..3 {
            p.ssor_step(&mut wavefront, &b, 1.2);
            // Serial reference: lexicographic lower sweep, reverse upper.
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        let i = p.idx(x, y, z);
                        lex[i] = p.relaxed_value(&lex, &b, i, 1.2);
                    }
                }
            }
            for z in (0..n).rev() {
                for y in (0..n).rev() {
                    for x in (0..n).rev() {
                        let i = p.idx(x, y, z);
                        lex[i] = p.relaxed_value(&lex, &b, i, 1.2);
                    }
                }
            }
        }
        assert_eq!(wavefront, lex);
    }

    #[test]
    fn class_flops_match_official_counts() {
        // LU.A ≈ 1.193e11 (official 119,280 Mop).
        let sig = Lu::new(Class::A).signature();
        assert!((sig.reported_flops - 1.193e11).abs() / 1.193e11 < 0.01);
    }
}
