//! NPB SP — the Scalar Penta-diagonal pseudo-application.
//!
//! SP uses the same ADI time-stepping skeleton as BT, but its implicit
//! systems are *scalar* pentadiagonal along each grid line (the 5×5
//! blocks are diagonalized first), solved component by component. Like
//! BT it requires a perfect-square process count; unlike BT it
//! communicates the most of the suite — the paper's §VI-C singles SP out
//! (with EP at the opposite extreme) as the programs the regression fits
//! worst, precisely because communication power is invisible to the six
//! PMU indicators.
//!
//! Class grids: A = 64³ / 400 steps, B = 102³ / 400, C = 162³ / 400.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

use super::Class;

// Logical trace addresses for the ADI line solves. Each direction
// sweep is its own epoch; within a sweep the chunk id is the lane
// (line × component) index, whose decomposition never depends on the
// worker count.
const TRACE_U: u64 = 0x1_0000_0000;
const TRACE_B: u64 = 0x2_0000_0000;
const TRACE_DIAG: u64 = 0x3_0000_0000;
const TRACE_AU: u64 = 0x4_0000_0000;

/// Reported flops per grid point per time step (official NPB counts:
/// SP.A = 102,300 Mop over 64³ × 400 ⇒ ~975).
pub const FLOPS_PER_POINT_STEP: f64 = 975.0;
/// ADI time steps, fixed per the NPB specification.
pub const STEPS: u32 = 400;

/// The SP benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Sp {
    class: Class,
}

impl Sp {
    /// SP at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// Grid edge for the class.
    pub fn edge(&self) -> u64 {
        match self.class {
            Class::W => 36,
            Class::A => 64,
            Class::B => 102,
            Class::C => 162,
        }
    }
}

/// Solve a scalar pentadiagonal system in place by Gaussian elimination
/// without pivoting (valid for the diagonally dominant systems SP
/// builds):
/// `e·x[i-2] + c·x[i-1] + d[i]·x[i] + a·x[i+1] + f·x[i+2] = rhs[i]`.
///
/// Bands are constant except the main diagonal, mirroring SP's
/// factored operators. Returns `false` on a vanishing pivot.
pub fn penta_solve(
    sub2: f64,
    sub1: f64,
    diag: &[f64],
    sup1: f64,
    sup2: f64,
    rhs: &mut [f64],
) -> bool {
    let n = diag.len();
    assert_eq!(rhs.len(), n);
    if n == 0 {
        return true;
    }
    // Working copies of the bands that receive fill: eliminating the
    // second subdiagonal of row i+2 with row i fills its first
    // subdiagonal and diagonal, so d/l1/u1 must be tracked per row. The
    // outer bands (i, i−2) and (i, i+2) never change — they stay the
    // scalar constants `sub2`/`sup2`.
    let mut d = diag.to_vec();
    let mut l1 = vec![sub1; n]; // entry (i, i-1); l1[0] unused
    let mut u1 = vec![sup1; n]; // entry (i, i+1)
    for i in 0..n {
        let piv = d[i];
        if piv.abs() < 1e-300 {
            return false;
        }
        // Eliminate x[i] from row i+1 (its l1 entry).
        if i + 1 < n {
            let m = l1[i + 1] / piv;
            d[i + 1] -= m * u1[i];
            if i + 2 < n {
                u1[i + 1] -= m * sup2;
            }
            rhs[i + 1] -= m * rhs[i];
        }
        // Eliminate x[i] from row i+2 (its l2 entry); this fills the
        // row's l1 (column i+1) and touches its diagonal (column i+2).
        if i + 2 < n {
            let m = sub2 / piv;
            l1[i + 2] -= m * u1[i];
            d[i + 2] -= m * sup2;
            rhs[i + 2] -= m * rhs[i];
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut s = rhs[i];
        if i + 1 < n {
            s -= u1[i] * rhs[i + 1];
        }
        if i + 2 < n {
            s -= sup2 * rhs[i + 2];
        }
        rhs[i] = s / d[i];
    }
    true
}

/// A scalar pentadiagonal ADI problem on an `n³` grid with 5 components.
#[derive(Debug, Clone)]
pub struct SpProblem {
    /// Grid edge.
    pub n: usize,
    /// Main diagonal per point and component.
    pub diag: Vec<f64>,
    /// Off-diagonal couplings (±1, ±2 along each line).
    pub c1: f64,
    /// Second-neighbour coupling.
    pub c2: f64,
}

impl SpProblem {
    /// Build a diagonally dominant problem.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        let diag = (0..n * n * n * 5).map(|_| 2.0 + rng.next_f64()).collect();
        Self { n, diag, c1: -0.18, c2: -0.05 }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize, comp: usize) -> usize {
        (((z * self.n + y) * self.n + x) * 5) + comp
    }

    /// Apply the 3-D pentadiagonal operator.
    pub fn apply(&self, u: &[f64]) -> Vec<f64> {
        let n = self.n;
        (0..u.len())
            .into_par_iter()
            .map(|i| {
                let comp = i % 5;
                let pt = i / 5;
                let x = pt % n;
                let y = (pt / n) % n;
                let z = pt / (n * n);
                let mut acc = self.diag[i] * u[i];
                let mut nb = |xi: isize, yi: isize, zi: isize, w: f64| {
                    if xi >= 0
                        && yi >= 0
                        && zi >= 0
                        && (xi as usize) < n
                        && (yi as usize) < n
                        && (zi as usize) < n
                    {
                        acc += w * u[self.idx(xi as usize, yi as usize, zi as usize, comp)];
                    }
                };
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                for (d, w) in [(1, self.c1), (2, self.c2)] {
                    nb(xi - d, yi, zi, w);
                    nb(xi + d, yi, zi, w);
                    nb(xi, yi - d, zi, w);
                    nb(xi, yi + d, zi, w);
                    nb(xi, yi, zi - d, w);
                    nb(xi, yi, zi + d, w);
                }
                acc
            })
            .collect()
    }

    /// One ADI iteration: x, y, z sweeps of per-line pentadiagonal
    /// solves for each of the 5 components.
    ///
    /// Trace capture (`Region::Sp`): each direction sweep opens a new
    /// epoch, so the x/y/z passes replay in execution order instead of
    /// interleaving; the chunk id is the lane index, making the trace
    /// bitwise width-invariant like the solve itself. Each traced lane
    /// records its strided line reads (u, b, A·u, the diagonal) and the
    /// strided solution write-back — the stride jumps from 5 doubles
    /// (x lines) to `5n`/`5n²` (y/z lines), which is exactly the
    /// locality cliff the replay driver needs to see.
    pub fn adi_step(&self, u: &mut [f64], b: &[f64]) {
        for dir in 0..3 {
            hooks::begin_epoch(Region::Sp);
            let au = self.apply(u);
            let n = self.n;
            // Element stride between consecutive points of a line.
            let stride = (8
                * 5
                * match dir {
                    0 => 1,
                    1 => n,
                    _ => n * n,
                }) as u32;
            let solutions: Vec<(usize, Vec<f64>)> = (0..n * n * 5)
                .into_par_iter()
                .map(|lane| {
                    let comp = lane % 5;
                    let line = lane / 5;
                    let (a, c) = (line % n, line / n);
                    let line_idx = |k: usize| match dir {
                        0 => self.idx(k, a, c, comp),
                        1 => self.idx(a, k, c, comp),
                        _ => self.idx(a, c, k, comp),
                    };
                    if hooks::chunk_enabled(Region::Sp, lane as u64) {
                        let at = (line_idx(0) * 8) as u64;
                        let ch = lane as u64;
                        let w = n as u32;
                        hooks::record(Region::Sp, ch, AccessKind::Read, TRACE_DIAG + at, stride, w);
                        hooks::record(Region::Sp, ch, AccessKind::Read, TRACE_U + at, stride, w);
                        hooks::record(Region::Sp, ch, AccessKind::Read, TRACE_AU + at, stride, w);
                        hooks::record(Region::Sp, ch, AccessKind::Read, TRACE_B + at, stride, w);
                    }
                    let diag: Vec<f64> = (0..n).map(|k| self.diag[line_idx(k)]).collect();
                    let mut rhs: Vec<f64> = (0..n)
                        .map(|k| {
                            let i = line_idx(k);
                            // Move this line's own operator action back
                            // to the left-hand side.
                            let mut line_part = self.diag[i] * u[i];
                            for (d, w) in [(1usize, self.c1), (2, self.c2)] {
                                if k >= d {
                                    line_part += w * u[line_idx(k - d)];
                                }
                                if k + d < n {
                                    line_part += w * u[line_idx(k + d)];
                                }
                            }
                            b[i] - au[i] + line_part
                        })
                        .collect();
                    let ok = penta_solve(self.c2, self.c1, &diag, self.c1, self.c2, &mut rhs);
                    assert!(ok, "diagonally dominant pentadiagonal solve failed");
                    (lane, rhs)
                })
                .collect();
            for (lane, sol) in solutions {
                let comp = lane % 5;
                let line = lane / 5;
                let (a, c) = (line % n, line / n);
                if hooks::chunk_enabled(Region::Sp, lane as u64) {
                    let first = match dir {
                        0 => self.idx(0, a, c, comp),
                        1 => self.idx(a, 0, c, comp),
                        _ => self.idx(a, c, 0, comp),
                    };
                    let at = TRACE_U + (first * 8) as u64;
                    hooks::record(Region::Sp, lane as u64, AccessKind::Write, at, stride, n as u32);
                }
                for (k, v) in sol.into_iter().enumerate() {
                    let i = match dir {
                        0 => self.idx(k, a, c, comp),
                        1 => self.idx(a, k, c, comp),
                        _ => self.idx(a, c, k, comp),
                    };
                    u[i] = v;
                }
            }
        }
    }

    /// `‖b − A·u‖₂`.
    pub fn residual_norm(&self, u: &[f64], b: &[f64]) -> f64 {
        let au = self.apply(u);
        au.iter().zip(b).map(|(x, y)| (y - x) * (y - x)).sum::<f64>().sqrt()
    }
}

impl Benchmark for Sp {
    fn id(&self) -> &'static str {
        "sp"
    }

    fn display_name(&self) -> String {
        format!("sp.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let pts = (self.edge().pow(3)) as f64;
        let flops = FLOPS_PER_POINT_STEP * pts * f64::from(STEPS);
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.15,
            dram_bytes: flops * 0.55,
            footprint_bytes: pts * 500.0,
            footprint_per_proc_bytes: 30.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            // The suite's communication-heaviest program (§VI-C).
            comm_fraction: 0.24,
            cpu_intensity: 0.84,
            kind: ComputeKind::Mixed(0.7),
            locality: LocalityProfile {
                instr_per_op: 1.5,
                accesses_per_instr: 0.40,
                l1_hit: 0.86,
                l2_hit: 0.07,
                l3_hit: 0.03,
                mem: 0.04,
                write_fraction: 0.3,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Square
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 10;
        let prob = SpProblem::new(n, 8_675_309);
        let mut rng = NpbRng::new(13);
        let u_true: Vec<f64> = (0..n * n * n * 5).map(|_| rng.next_f64()).collect();
        let b = prob.apply(&u_true);
        let mut u = vec![0.0; n * n * n * 5];
        let r0 = prob.residual_norm(&u, &b);
        for _ in 0..8 {
            prob.adi_step(&mut u, &b);
        }
        let r = prob.residual_norm(&u, &b);
        if r < r0 * 1e-3 {
            VerifyOutcome::pass(
                format!("ADI converged: residual {r0:.3e} -> {r:.3e} in 8 steps"),
                FLOPS_PER_POINT_STEP * (n * n * n) as f64 * 8.0,
            )
        } else {
            VerifyOutcome::fail(format!("ADI stalled: {r0:.3e} -> {r:.3e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penta_solve_matches_dense_reference() {
        let n = 9;
        let diag: Vec<f64> = (0..n).map(|i| 3.0 + 0.1 * i as f64).collect();
        let (s2, s1, p1, p2) = (-0.05, -0.2, -0.15, -0.04);
        // Dense assembly.
        let mut dense = vec![0.0; n * n];
        for i in 0..n {
            dense[i * n + i] = diag[i];
            if i >= 1 {
                dense[i * n + i - 1] = s1;
            }
            if i >= 2 {
                dense[i * n + i - 2] = s2;
            }
            if i + 1 < n {
                dense[i * n + i + 1] = p1;
            }
            if i + 2 < n {
                dense[i * n + i + 2] = p2;
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
        let mut rhs: Vec<f64> =
            (0..n).map(|r| (0..n).map(|c| dense[r * n + c] * x_true[c]).sum()).collect();
        assert!(penta_solve(s2, s1, &diag, p1, p2, &mut rhs));
        for i in 0..n {
            assert!((rhs[i] - x_true[i]).abs() < 1e-9, "x[{i}]: {} vs {}", rhs[i], x_true[i]);
        }
    }

    #[test]
    fn penta_solve_rejects_zero_pivot() {
        let diag = vec![0.0; 4];
        let mut rhs = vec![1.0; 4];
        assert!(!penta_solve(0.0, 0.0, &diag, 0.0, 0.0, &mut rhs));
    }

    #[test]
    fn adi_reduces_residual() {
        let n = 6;
        let p = SpProblem::new(n, 55);
        let mut rng = NpbRng::new(2);
        let b: Vec<f64> = (0..n * n * n * 5).map(|_| rng.next_f64() - 0.5).collect();
        let mut u = vec![0.0; n * n * n * 5];
        let mut last = p.residual_norm(&u, &b);
        for _ in 0..4 {
            p.adi_step(&mut u, &b);
            let r = p.residual_norm(&u, &b);
            assert!(r < last);
            last = r;
        }
    }

    #[test]
    fn verify_passes() {
        let out = Sp::new(Class::C).verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn sp_is_the_comm_heaviest_npb_program() {
        use super::super::{Class, Program};
        let sp_comm = Sp::new(Class::B).signature().comm_fraction;
        for prog in Program::ALL {
            if prog != Program::Sp {
                let sig = prog.benchmark(Class::B).signature();
                assert!(sig.comm_fraction < sp_comm, "{prog:?} out-communicates SP");
            }
        }
    }

    #[test]
    fn class_flops_match_official_counts() {
        // SP.A ≈ 1.02e11 (official 102,300 Mop).
        let sig = Sp::new(Class::A).signature();
        assert!((sig.reported_flops - 1.022e11).abs() / 1.022e11 < 0.01);
    }
}
