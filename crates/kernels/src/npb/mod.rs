//! The NAS Parallel Benchmarks.
//!
//! Eight programs — five kernels (IS, EP, CG, MG, FT) and three
//! pseudo-applications (BT, SP, LU) — each implemented for real and
//! parameterized by the published problem classes. The paper uses classes
//! A, B and C (§III-C: W is too small for stable power measurement, D/E
//! exceed single-server memory), so those are what [`Class`] models.
//!
//! Process-count constraints follow the MPI reference implementation:
//! EP accepts any count, the other kernels need powers of two, and BT/SP
//! need perfect squares — the constraint structure that motivates the
//! paper's choice of EP + HPL as the evaluation pair.

pub mod block5;
pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod sp;

use crate::suite::Benchmark;

/// NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// Class W — workstation size. The paper omits it ("extremely small
    /// and the execution time is short"); it is supported here so the
    /// stability analysis can demonstrate that omission.
    W,
    /// Class A — small (the paper notes LU.A.2 runs 1.01 s).
    A,
    /// Class B — medium; used for the regression validation (Fig 12).
    B,
    /// Class C — large; used for the power evaluation itself.
    C,
}

impl Class {
    /// The classes the paper exercises, in size order (W excluded, as
    /// in the paper).
    pub const ALL: [Class; 3] = [Class::A, Class::B, Class::C];

    /// Every supported class including W.
    pub const ALL_WITH_W: [Class; 4] = [Class::W, Class::A, Class::B, Class::C];

    /// Single-letter name as used in NPB binaries ("ep.C.4").
    pub fn letter(self) -> char {
        match self {
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// The eight NPB programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Program {
    /// Block Tri-diagonal pseudo-application.
    Bt,
    /// Conjugate Gradient kernel.
    Cg,
    /// Embarrassingly Parallel kernel.
    Ep,
    /// 3-D fast Fourier Transform kernel.
    Ft,
    /// Integer Sort kernel.
    Is,
    /// Lower-Upper Gauss-Seidel pseudo-application.
    Lu,
    /// Multi-Grid kernel.
    Mg,
    /// Scalar Penta-diagonal pseudo-application.
    Sp,
}

impl Program {
    /// All programs in the alphabetical order the paper's figures use.
    pub const ALL: [Program; 8] = [
        Program::Bt,
        Program::Cg,
        Program::Ep,
        Program::Ft,
        Program::Is,
        Program::Lu,
        Program::Mg,
        Program::Sp,
    ];

    /// Lowercase id as used in NPB binary names.
    pub fn id(self) -> &'static str {
        match self {
            Program::Bt => "bt",
            Program::Cg => "cg",
            Program::Ep => "ep",
            Program::Ft => "ft",
            Program::Is => "is",
            Program::Lu => "lu",
            Program::Mg => "mg",
            Program::Sp => "sp",
        }
    }

    /// Instantiate the benchmark for a class.
    pub fn benchmark(self, class: Class) -> Box<dyn Benchmark> {
        match self {
            Program::Bt => Box::new(bt::Bt::new(class)),
            Program::Cg => Box::new(cg::Cg::new(class)),
            Program::Ep => Box::new(ep::Ep::new(class)),
            Program::Ft => Box::new(ft::Ft::new(class)),
            Program::Is => Box::new(is::Is::new(class)),
            Program::Lu => Box::new(lu::Lu::new(class)),
            Program::Mg => Box::new(mg::Mg::new(class)),
            Program::Sp => Box::new(sp::Sp::new(class)),
        }
    }
}

/// Every (program, class) benchmark of the suite.
pub fn full_suite(class: Class) -> Vec<Box<dyn Benchmark>> {
    Program::ALL.iter().map(|p| p.benchmark(class)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::ProcConstraint;

    #[test]
    fn class_letters() {
        assert_eq!(Class::A.letter(), 'A');
        assert_eq!(format!("{}", Class::C), "C");
    }

    #[test]
    fn suite_has_eight_programs() {
        assert_eq!(full_suite(Class::B).len(), 8);
    }

    #[test]
    fn display_names_follow_npb_convention() {
        let b = Program::Ep.benchmark(Class::C);
        assert_eq!(b.display_name(), "ep.C");
        let b = Program::Bt.benchmark(Class::A);
        assert_eq!(b.display_name(), "bt.A");
    }

    #[test]
    fn constraints_match_reference_implementation() {
        // §IV-D: only EP is freely configurable.
        assert_eq!(Program::Ep.benchmark(Class::C).constraint(), ProcConstraint::Any);
        for p in [Program::Cg, Program::Ft, Program::Is, Program::Lu, Program::Mg] {
            assert_eq!(p.benchmark(Class::C).constraint(), ProcConstraint::PowerOfTwo, "{p:?}");
        }
        for p in [Program::Bt, Program::Sp] {
            assert_eq!(p.benchmark(Class::C).constraint(), ProcConstraint::Square, "{p:?}");
        }
    }

    #[test]
    fn class_sizes_are_ordered() {
        // Signatures must grow with the class for every program.
        for prog in Program::ALL {
            let a = prog.benchmark(Class::A).signature();
            let b = prog.benchmark(Class::B).signature();
            let c = prog.benchmark(Class::C).signature();
            assert!(
                a.reported_flops < b.reported_flops && b.reported_flops < c.reported_flops,
                "{prog:?} flops must grow A<B<C"
            );
            assert!(
                a.footprint_at(1) <= b.footprint_at(1) && b.footprint_at(1) <= c.footprint_at(1),
                "{prog:?} footprint must grow A<=B<=C"
            );
        }
    }
}
