//! NPB EP — the Embarrassingly Parallel kernel.
//!
//! EP generates `2^m` pairs of uniform deviates with the NPB LCG, maps
//! each accepted pair (x² + y² ≤ 1) to a pair of independent Gaussian
//! deviates via the Marsaglia polar method, tallies them into ten annular
//! bins by `⌊max(|X|, |Y|)⌋`, and sums all deviates. It has essentially
//! no memory footprint and no communication, which is exactly why the
//! paper picks it as the *low-power* pole of the evaluation: its power
//! sits at the bottom of every figure while remaining freely configurable
//! in process count.
//!
//! Class sizes: A = 2^28 pairs, B = 2^30, C = 2^32.
//!
//! Parallelization uses the LCG jump-ahead, so a parallel run produces
//! *bitwise identical* sums to a serial run — asserted in tests.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

use super::Class;

// Logical trace addresses. EP's entire memory life is the two-word LCG
// state hammered in place (per block, so streams don't alias) and the
// ten annulus tallies plus two Gaussian sums folded at block end —
// recorded coarsely per block so the hot loop stays untouched. Chunk
// ids are the fixed block indices, width-invariant by construction.
const TRACE_RNG: u64 = 0x1_0000_0000;
const TRACE_BINS: u64 = 0x2_0000_0000;

/// Machine operations per generated pair (transcendental expansion,
/// acceptance test, tallying), calibrated so the roofline model
/// reproduces the paper's measured EP runtimes on all three servers.
pub const OPS_PER_PAIR: f64 = 156.0;
/// NPB-counted operations per pair (the tiny "Mop" figure that makes the
/// paper's EP performance 0.0126–0.759 GFLOPS).
pub const REPORTED_FLOPS_PER_PAIR: f64 = 1.78;

/// The EP benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Ep {
    class: Class,
}

impl Ep {
    /// EP at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// log2 of the pair count for the class.
    pub fn log2_pairs(&self) -> u32 {
        match self.class {
            Class::W => 25,
            Class::A => 28,
            Class::B => 30,
            Class::C => 32,
        }
    }

    /// Total pair count `2^m`.
    pub fn pairs(&self) -> u64 {
        1u64 << self.log2_pairs()
    }
}

/// Result of an EP run: Gaussian sums and the annulus tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Σ of accepted Gaussian X deviates.
    pub sx: f64,
    /// Σ of accepted Gaussian Y deviates.
    pub sy: f64,
    /// Counts per annulus `⌊max(|X|,|Y|)⌋` ∈ 0..10.
    pub q: [u64; 10],
}

impl EpResult {
    /// Number of accepted pairs.
    pub fn accepted(&self) -> u64 {
        self.q.iter().sum()
    }
}

/// Fixed logical block count of the parallel decomposition. Work is
/// always split into this many LCG sub-streams and the partial sums are
/// folded in block order, so the result is *bitwise identical* for any
/// worker count (floating point addition is not associative; a
/// thread-count-shaped split would change the answer).
pub const BLOCKS: u64 = 256;

/// Run EP over `2^m` pairs using `threads` workers.
pub fn run(m: u32, threads: usize) -> EpResult {
    let pairs = 1u64 << m;
    let chunk = pairs.div_ceil(BLOCKS);
    let base = NpbRng::default_seed();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    hooks::begin_epoch(Region::Ep);
    let mut partials: Vec<(u64, EpResult)> = pool.install(|| {
        (0..BLOCKS)
            .into_par_iter()
            .map(|b| {
                let start = b * chunk;
                let count = chunk.min(pairs.saturating_sub(start));
                let mut rng = base.at_offset(start * 2);
                let part = run_range(&mut rng, count);
                if hooks::chunk_enabled(Region::Ep, b) {
                    let r = Region::Ep;
                    // Stride-0 bursts: the same state words over and over
                    // — the register/L1 residency that makes EP the
                    // low-power pole.
                    hooks::record(r, b, AccessKind::Read, TRACE_RNG + b * 16, 0, 64);
                    hooks::record(r, b, AccessKind::Write, TRACE_RNG + b * 16, 0, 64);
                    hooks::record(r, b, AccessKind::Read, TRACE_BINS, 8, 12);
                    hooks::record(r, b, AccessKind::Write, TRACE_BINS, 8, 12);
                }
                (b, part)
            })
            .collect()
    });
    partials.sort_by_key(|(b, _)| *b);

    let mut total = EpResult { sx: 0.0, sy: 0.0, q: [0; 10] };
    for (_, part) in partials {
        total.sx += part.sx;
        total.sy += part.sy;
        for (acc, v) in total.q.iter_mut().zip(part.q) {
            *acc += v;
        }
    }
    total
}

/// Process `count` pairs drawn from `rng`.
fn run_range(rng: &mut NpbRng, count: u64) -> EpResult {
    let mut res = EpResult { sx: 0.0, sy: 0.0, q: [0; 10] };
    for _ in 0..count {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let f = (-2.0 * t.ln() / t).sqrt();
            let gx = x * f;
            let gy = y * f;
            let bin = gx.abs().max(gy.abs()) as usize;
            if bin < 10 {
                res.q[bin] += 1;
                res.sx += gx;
                res.sy += gy;
            }
        }
    }
    res
}

impl Benchmark for Ep {
    fn id(&self) -> &'static str {
        "ep"
    }

    fn display_name(&self) -> String {
        format!("ep.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let pairs = self.pairs() as f64;
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: REPORTED_FLOPS_PER_PAIR * pairs,
            work_ops: OPS_PER_PAIR * pairs,
            dram_bytes: 2e6, // tallies only; everything lives in registers/L1
            footprint_bytes: 30.0 * f64::from(1u32 << 20),
            footprint_per_proc_bytes: 4.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.015,
            cpu_intensity: 0.38,
            kind: ComputeKind::Scalar,
            locality: LocalityProfile::compute_resident(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, threads: usize) -> VerifyOutcome {
        let m = 18; // 262,144 pairs: fast but statistically meaningful
        let serial = run(m, 1);
        let parallel = run(m, threads.max(2));
        if serial != parallel {
            return VerifyOutcome::fail("parallel EP diverged from serial reference");
        }
        // Polar-method acceptance rate is π/4 ≈ 0.7854.
        let rate = serial.accepted() as f64 / f64::from(1u32 << m);
        if (rate - std::f64::consts::FRAC_PI_4).abs() > 0.01 {
            return VerifyOutcome::fail(format!("acceptance rate {rate:.4} far from π/4"));
        }
        // Gaussian sums should be near zero relative to the sample count.
        let scale = (serial.accepted() as f64).sqrt() * 4.0;
        if serial.sx.abs() > scale || serial.sy.abs() > scale {
            return VerifyOutcome::fail(format!(
                "sums off: sx={} sy={} (limit {scale})",
                serial.sx, serial.sy
            ));
        }
        VerifyOutcome::pass(
            format!("m={m} accepted={} sx={:.4} sy={:.4}", serial.accepted(), serial.sx, serial.sy),
            OPS_PER_PAIR * f64::from(1u32 << m),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pair_counts() {
        assert_eq!(Ep::new(Class::A).pairs(), 1 << 28);
        assert_eq!(Ep::new(Class::C).pairs(), 1 << 32);
    }

    #[test]
    fn parallel_is_bitwise_deterministic() {
        let r1 = run(14, 1);
        let r2 = run(14, 2);
        let r7 = run(14, 7);
        assert_eq!(r1, r2);
        assert_eq!(r1, r7);
    }

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let r = run(16, 4);
        let rate = r.accepted() as f64 / f64::from(1u32 << 16);
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gaussian_bins_decay() {
        // The annulus counts must be strongly decreasing: |N(0,1)| mass
        // falls off fast.
        let r = run(16, 2);
        assert!(r.q[0] > r.q[1]);
        assert!(r.q[1] > r.q[2]);
        // P(3 < max(|X|,|Y|) < 4) ≈ 0.0026 vs P(max < 1) ≈ 0.50.
        assert!(r.q[3] < r.q[0] / 50);
    }

    #[test]
    fn gaussian_second_moment() {
        // Var of the accepted deviates should be ~1. Estimate from sums of
        // squares computed through a fresh pass.
        let mut rng = NpbRng::default_seed();
        let mut n = 0u64;
        let mut ss = 0.0;
        for _ in 0..(1u32 << 15) {
            let x = 2.0 * rng.next_f64() - 1.0;
            let y = 2.0 * rng.next_f64() - 1.0;
            let t = x * x + y * y;
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                ss += (x * f).powi(2) + (y * f).powi(2);
                n += 2;
            }
        }
        let var = ss / n as f64;
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn verify_passes() {
        let out = Ep::new(Class::C).verify(4);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn signature_is_low_power_low_memory() {
        let sig = Ep::new(Class::C).signature();
        assert!(sig.cpu_intensity < 0.5, "EP must be the low-power pole");
        assert!(sig.footprint_at(4) < 100e6, "EP has no real footprint");
        assert!(sig.comm_fraction < 0.05);
    }
}
