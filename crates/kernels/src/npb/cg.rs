//! NPB CG — the Conjugate Gradient kernel.
//!
//! CG estimates the smallest eigenvalue of a large sparse symmetric
//! positive-definite matrix by inverse power iteration: each outer
//! iteration solves `A·z = x` with 25 unpreconditioned conjugate-gradient
//! steps and updates `ζ = λ_shift + 1 / (xᵀz)`. Its irregular sparse
//! matrix-vector products make it the suite's memory-latency stressor.
//!
//! Class parameters (na, nonzer/row seed, outer iterations, shift):
//! A = (14000, 11, 15, 20), B = (75000, 13, 75, 60),
//! C = (150000, 15, 75, 110).
//!
//! The MPI reference implementation replicates substantial per-rank
//! buffers, which is what the paper trips over: cg.C.1 fits the 8 GiB
//! Xeon-E5462 but cg.C.2 and cg.C.4 do not (Fig 3), while cg.C.16 runs
//! within the Opteron's 32 GiB (Fig 4). The signature encodes that.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::simd;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

use super::Class;

// Logical trace addresses of the matvec operands. The row index is the
// chunk id (each row is one rayon item, so the id is width-invariant).
const TRACE_ROWPTR: u64 = 0x1_0000_0000;
const TRACE_COLS: u64 = 0x2_0000_0000;
const TRACE_VALS: u64 = 0x3_0000_0000;
const TRACE_X: u64 = 0x4_0000_0000;
const TRACE_Y: u64 = 0x5_0000_0000;

/// The CG benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Cg {
    class: Class,
}

/// Class parameter tuple.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Matrix order.
    pub na: u64,
    /// Nonzeros seeded per row before symmetrization.
    pub nonzer: u32,
    /// Outer (power iteration) steps.
    pub niter: u32,
    /// Eigenvalue shift λ.
    pub shift: f64,
}

impl Cg {
    /// CG at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// Published class parameters.
    pub fn params(&self) -> CgParams {
        match self.class {
            Class::W => CgParams { na: 7_000, nonzer: 8, niter: 15, shift: 12.0 },
            Class::A => CgParams { na: 14_000, nonzer: 11, niter: 15, shift: 20.0 },
            Class::B => CgParams { na: 75_000, nonzer: 13, niter: 75, shift: 60.0 },
            Class::C => CgParams { na: 150_000, nonzer: 15, niter: 75, shift: 110.0 },
        }
    }

    /// Total reported operations (the official NPB Mop counts).
    pub fn reported_flops(&self) -> f64 {
        match self.class {
            Class::W => 3.0e8,
            Class::A => 1.508e9,
            Class::B => 5.489e10,
            Class::C => 1.433e11,
        }
    }
}

/// Compressed sparse row matrix (symmetric positive definite by
/// construction).
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    /// Matrix order.
    pub n: usize,
    /// Row start offsets, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

impl SparseMatrix {
    /// Build an NPB-style random sparse SPD matrix: `nonzer` random
    /// off-diagonal entries per row, symmetrized, with a dominant
    /// diagonal (`row_sum + 1`) guaranteeing positive definiteness.
    pub fn npb_like(n: usize, nonzer: u32, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        // Collect symmetric entries in triplet form, then build CSR.
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(n * nonzer as usize * 2);
        for r in 0..n as u32 {
            for _ in 0..nonzer {
                let c = (rng.next_f64() * n as f64) as u32 % n as u32;
                let v = rng.next_f64() - 0.5;
                if c != r {
                    triplets.push((r, c, v));
                    triplets.push((c, r, v));
                }
            }
        }
        // Row counts.
        let mut counts = vec![0usize; n + 1];
        for &(r, _, _) in &triplets {
            counts[r as usize + 1] += 1;
        }
        // +1 slot per row for the diagonal.
        let mut row_ptr = vec![0usize; n + 1];
        for i in 0..n {
            row_ptr[i + 1] = row_ptr[i] + counts[i + 1] + 1;
        }
        let nnz = row_ptr[n];
        let mut cols = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor: Vec<usize> = row_ptr[..n].to_vec();
        // Reserve the first slot of each row for the diagonal.
        let diag_pos: Vec<usize> = cursor.clone();
        for c in cursor.iter_mut() {
            *c += 1;
        }
        let mut abs_row_sum = vec![0.0f64; n];
        for (r, c, v) in triplets {
            let at = cursor[r as usize];
            cols[at] = c;
            vals[at] = v;
            cursor[r as usize] += 1;
            abs_row_sum[r as usize] += v.abs();
        }
        for r in 0..n {
            cols[diag_pos[r]] = r as u32;
            vals[diag_pos[r]] = abs_row_sum[r] + 1.0;
        }
        Self { n, row_ptr, cols, vals }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A·x`, rayon-parallel over rows.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        // Every CG step revisits every row; the epoch keeps the per-row
        // traces of successive matvecs apart so replay sees each sweep.
        hooks::begin_epoch(Region::Cg);
        y.par_iter_mut().enumerate().for_each(|(r, out)| {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut s = 0.0;
            for k in lo..hi {
                s += self.vals[k] * x[self.cols[k] as usize];
            }
            *out = s;
            // Trace the row's stream: row_ptr pair, vals/cols runs, the
            // irregular x gathers (one event each — they are what makes
            // CG the latency stressor), and the y write.
            let chunk = r as u64;
            if hooks::chunk_enabled(Region::Cg, chunk) {
                let rg = Region::Cg;
                let nnz = (hi - lo) as u32;
                hooks::record(rg, chunk, AccessKind::Read, TRACE_ROWPTR + (r * 8) as u64, 8, 2);
                hooks::record(rg, chunk, AccessKind::Read, TRACE_VALS + (lo * 8) as u64, 8, nnz);
                hooks::record(rg, chunk, AccessKind::Read, TRACE_COLS + (lo * 4) as u64, 4, nnz);
                for k in lo..hi {
                    let at = TRACE_X + u64::from(self.cols[k]) * 8;
                    hooks::record(rg, chunk, AccessKind::Read, at, 0, 1);
                }
                hooks::record(rg, chunk, AccessKind::Write, TRACE_Y + (r * 8) as u64, 8, 1);
            }
        });
    }
}

/// One NPB outer iteration: 25 CG steps on `A·z = x`; returns `(z,
/// final residual norm)`.
pub fn cg_solve(a: &SparseMatrix, x: &[f64]) -> (Vec<f64>, f64) {
    let n = a.n;
    let m = simd::mode();
    let mut z = vec![0.0; n];
    let mut r = x.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rho: f64 = dot(m, &r, &r);
    for _ in 0..25 {
        a.matvec(&p, &mut q);
        let alpha = rho / dot(m, &p, &q);
        // Elementwise axpy updates over fixed spans: disjoint writes,
        // width-invariant, and `r + (−α)·q` is bitwise `r − α·q`.
        z.par_chunks_mut(DOT_CHUNK)
            .zip(p.par_chunks(DOT_CHUNK))
            .for_each(|(zc, pc)| simd::axpy(m, zc, pc, alpha));
        r.par_chunks_mut(DOT_CHUNK)
            .zip(q.par_chunks(DOT_CHUNK))
            .for_each(|(rc, qc)| simd::axpy(m, rc, qc, -alpha));
        let rho_new = dot(m, &r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        p.par_chunks_mut(DOT_CHUNK)
            .zip(r.par_chunks(DOT_CHUNK))
            .for_each(|(pc, rc)| simd::xpby(m, pc, rc, beta));
    }
    // NPB reports ‖x − A·z‖ as the residual.
    a.matvec(&z, &mut q);
    let res = x.iter().zip(&q).map(|(xi, qi)| (xi - qi) * (xi - qi)).sum::<f64>().sqrt();
    (z, res)
}

/// Chunk length of the parallel dot product. Fixed (never derived from
/// the pool width) so the float summation tree — the strided-4 SIMD
/// contract within a chunk, partials combined in chunk order — rounds
/// identically at any width and on either SIMD path.
const DOT_CHUNK: usize = 4096;

fn dot(m: simd::SimdMode, a: &[f64], b: &[f64]) -> f64 {
    let partials: Vec<f64> = a
        .par_chunks(DOT_CHUNK)
        .zip(b.par_chunks(DOT_CHUNK))
        .map(|(ca, cb)| simd::dot(m, ca, cb))
        .collect();
    partials.iter().sum()
}

/// Result of the full benchmark loop.
#[derive(Debug, Clone, Copy)]
pub struct CgOutcome {
    /// Final ζ estimate.
    pub zeta: f64,
    /// Final inner residual.
    pub residual: f64,
}

/// Run the NPB CG structure: `niter` outer iterations of
/// (solve, ζ update, renormalize).
pub fn run(n: usize, nonzer: u32, niter: u32, shift: f64) -> CgOutcome {
    let a = SparseMatrix::npb_like(n, nonzer, 314_159_265);
    let m = simd::mode();
    let mut x = vec![1.0; n];
    let mut zeta = 0.0;
    let mut residual = 0.0;
    for _ in 0..niter {
        let (z, res) = cg_solve(&a, &x);
        residual = res;
        let xz = dot(m, &x, &z);
        zeta = shift + 1.0 / xz;
        // x = z / ‖z‖ (elementwise, per-lane division — width-invariant).
        let norm = dot(m, &z, &z).sqrt();
        x.par_chunks_mut(DOT_CHUNK)
            .zip(z.par_chunks(DOT_CHUNK))
            .for_each(|(xc, zc)| simd::scale_div(m, xc, zc, norm));
    }
    CgOutcome { zeta, residual }
}

impl Benchmark for Cg {
    fn id(&self) -> &'static str {
        "cg"
    }

    fn display_name(&self) -> String {
        format!("cg.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let flops = self.reported_flops();
        let (base_gb, per_proc_gb) = match self.class {
            Class::W => (0.02, 0.01),
            Class::A => (0.06, 0.03),
            Class::B => (0.45, 0.12),
            // Base + per-rank replication chosen to reproduce the paper's
            // runnability matrix: 6.5 + 1·p GiB ⇒ p=1 fits 8 GiB, p≥2
            // does not; p=16 fits 32 GiB.
            Class::C => (6.5, 1.0),
        };
        let gib = f64::from(1u32 << 30);
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.25,
            dram_bytes: flops * 5.0, // sparse matvec: ~10 B + 2 flops per nnz
            footprint_bytes: base_gb * gib,
            footprint_per_proc_bytes: per_proc_gb * gib,
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.12,
            cpu_intensity: 0.72,
            kind: ComputeKind::Mixed(0.55),
            locality: LocalityProfile {
                instr_per_op: 2.2,
                accesses_per_instr: 0.42,
                l1_hit: 0.62,
                l2_hit: 0.18,
                l3_hit: 0.08,
                mem: 0.12,
                write_fraction: 0.15,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::PowerOfTwo
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        // Scaled instance with the class-A structure.
        let out = run(1400, 7, 5, 10.0);
        let ok = out.residual < 1e-8 && out.zeta.is_finite() && out.zeta > 10.0;
        if ok {
            VerifyOutcome::pass(
                format!("zeta={:.6} residual={:.3e}", out.zeta, out.residual),
                1400.0 * 7.0 * 2.0 * 25.0 * 5.0 * 2.0,
            )
        } else {
            VerifyOutcome::fail(format!("zeta={} residual={} out of range", out.zeta, out.residual))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        let a = SparseMatrix::npb_like(200, 5, 42);
        // Gather into a dense map and check A[i][j] == A[j][i].
        let mut dense = vec![0.0f64; 200 * 200];
        for r in 0..200 {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                dense[r * 200 + a.cols[k] as usize] += a.vals[k];
            }
        }
        for i in 0..200 {
            for j in 0..200 {
                assert!(
                    (dense[i * 200 + j] - dense[j * 200 + i]).abs() < 1e-12,
                    "asymmetry at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let a = SparseMatrix::npb_like(300, 6, 7);
        for r in 0..300 {
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                if a.cols[k] as usize == r {
                    diag += a.vals[k];
                } else {
                    off += a.vals[k].abs();
                }
            }
            assert!(diag > off, "row {r}: diag {diag} <= off {off}");
        }
    }

    #[test]
    fn cg_solves_to_small_residual() {
        let a = SparseMatrix::npb_like(500, 8, 99);
        let x = vec![1.0; 500];
        let (_, res) = cg_solve(&a, &x);
        assert!(res < 1e-6, "residual {res}");
    }

    #[test]
    fn zeta_converges_and_is_stable() {
        // Power iteration: successive zeta deltas must shrink, i.e. the
        // estimate settles as outer iterations accumulate.
        let z4 = run(800, 6, 4, 10.0).zeta;
        let z8 = run(800, 6, 8, 10.0).zeta;
        let z12 = run(800, 6, 12, 10.0).zeta;
        let early = (z8 - z4).abs();
        let late = (z12 - z8).abs();
        assert!(late < early, "not converging: |{z8}-{z4}|={early} then |{z12}-{z8}|={late}");
        assert!(z12.is_finite() && z12 > 10.0);
    }

    #[test]
    fn verify_passes() {
        let out = Cg::new(Class::C).verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn class_c_reproduces_paper_runnability() {
        // Fig 3 / Fig 4: cg.C.1 runs in 8 GiB; cg.C.2/4 do not;
        // cg.C.8/16 run in 32 GiB.
        let sig = Cg::new(Class::C).signature();
        let gib8 = 8u64 << 30;
        let gib32 = 32u64 << 30;
        assert!(sig.fits_in(1, gib8));
        assert!(!sig.fits_in(2, gib8));
        assert!(!sig.fits_in(4, gib8));
        assert!(sig.fits_in(8, gib32));
        assert!(sig.fits_in(16, gib32));
    }

    #[test]
    fn signature_is_memory_heavy() {
        let sig = Cg::new(Class::B).signature();
        assert!(sig.arithmetic_intensity() < 1.0, "CG must be memory bound");
    }
}
