//! NPB MG — the Multi-Grid kernel.
//!
//! MG applies V-cycles of a geometric multigrid solver to a 3-D Poisson
//! problem `∇²u = v` on a periodic cubic grid: smooth, compute the
//! residual, restrict it to a coarser grid, recurse, prolongate the
//! correction back and smooth again. Its regular sweeps over large 3-D
//! arrays make it bandwidth-hungry with good spatial locality.
//!
//! Class sizes: A = 256³ / 4 iterations, B = 256³ / 20, C = 512³ / 20.
//!
//! The implementation is a damped-Jacobi V-cycle over a 7-point stencil —
//! structurally the same restrict/prolongate/smooth ladder as NPB's
//! 27-point version, verified by residual contraction per cycle.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::simd;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

use super::Class;

// Logical trace addresses of the stencil operands. Grids of different
// edges live in disjoint 1 GiB regions (level = log2 edge), and the
// chunk id is `(edge << 32) | z-plane` — both width-invariant and
// unambiguous across the V-cycle recursion.
const TRACE_U: u64 = 0x10_0000_0000;
const TRACE_V: u64 = 0x20_0000_0000;
const TRACE_OUT: u64 = 0x30_0000_0000;
const TRACE_LEVEL: u64 = 1 << 30;

/// Span length each smoothing task hands to the SIMD micro-kernels;
/// purely a dispatch granularity (elementwise update, so any chunking
/// yields identical bits at every width and SIMD path).
const SPAN: usize = 8192;

/// Reported floating point operations per grid point per iteration
/// (from the official NPB operation counts: MG.A = 3,905 Mop over
/// 256³ × 4).
pub const FLOPS_PER_POINT_ITER: f64 = 58.0;

/// The MG benchmark at a given class.
#[derive(Debug, Clone, Copy)]
pub struct Mg {
    class: Class,
}

impl Mg {
    /// MG at `class`.
    pub fn new(class: Class) -> Self {
        Self { class }
    }

    /// (grid edge, iterations) for the class.
    pub fn params(&self) -> (u64, u32) {
        match self.class {
            Class::W => (128, 4),
            Class::A => (256, 4),
            Class::B => (256, 20),
            Class::C => (512, 20),
        }
    }
}

/// A periodic cubic grid of edge `n` (power of two).
#[derive(Debug, Clone)]
pub struct Grid {
    /// Edge length.
    pub n: usize,
    /// `n³` values, x-fastest.
    pub data: Vec<f64>,
}

impl Grid {
    /// Zero grid.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n * n] }
    }

    /// Random right-hand side with zero mean (required for a solvable
    /// periodic Poisson problem).
    pub fn random_rhs(n: usize, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        let mut data: Vec<f64> = (0..n * n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        for v in data.iter_mut() {
            *v -= mean;
        }
        Self { n, data }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }

    /// L2 norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// `out = v − A·u` where `A` is the periodic 7-point −∇² stencil.
pub fn residual(u: &Grid, v: &Grid, out: &mut Grid) {
    let n = u.n;
    let m = simd::mode();
    // A V-cycle hits each level's planes several times (and cycles
    // repeat); the epoch separates the sweeps in the trace.
    hooks::begin_epoch(Region::Mg);
    out.data.par_chunks_mut(n * n).enumerate().for_each(|(z, plane)| {
        let zm = (z + n - 1) % n;
        let zp = (z + 1) % n;
        let row = |zz: usize, yy: usize| (zz * n + yy) * n;
        // Trace the plane's stream: v and the three u planes read,
        // the out plane written. Unit-stride doubles; one branch per
        // plane when untraced.
        let chunk = ((n as u64) << 32) | z as u64;
        if hooks::chunk_enabled(Region::Mg, chunk) {
            let rg = Region::Mg;
            let lvl = TRACE_LEVEL * u64::from(n.trailing_zeros());
            let plane_bytes = (n * n * 8) as u32;
            let at = |base: u64, zz: usize| base + lvl + (zz as u64) * u64::from(plane_bytes);
            hooks::record(rg, chunk, AccessKind::Read, at(TRACE_V, z), 8, plane_bytes / 8);
            for zz in [zm, z, zp] {
                hooks::record(rg, chunk, AccessKind::Read, at(TRACE_U, zz), 8, plane_bytes / 8);
            }
            hooks::record(rg, chunk, AccessKind::Write, at(TRACE_OUT, z), 8, plane_bytes / 8);
        }
        for y in 0..n {
            let ym = (y + n - 1) % n;
            let yp = (y + 1) % n;
            let ry = row(z, y);
            // Interior columns: the x±1 neighbors are this row shifted
            // by one element and the y±1/z±1 neighbors are the adjacent
            // rows, so the whole span feeds the SIMD stencil kernel.
            if n >= 2 {
                simd::stencil7(
                    m,
                    &mut plane[y * n + 1..y * n + n - 1],
                    &v.data[ry + 1..ry + n - 1],
                    &u.data[ry + 1..ry + n - 1],
                    &u.data[ry..ry + n - 2],
                    &u.data[ry + 2..ry + n],
                    &u.data[row(z, ym) + 1..row(z, ym) + n - 1],
                    &u.data[row(z, yp) + 1..row(z, yp) + n - 1],
                    &u.data[row(zm, y) + 1..row(zm, y) + n - 1],
                    &u.data[row(zp, y) + 1..row(zp, y) + n - 1],
                );
            }
            // Periodic boundary columns wrap around the row.
            for x in [0, n.saturating_sub(1)] {
                let xm = (x + n - 1) % n;
                let xp = (x + 1) % n;
                let au = 6.0 * u.data[ry + x]
                    - u.data[ry + xm]
                    - u.data[ry + xp]
                    - u.data[row(z, ym) + x]
                    - u.data[row(z, yp) + x]
                    - u.data[row(zm, y) + x]
                    - u.data[row(zp, y) + x];
                plane[y * n + x] = v.data[ry + x] - au;
            }
        }
    });
}

/// One damped-Jacobi smoothing sweep `u += ω·D⁻¹·(v − A·u)`.
///
/// Allocates a residual scratch per call; hot loops should hold an
/// [`MgWorkspace`] and use [`smooth_with`].
pub fn smooth(u: &mut Grid, v: &Grid, omega: f64) {
    let mut r = Grid::zeros(u.n);
    smooth_with(u, v, omega, &mut r);
}

/// [`smooth`] against a caller-owned residual scratch (same edge as
/// `u`); performs no heap allocation.
pub fn smooth_with(u: &mut Grid, v: &Grid, omega: f64, r: &mut Grid) {
    residual(u, v, r);
    let w = omega / 6.0;
    let m = simd::mode();
    u.data
        .par_chunks_mut(SPAN)
        .zip(r.data.par_chunks(SPAN))
        .for_each(|(uc, rc)| simd::axpy(m, uc, rc, w));
}

/// Full-weighting restriction to the half-resolution grid.
pub fn restrict(fine: &Grid) -> Grid {
    let mut coarse = Grid::zeros(fine.n / 2);
    restrict_into(fine, &mut coarse);
    coarse
}

/// [`restrict`] into a caller-owned half-resolution grid; parallel over
/// coarse points (independent 2×2×2 cell averages, width-invariant).
pub fn restrict_into(fine: &Grid, coarse: &mut Grid) {
    let nc = coarse.n;
    let n = fine.n;
    assert_eq!(n, nc * 2, "coarse grid must be half the fine edge");
    coarse.data.par_iter_mut().enumerate().for_each(|(i, out)| {
        let x = (i % nc) * 2;
        let y = ((i / nc) % nc) * 2;
        let z = (i / (nc * nc)) * 2;
        // Average the 2×2×2 cell.
        let mut s = 0.0;
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    s += fine.data[fine.idx((x + dx) % n, (y + dy) % n, (z + dz) % n)];
                }
            }
        }
        *out = s / 8.0 * 4.0; // scale: coarse operator has 4x the cell area
    });
}

/// Trilinear-ish prolongation: inject the coarse value into its 2×2×2
/// fine cell. Parallel over coarse z-planes — each writes exactly one
/// disjoint pair of fine planes, so the update is width-invariant.
pub fn prolongate_add(coarse: &Grid, fine: &mut Grid) {
    let nc = coarse.n;
    let n = fine.n;
    assert_eq!(n, nc * 2, "fine grid must be twice the coarse edge");
    fine.data.par_chunks_mut(2 * n * n).enumerate().for_each(|(zc, planes)| {
        for y in 0..nc {
            for x in 0..nc {
                let v = coarse.data[coarse.idx(x, y, zc)];
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            planes[(dz * n + 2 * y + dy) * n + 2 * x + dx] += v;
                        }
                    }
                }
            }
        }
    });
}

/// Reusable V-cycle storage: one residual scratch per level plus the
/// restricted-residual / coarse-correction grids feeding the next
/// level, recursively down to the 4³ base. With a warm workspace,
/// [`v_cycle_with`] allocates nothing.
#[derive(Debug, Clone)]
pub struct MgWorkspace {
    r: Grid,
    down: Option<Box<Down>>,
}

#[derive(Debug, Clone)]
struct Down {
    rc: Grid,
    ec: Grid,
    ws: MgWorkspace,
}

impl MgWorkspace {
    /// Workspace for V-cycles on an edge-`n` grid.
    pub fn new(n: usize) -> Self {
        let down = (n > 4).then(|| {
            Box::new(Down {
                rc: Grid::zeros(n / 2),
                ec: Grid::zeros(n / 2),
                ws: MgWorkspace::new(n / 2),
            })
        });
        Self { r: Grid::zeros(n), down }
    }
}

/// One V-cycle on `A·u = v`; recurses down to a 4³ grid.
///
/// Allocates a fresh [`MgWorkspace`] per call; hot loops should hold
/// one and call [`v_cycle_with`].
pub fn v_cycle(u: &mut Grid, v: &Grid) {
    let mut ws = MgWorkspace::new(u.n);
    v_cycle_with(u, v, &mut ws);
}

/// [`v_cycle`] against caller-owned storage for every level of the
/// hierarchy; performs no heap allocation.
pub fn v_cycle_with(u: &mut Grid, v: &Grid, ws: &mut MgWorkspace) {
    const OMEGA: f64 = 0.8;
    let MgWorkspace { r, down } = ws;
    assert_eq!(u.n, r.n, "workspace must match the grid edge");
    smooth_with(u, v, OMEGA, r);
    smooth_with(u, v, OMEGA, r);
    if let Some(down) = down.as_deref_mut() {
        residual(u, v, r);
        restrict_into(r, &mut down.rc);
        down.ec.data.fill(0.0);
        v_cycle_with(&mut down.ec, &down.rc, &mut down.ws);
        prolongate_add(&down.ec, u);
    }
    smooth_with(u, v, OMEGA, r);
    smooth_with(u, v, OMEGA, r);
}

impl Benchmark for Mg {
    fn id(&self) -> &'static str {
        "mg"
    }

    fn display_name(&self) -> String {
        format!("mg.{}", self.class)
    }

    fn signature(&self) -> WorkloadSignature {
        let (edge, iters) = self.params();
        let pts = (edge * edge * edge) as f64;
        let flops = FLOPS_PER_POINT_ITER * pts * f64::from(iters);
        // u, v, r over the grid hierarchy (Σ 1/8^k ≈ 8/7 of the top grid)
        // plus workspace: ≈ 4.7 arrays of 8 B per point.
        let footprint = pts * 8.0 * 4.7;
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.15,
            dram_bytes: flops * 1.5, // stencil sweeps stream the arrays
            footprint_bytes: footprint,
            footprint_per_proc_bytes: 20.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.10,
            cpu_intensity: 0.72,
            kind: ComputeKind::Mixed(0.7),
            locality: LocalityProfile {
                instr_per_op: 1.6,
                accesses_per_instr: 0.42,
                l1_hit: 0.78,
                l2_hit: 0.08,
                l3_hit: 0.04,
                mem: 0.10,
                write_fraction: 0.3,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::PowerOfTwo
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 32;
        let v = Grid::random_rhs(n, 1234);
        let mut u = Grid::zeros(n);
        let mut r = Grid::zeros(n);
        residual(&u, &v, &mut r);
        let r0 = r.norm();
        let mut norms = vec![r0];
        for _ in 0..4 {
            v_cycle(&mut u, &v);
            residual(&u, &v, &mut r);
            norms.push(r.norm());
        }
        let last = *norms.last().expect("norms nonempty");
        let contraction = (last / r0).powf(1.0 / 4.0);
        if contraction < 0.5 && last.is_finite() {
            VerifyOutcome::pass(
                format!("4 V-cycles: r0={r0:.3e} -> {last:.3e} (rate {contraction:.3})"),
                FLOPS_PER_POINT_ITER * (n * n * n) as f64 * 4.0,
            )
        } else {
            VerifyOutcome::fail(format!("poor contraction {contraction:.3}: {norms:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_of_exact_zero_solution_is_rhs() {
        let n = 8;
        let v = Grid::random_rhs(n, 5);
        let u = Grid::zeros(n);
        let mut r = Grid::zeros(n);
        residual(&u, &v, &mut r);
        for (a, b) in r.data.iter().zip(&v.data) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn smoothing_reduces_residual() {
        let n = 16;
        let v = Grid::random_rhs(n, 9);
        let mut u = Grid::zeros(n);
        let mut r = Grid::zeros(n);
        residual(&u, &v, &mut r);
        let before = r.norm();
        for _ in 0..10 {
            smooth(&mut u, &v, 0.8);
        }
        residual(&u, &v, &mut r);
        assert!(r.norm() < before, "{} !< {before}", r.norm());
    }

    #[test]
    fn v_cycle_contracts_residual() {
        let n = 16;
        let v = Grid::random_rhs(n, 31);
        let mut u = Grid::zeros(n);
        let mut r = Grid::zeros(n);
        residual(&u, &v, &mut r);
        let r0 = r.norm();
        v_cycle(&mut u, &v);
        residual(&u, &v, &mut r);
        assert!(r.norm() < r0 * 0.5, "one V-cycle: {} -> {}", r0, r.norm());
    }

    #[test]
    fn restriction_halves_edge() {
        let g = Grid::zeros(16);
        assert_eq!(restrict(&g).n, 8);
    }

    #[test]
    fn reused_workspace_matches_fresh_cycles() {
        let n = 16;
        let v = Grid::random_rhs(n, 31);
        let mut with_ws = Grid::zeros(n);
        let mut fresh = Grid::zeros(n);
        let mut ws = MgWorkspace::new(n);
        for _ in 0..3 {
            v_cycle_with(&mut with_ws, &v, &mut ws);
            v_cycle(&mut fresh, &v);
        }
        assert_eq!(with_ws.data, fresh.data);
    }

    #[test]
    fn restriction_preserves_constant_fields() {
        let mut g = Grid::zeros(8);
        g.data.fill(2.0);
        let c = restrict(&g);
        for v in &c.data {
            assert!((v - 8.0).abs() < 1e-12); // 2.0 * 4 (area scale)
        }
    }

    #[test]
    fn verify_passes() {
        let out = Mg::new(Class::C).verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn signature_footprints_match_class_sizes() {
        // MG.C (512³) must be ~8x MG.B (256³).
        let b = Mg::new(Class::B).signature();
        let c = Mg::new(Class::C).signature();
        assert!((c.footprint_bytes / b.footprint_bytes - 8.0).abs() < 0.1);
    }
}
