//! 5×5 block operations shared by the NPB pseudo-applications.
//!
//! BT, SP and LU all evolve a five-component field (density, three
//! momenta, energy) on a 3-D grid; their implicit solvers operate on 5×5
//! coupling blocks. This module provides the dense block arithmetic:
//! multiply, matvec, in-place Gaussian elimination with partial pivoting,
//! and block-tridiagonal line solves (the heart of BT's ADI sweeps).

/// A dense 5×5 block, row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat5(pub [[f64; 5]; 5]);

/// A 5-component state vector.
pub type Vec5 = [f64; 5];

impl Mat5 {
    /// Zero block.
    pub fn zeros() -> Self {
        Self([[0.0; 5]; 5])
    }

    /// Identity block.
    pub fn identity() -> Self {
        let mut m = Self::zeros();
        for i in 0..5 {
            m.0[i][i] = 1.0;
        }
        m
    }

    /// Scaled identity.
    pub fn scaled_identity(s: f64) -> Self {
        let mut m = Self::zeros();
        for i in 0..5 {
            m.0[i][i] = s;
        }
        m
    }

    /// A diagonally dominant block seeded from `rng`: random couplings
    /// with the diagonal lifted above the absolute row sum.
    pub fn diag_dominant(rng: &mut crate::rng::NpbRng) -> Self {
        let mut m = Self::zeros();
        for r in 0..5 {
            let mut row_sum = 0.0;
            for c in 0..5 {
                if c != r {
                    let v = 0.2 * (rng.next_f64() - 0.5);
                    m.0[r][c] = v;
                    row_sum += v.abs();
                }
            }
            m.0[r][r] = 1.0 + row_sum + rng.next_f64() * 0.5;
        }
        m
    }

    /// `self · v`.
    pub fn matvec(&self, v: &Vec5) -> Vec5 {
        let mut out = [0.0; 5];
        for r in 0..5 {
            let mut s = 0.0;
            for c in 0..5 {
                s += self.0[r][c] * v[c];
            }
            out[r] = s;
        }
        out
    }

    /// `self · other`.
    pub fn matmul(&self, other: &Mat5) -> Mat5 {
        let mut out = Mat5::zeros();
        for r in 0..5 {
            for k in 0..5 {
                let a = self.0[r][k];
                if a != 0.0 {
                    for c in 0..5 {
                        out.0[r][c] += a * other.0[k][c];
                    }
                }
            }
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &Mat5) -> Mat5 {
        let mut out = *self;
        for r in 0..5 {
            for c in 0..5 {
                out.0[r][c] -= other.0[r][c];
            }
        }
        out
    }

    /// Solve `self · x = b` by Gaussian elimination with partial
    /// pivoting. Returns `None` for a numerically singular block.
    pub fn solve(&self, b: &Vec5) -> Option<Vec5> {
        let mut a = self.0;
        let mut x = *b;
        for k in 0..5 {
            // Pivot.
            let (piv, mag) = (k..5).map(|r| (r, a[r][k].abs())).fold((k, -1.0), |best, cur| {
                if cur.1 > best.1 {
                    cur
                } else {
                    best
                }
            });
            if mag < 1e-300 {
                return None;
            }
            if piv != k {
                a.swap(piv, k);
                x.swap(piv, k);
            }
            let d = a[k][k];
            for r in k + 1..5 {
                let m = a[r][k] / d;
                if m != 0.0 {
                    for c in k..5 {
                        a[r][c] -= m * a[k][c];
                    }
                    x[r] -= m * x[k];
                }
            }
        }
        for k in (0..5).rev() {
            let mut s = x[k];
            for c in k + 1..5 {
                s -= a[k][c] * x[c];
            }
            x[k] = s / a[k][k];
        }
        Some(x)
    }

    /// Inverse via five unit-vector solves. `None` if singular.
    pub fn inverse(&self) -> Option<Mat5> {
        let mut inv = Mat5::zeros();
        for c in 0..5 {
            let mut e = [0.0; 5];
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..5 {
                inv.0[r][c] = col[r];
            }
        }
        Some(inv)
    }
}

/// Add two 5-vectors.
pub fn vadd(a: &Vec5, b: &Vec5) -> Vec5 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3], a[4] + b[4]]
}

/// Subtract two 5-vectors.
pub fn vsub(a: &Vec5, b: &Vec5) -> Vec5 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3], a[4] - b[4]]
}

/// Euclidean norm of a 5-vector.
pub fn vnorm(a: &Vec5) -> f64 {
    a.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Solve a block-tridiagonal system in place with the block Thomas
/// algorithm:
/// `lower[i]·x[i-1] + diag[i]·x[i] + upper[i]·x[i+1] = rhs[i]`.
///
/// Returns `false` if a pivot block is singular. `lower[0]` and
/// `upper[n-1]` are ignored.
pub fn block_thomas(lower: &[Mat5], diag: &[Mat5], upper: &[Mat5], rhs: &mut [Vec5]) -> bool {
    let n = diag.len();
    assert!(lower.len() == n && upper.len() == n && rhs.len() == n);
    // Forward elimination: c'[i] = (D - L·c'[i-1])^-1 · U,
    // d'[i] = (D - L·c'[i-1])^-1 · (rhs - L·d'[i-1]).
    let mut cprime = vec![Mat5::zeros(); n];
    let Some(inv0) = diag[0].inverse() else { return false };
    cprime[0] = inv0.matmul(&upper[0]);
    rhs[0] = inv0.matvec(&rhs[0]);
    for i in 1..n {
        let denom = diag[i].sub(&lower[i].matmul(&cprime[i - 1]));
        let Some(inv) = denom.inverse() else { return false };
        if i + 1 < n {
            cprime[i] = inv.matmul(&upper[i]);
        }
        let adj = vsub(&rhs[i], &lower[i].matvec(&rhs[i - 1]));
        rhs[i] = inv.matvec(&adj);
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        let corr = cprime[i].matvec(&rhs[i + 1]);
        rhs[i] = vsub(&rhs[i], &corr);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::NpbRng;

    #[test]
    fn solve_identity_returns_rhs() {
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = Mat5::identity().solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_matches_matvec_round_trip() {
        let mut rng = NpbRng::new(17);
        for _ in 0..20 {
            let m = Mat5::diag_dominant(&mut rng);
            let x_true =
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()];
            let b = m.matvec(&x_true);
            let x = m.solve(&b).unwrap();
            for i in 0..5 {
                assert!((x[i] - x_true[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn singular_block_detected() {
        assert!(Mat5::zeros().solve(&[1.0; 5]).is_none());
        assert!(Mat5::zeros().inverse().is_none());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let mut rng = NpbRng::new(5);
        let m = Mat5::diag_dominant(&mut rng);
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv);
        for r in 0..5 {
            for c in 0..5 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((prod.0[r][c] - want).abs() < 1e-10, "({r},{c})");
            }
        }
    }

    #[test]
    fn block_thomas_solves_manufactured_system() {
        let mut rng = NpbRng::new(99);
        let n = 12;
        let lower: Vec<Mat5> = (0..n).map(|_| Mat5::scaled_identity(-0.2)).collect();
        let upper: Vec<Mat5> = (0..n).map(|_| Mat5::scaled_identity(-0.2)).collect();
        let diag: Vec<Mat5> = (0..n).map(|_| Mat5::diag_dominant(&mut rng)).collect();
        let x_true: Vec<Vec5> = (0..n)
            .map(|_| {
                [rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64(), rng.next_f64()]
            })
            .collect();
        // rhs = L x[i-1] + D x[i] + U x[i+1].
        let mut rhs: Vec<Vec5> = (0..n)
            .map(|i| {
                let mut b = diag[i].matvec(&x_true[i]);
                if i > 0 {
                    b = vadd(&b, &lower[i].matvec(&x_true[i - 1]));
                }
                if i + 1 < n {
                    b = vadd(&b, &upper[i].matvec(&x_true[i + 1]));
                }
                b
            })
            .collect();
        assert!(block_thomas(&lower, &diag, &upper, &mut rhs));
        for i in 0..n {
            for c in 0..5 {
                assert!(
                    (rhs[i][c] - x_true[i][c]).abs() < 1e-9,
                    "x[{i}][{c}]: {} vs {}",
                    rhs[i][c],
                    x_true[i][c]
                );
            }
        }
    }
}
