//! Benchmark kernel implementations for the HPC power evaluation method.
//!
//! The paper's measurements are driven by three benchmark suites, all of
//! which are implemented here from scratch in Rust:
//!
//! * [`hpl`] — High-Performance Linpack: blocked LU factorization with
//!   partial pivoting, parameterized by problem size `N`, block size `NB`
//!   and process grid `P × Q` exactly like the netlib HPL input file.
//! * [`npb`] — the eight NAS Parallel Benchmarks (EP, CG, MG, FT, IS, LU,
//!   BT, SP) with the published class A/B/C problem parameterizations.
//! * [`hpcc`] — the seven HPC Challenge programs (HPL, DGEMM, STREAM,
//!   PTRANS, RandomAccess, FFT, b_eff) used to train the power
//!   regression model.
//!
//! Each program plays two roles:
//!
//! 1. **A real algorithm** — runnable and *verified* (residual checks,
//!    round-trip identities, sortedness) at any problem size, parallelized
//!    with rayon/crossbeam. Tests exercise these at scaled-down sizes.
//! 2. **A resource signature** — closed-form operation counts, DRAM
//!    traffic, footprints and locality for the *published* class sizes,
//!    feeding the simulated servers in `hpceval-machine`/`hpceval-power`.
//!    This is the substitution for running the original Fortran MPI codes
//!    on the paper's hardware (DESIGN.md §2).

// Unsafe is denied everywhere except the SIMD micro-kernel layer
// (`simd`), which opts back in for `core::arch` intrinsics behind
// runtime feature detection and a bitwise scalar-equivalence contract.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over matrix rows/columns are the idiom of numeric
// kernels (they mirror the published algorithms); iterator rewrites of
// back-substitution and pivot application obscure them.
#![allow(clippy::needless_range_loop)]

pub mod fft;
pub mod hpcc;
pub mod hpl;
pub mod npb;
pub mod rng;
pub mod simd;
pub mod streams;
pub mod suite;
pub mod tile;
pub mod transpose;

pub use suite::{Benchmark, ProcConstraint, VerifyOutcome};
