//! HPCC DGEMM — dense matrix-matrix multiply.
//!
//! `C ← α·A·B + β·C` with square matrices, blocked for cache and
//! rayon-parallel over row panels. The HPCC suite's pure compute-bound
//! member: arithmetic intensity grows linearly with the blocking factor,
//! so its signature anchors the high end of the regression training set.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};

use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

/// Cache block edge used by the real multiply.
pub const BLOCK: usize = 48;

/// The DGEMM benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Dgemm {
    /// Matrix order.
    pub n: u64,
}

impl Dgemm {
    /// Size the three matrices to occupy `bytes` of memory.
    pub fn for_memory(bytes: f64) -> Self {
        Self { n: ((bytes / 24.0).sqrt() as u64).max(64) }
    }

    /// Total multiply-add flops `2·n³` plus the scale/accumulate `2·n²`.
    pub fn flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 * n.powi(3) + 2.0 * n * n
    }
}

/// `c ← alpha·a·b + beta·c` for row-major square matrices, blocked and
/// parallel over row panels.
pub fn dgemm(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    c.par_chunks_mut(n * BLOCK.max(1)).enumerate().for_each(|(panel, cpanel)| {
        let r0 = panel * BLOCK;
        let rows = cpanel.len() / n;
        // Scale the C panel by beta once.
        for v in cpanel.iter_mut() {
            *v *= beta;
        }
        // Packed-B micro-kernel: each BLOCK×BLOCK tile of B is copied
        // once into contiguous scratch (18 KiB, L1-resident) and reused
        // across every row of the panel, turning the strided B walk of
        // the inner loop into unit-stride loads. The k loop is unrolled
        // 4× so four B rows stream per C-row pass.
        let mut bt = [0.0f64; BLOCK * BLOCK];
        let mut kb = 0;
        while kb < n {
            let kw = BLOCK.min(n - kb);
            let mut jb = 0;
            while jb < n {
                let jw = BLOCK.min(n - jb);
                for (kk, btrow) in bt.chunks_mut(jw).take(kw).enumerate() {
                    let src = (kb + kk) * n + jb;
                    btrow.copy_from_slice(&b[src..src + jw]);
                }
                for r in 0..rows {
                    let arow = &a[(r0 + r) * n + kb..(r0 + r) * n + kb + kw];
                    let crow = &mut cpanel[r * n + jb..r * n + jb + jw];
                    let mut kk = 0;
                    while kk + 4 <= kw {
                        let a0 = alpha * arow[kk];
                        let a1 = alpha * arow[kk + 1];
                        let a2 = alpha * arow[kk + 2];
                        let a3 = alpha * arow[kk + 3];
                        let (b0, rest) = bt[kk * jw..].split_at(jw);
                        let (b1, rest) = rest.split_at(jw);
                        let (b2, rest) = rest.split_at(jw);
                        for (jj, cv) in crow.iter_mut().enumerate() {
                            *cv += a0 * b0[jj] + a1 * b1[jj] + a2 * b2[jj] + a3 * rest[jj];
                        }
                        kk += 4;
                    }
                    while kk < kw {
                        let ak = alpha * arow[kk];
                        for (cv, bv) in crow.iter_mut().zip(&bt[kk * jw..kk * jw + jw]) {
                            *cv += ak * bv;
                        }
                        kk += 1;
                    }
                }
                jb += jw;
            }
            kb += kw;
        }
    });
}

/// Naive triple loop for verification.
pub fn dgemm_naive(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    for r in 0..n {
        for col in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[r * n + k] * b[k * n + col];
            }
            c[r * n + col] = alpha * s + beta * c[r * n + col];
        }
    }
}

impl Benchmark for Dgemm {
    fn id(&self) -> &'static str {
        "dgemm"
    }

    fn display_name(&self) -> String {
        format!("dgemm.n{}", self.n)
    }

    fn signature(&self) -> WorkloadSignature {
        let n = self.n as f64;
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: self.flops(),
            work_ops: self.flops(),
            // Each element re-read n/BLOCK times across block sweeps.
            dram_bytes: 8.0 * n * n * (n / BLOCK as f64) * 1.2,
            footprint_bytes: 24.0 * n * n,
            footprint_per_proc_bytes: 8.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.005,
            cpu_intensity: 1.0,
            kind: ComputeKind::Vector,
            locality: LocalityProfile::dense_blocked(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 96;
        let mut rng = NpbRng::new(4242);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut fast = c0.clone();
        let mut slow = c0;
        dgemm(n, 1.5, &a, &b, 0.5, &mut fast);
        dgemm_naive(n, 1.5, &a, &b, 0.5, &mut slow);
        let max_err = fast.iter().zip(&slow).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
        if max_err < 1e-10 {
            VerifyOutcome::pass(
                format!("n={n} blocked vs naive max err {max_err:.2e}"),
                2.0 * (n as f64).powi(3),
            )
        } else {
            VerifyOutcome::fail(format!("blocked multiply diverges: {max_err:.3e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_by_identity_is_identity_map() {
        let n = 16;
        let mut rng = NpbRng::new(8);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64()).collect();
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        dgemm(n, 1.0, &a, &eye, 0.0, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_scaling_applied() {
        let n = 8;
        let a = vec![0.0; n * n];
        let b = vec![0.0; n * n];
        let mut c = vec![2.0; n * n];
        dgemm(n, 1.0, &a, &b, 0.25, &mut c);
        assert!(c.iter().all(|&v| (v - 0.5).abs() < 1e-15));
    }

    #[test]
    fn verify_passes() {
        let out = Dgemm { n: 512 }.verify(4);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn blocked_handles_non_multiple_sizes() {
        let n = BLOCK + 13;
        let mut rng = NpbRng::new(77);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut fast = vec![0.0; n * n];
        let mut slow = vec![0.0; n * n];
        dgemm(n, 1.0, &a, &b, 0.0, &mut fast);
        dgemm_naive(n, 1.0, &a, &b, 0.0, &mut slow);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn signature_is_compute_bound() {
        let sig = Dgemm { n: 4096 }.signature();
        assert!(sig.arithmetic_intensity() > 5.0);
    }
}
