//! HPCC DGEMM — dense matrix-matrix multiply.
//!
//! `C ← α·A·B + β·C` with square matrices, blocked for cache and
//! rayon-parallel over row panels. The HPCC suite's pure compute-bound
//! member: arithmetic intensity grows linearly with the blocking factor,
//! so its signature anchors the high end of the regression training set.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::simd;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};
use crate::tile::TilePlan;

/// The pre-autotuner cache block edge. The multiply itself now blocks
/// by a [`TilePlan`] (cache-geometry-derived MC/KC/NC); this constant
/// survives as the analytic blocking factor in [`Dgemm::signature`],
/// which models the paper-era machines and must stay bitwise-stable
/// under the committed tune/trace baselines.
pub const BLOCK: usize = 48;

// Logical trace addresses. The multiply reads A and the *packed* B
// tiles (that is its real access stream), and reads+writes C; packing
// streams B once. Chunk ids: row panels use their panel index, packing
// strips use `TRACE_PACK_CHUNK + tk` so the two phases never collide.
const TRACE_A: u64 = 0x1_0000_0000;
const TRACE_B: u64 = 0x2_0000_0000;
const TRACE_C: u64 = 0x3_0000_0000;
const TRACE_PACKED: u64 = 0x4_0000_0000;
const TRACE_PACK_CHUNK: u64 = 1 << 32;

/// Caller-owned scratch for [`dgemm_with`]: B packed once per call into
/// KC×NC tiles at a fixed stride, blocked by a [`TilePlan`]. Owning it
/// across calls (the `FtWorkspace` pattern) makes the multiply
/// allocation-free after warm-up — `tests/alloc_free.rs` pins zero
/// allocations per call at width 1 — and packing *once* replaces the
/// old per-row-panel packing, which re-copied every tile of B for each
/// row panel.
#[derive(Debug, Clone)]
pub struct DgemmWorkspace {
    n: usize,
    /// The blocking plan every phase of the multiply follows.
    plan: TilePlan,
    /// Tile columns (`⌈n/NC⌉`); tile rows are `⌈n/KC⌉`.
    jtiles: usize,
    /// Tile `(tk, tj)` starts at `(tk·jtiles + tj)·KC·NC`, holding its
    /// `kw×jw` elements row-major and contiguous.
    packed: Vec<f64>,
}

impl DgemmWorkspace {
    /// Workspace for multiplies of order `n`, blocked by the
    /// process-wide [`TilePlan::active`] plan.
    pub fn new(n: usize) -> Self {
        Self::with_plan(n, TilePlan::active())
    }

    /// Workspace blocked by an explicit plan (the determinism suite
    /// uses this to pin plan-invariance; `kc` must be a multiple of 4
    /// for the bitwise contract, which every [`TilePlan`] constructor
    /// guarantees).
    pub fn with_plan(n: usize, plan: TilePlan) -> Self {
        let ktiles = n.div_ceil(plan.kc).max(1);
        let jtiles = n.div_ceil(plan.nc).max(1);
        Self { n, plan, jtiles, packed: vec![0.0; ktiles * jtiles * plan.tile_elems()] }
    }

    /// The blocking plan this workspace was sized for.
    pub fn plan(&self) -> TilePlan {
        self.plan
    }

    /// Pack `b` (row-major `n×n`) into the tile layout. Parallel over
    /// tile rows — disjoint writes, so width-invariant.
    fn pack_b(&mut self, b: &[f64]) {
        let n = self.n;
        let TilePlan { kc, nc, .. } = self.plan;
        let slot = self.plan.tile_elems();
        let jtiles = self.jtiles;
        self.packed.par_chunks_mut(jtiles * slot).enumerate().for_each(|(tk, strip)| {
            let chunk = TRACE_PACK_CHUNK + tk as u64;
            let tr = hooks::chunk_enabled(Region::Dgemm, chunk);
            let kb = tk * kc;
            let kw = kc.min(n - kb);
            for (tj, tile) in strip.chunks_mut(slot).enumerate() {
                let jb = tj * nc;
                let jw = nc.min(n - jb);
                for (kk, trow) in tile.chunks_mut(jw).take(kw).enumerate() {
                    let src = (kb + kk) * n + jb;
                    trow.copy_from_slice(&b[src..src + jw]);
                    if tr {
                        let dst = (tk * jtiles + tj) * slot + kk * jw;
                        let r = Region::Dgemm;
                        let w = jw as u32;
                        hooks::record(r, chunk, AccessKind::Read, TRACE_B + (src * 8) as u64, 8, w);
                        let at = TRACE_PACKED + (dst * 8) as u64;
                        hooks::record(r, chunk, AccessKind::Write, at, 8, w);
                    }
                }
            }
        });
    }

    /// The packed `kw×jw` tile covering `B[kb.., jb..]`.
    #[inline]
    fn tile(&self, tk: usize, tj: usize, kw: usize, jw: usize) -> &[f64] {
        let at = (tk * self.jtiles + tj) * self.plan.tile_elems();
        &self.packed[at..at + kw * jw]
    }
}

/// The DGEMM benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Dgemm {
    /// Matrix order.
    pub n: u64,
}

impl Dgemm {
    /// Size the three matrices to occupy `bytes` of memory.
    pub fn for_memory(bytes: f64) -> Self {
        Self { n: ((bytes / 24.0).sqrt() as u64).max(64) }
    }

    /// Total multiply-add flops `2·n³` plus the scale/accumulate `2·n²`.
    pub fn flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 * n.powi(3) + 2.0 * n * n
    }
}

/// `c ← alpha·a·b + beta·c` for row-major square matrices, blocked and
/// parallel over row panels. Allocates a fresh [`DgemmWorkspace`] per
/// call; hot loops should hold one and call [`dgemm_with`].
pub fn dgemm(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    let mut ws = DgemmWorkspace::new(n);
    dgemm_with(n, alpha, a, b, beta, c, &mut ws);
}

/// [`dgemm`] against a caller-owned workspace; performs no heap
/// allocation. B is packed once into the workspace plan's KC×NC tiles
/// (L1-resident by construction, see [`TilePlan`]) shared by every row
/// panel, then each MC-row panel streams its C rows through the SIMD
/// micro-kernel: a fused broadcast-A register tile
/// (`simd::tile_row_update`) over unit-stride packed-B rows, with the
/// C row held in registers across the whole k loop.
/// Per-element arithmetic and association order are independent of the
/// pool width, the bitwise SIMD path *and* the tile plan (interior KC
/// is a multiple of 4, so the micro-kernel's quad/single k grouping is
/// plan-invariant), so results are bitwise deterministic across
/// `HPCEVAL_THREADS` × bitwise `HPCEVAL_SIMD` modes × `HPCEVAL_SPEC`.
pub fn dgemm_with(
    n: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    ws: &mut DgemmWorkspace,
) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    assert_eq!(ws.n, n, "workspace must match the matrix order");
    // Resolve the SIMD path once on the caller's thread and capture it
    // into the parallel closure (workers never consult the mode).
    let m = simd::mode();
    // Pack and panel phases get separate trace epochs: repeated dgemm
    // calls reuse the same chunk ids, and within one call the pack
    // happens before the panels even though its ids sort after them.
    hooks::begin_epoch(Region::Dgemm);
    ws.pack_b(b);
    let ws = &*ws;
    let TilePlan { mc, kc, nc } = ws.plan;
    hooks::begin_epoch(Region::Dgemm);
    c.par_chunks_mut(n * mc.max(1)).enumerate().for_each(|(panel, cpanel)| {
        let chunk = panel as u64;
        let tr = hooks::chunk_enabled(Region::Dgemm, chunk);
        let r0 = panel * mc;
        let rows = cpanel.len() / n;
        // Scale the C panel by beta once.
        simd::scale_in_place(m, cpanel, beta);
        if tr {
            let at = TRACE_C + (r0 * n * 8) as u64;
            hooks::record(Region::Dgemm, chunk, AccessKind::Read, at, 8, (rows * n) as u32);
            hooks::record(Region::Dgemm, chunk, AccessKind::Write, at, 8, (rows * n) as u32);
        }
        let mut kb = 0;
        let mut tk = 0;
        while kb < n {
            let kw = kc.min(n - kb);
            let mut jb = 0;
            let mut tj = 0;
            while jb < n {
                let jw = nc.min(n - jb);
                let bt = ws.tile(tk, tj, kw, jw);
                if tr {
                    let at =
                        TRACE_PACKED + ((tk * ws.jtiles + tj) * ws.plan.tile_elems() * 8) as u64;
                    hooks::record(Region::Dgemm, chunk, AccessKind::Read, at, 8, (kw * jw) as u32);
                }
                for r in 0..rows {
                    let arow = &a[(r0 + r) * n + kb..(r0 + r) * n + kb + kw];
                    let crow = &mut cpanel[r * n + jb..r * n + jb + jw];
                    if tr {
                        let rg = Region::Dgemm;
                        let a_at = TRACE_A + (((r0 + r) * n + kb) * 8) as u64;
                        let c_at = TRACE_C + (((r0 + r) * n + jb) * 8) as u64;
                        hooks::record(rg, chunk, AccessKind::Read, a_at, 8, kw as u32);
                        hooks::record(rg, chunk, AccessKind::Read, c_at, 8, jw as u32);
                        hooks::record(rg, chunk, AccessKind::Write, c_at, 8, jw as u32);
                    }
                    simd::tile_row_update(m, crow, bt, arow, alpha);
                }
                jb += jw;
                tj += 1;
            }
            kb += kw;
            tk += 1;
        }
    });
}

/// Naive triple loop for verification.
pub fn dgemm_naive(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    for r in 0..n {
        for col in 0..n {
            let mut s = 0.0;
            for k in 0..n {
                s += a[r * n + k] * b[k * n + col];
            }
            c[r * n + col] = alpha * s + beta * c[r * n + col];
        }
    }
}

impl Benchmark for Dgemm {
    fn id(&self) -> &'static str {
        "dgemm"
    }

    fn display_name(&self) -> String {
        format!("dgemm.n{}", self.n)
    }

    fn signature(&self) -> WorkloadSignature {
        let n = self.n as f64;
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: self.flops(),
            work_ops: self.flops(),
            // Each element re-read n/BLOCK times across block sweeps.
            dram_bytes: 8.0 * n * n * (n / BLOCK as f64) * 1.2,
            footprint_bytes: 24.0 * n * n,
            footprint_per_proc_bytes: 8.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.005,
            cpu_intensity: 1.0,
            kind: ComputeKind::Vector,
            locality: LocalityProfile::dense_blocked(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 96;
        let mut rng = NpbRng::new(4242);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut fast = c0.clone();
        let mut slow = c0;
        dgemm(n, 1.5, &a, &b, 0.5, &mut fast);
        dgemm_naive(n, 1.5, &a, &b, 0.5, &mut slow);
        let max_err = fast.iter().zip(&slow).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
        if max_err < 1e-10 {
            VerifyOutcome::pass(
                format!("n={n} blocked vs naive max err {max_err:.2e}"),
                2.0 * (n as f64).powi(3),
            )
        } else {
            VerifyOutcome::fail(format!("blocked multiply diverges: {max_err:.3e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_by_identity_is_identity_map() {
        let n = 16;
        let mut rng = NpbRng::new(8);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64()).collect();
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let mut c = vec![0.0; n * n];
        dgemm(n, 1.0, &a, &eye, 0.0, &mut c);
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_scaling_applied() {
        let n = 8;
        let a = vec![0.0; n * n];
        let b = vec![0.0; n * n];
        let mut c = vec![2.0; n * n];
        dgemm(n, 1.0, &a, &b, 0.25, &mut c);
        assert!(c.iter().all(|&v| (v - 0.5).abs() < 1e-15));
    }

    #[test]
    fn verify_passes() {
        let out = Dgemm { n: 512 }.verify(4);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn blocked_handles_non_multiple_sizes() {
        let n = BLOCK + 13;
        let mut rng = NpbRng::new(77);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut fast = vec![0.0; n * n];
        let mut slow = vec![0.0; n * n];
        dgemm(n, 1.0, &a, &b, 0.0, &mut fast);
        dgemm_naive(n, 1.0, &a, &b, 0.0, &mut slow);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn tile_plan_choice_is_bitwise_neutral() {
        // Any plan with KC ≡ 0 (mod 4) must produce the exact bits of
        // any other: tile boundaries never change the micro-kernel's
        // quad/single k grouping, and MC/NC only repartition work.
        let n = 160;
        let mut rng = NpbRng::new(2015);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let c0: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let plans = [
            TilePlan { mc: 48, kc: 48, nc: 48 }, // the legacy BLOCK shape
            TilePlan { mc: 64, kc: 128, nc: 128 },
            TilePlan { mc: 8, kc: 4, nc: 8 },
            TilePlan::active(),
        ];
        let mut base: Option<Vec<f64>> = None;
        for plan in plans {
            let mut c = c0.clone();
            let mut ws = DgemmWorkspace::with_plan(n, plan);
            dgemm_with(n, 1.5, &a, &b, 0.5, &mut c, &mut ws);
            match &base {
                None => base = Some(c),
                Some(want) => {
                    for (i, (x, y)) in c.iter().zip(want).enumerate() {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "plan {plan:?} diverges at {i}: {x:e} vs {y:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn signature_is_compute_bound() {
        let sig = Dgemm { n: 4096 }.signature();
        assert!(sig.arithmetic_intensity() > 5.0);
    }
}
