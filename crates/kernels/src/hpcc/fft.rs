//! HPCC FFT — large 1-D complex transform.
//!
//! A single huge power-of-two FFT (as opposed to NPB-FT's many short
//! lines): the working set far exceeds every cache, so the butterflies
//! at large strides are memory-bound while the small-stride stages are
//! compute-bound — a genuinely mixed signature. Verified by inverse
//! round-trip and Parseval's identity.

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};

use crate::fft::{fft_flops, fft_in_place, Direction, C64};
use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

/// The HPCC FFT benchmark.
#[derive(Debug, Clone, Copy)]
pub struct HpccFft {
    /// log2 of the transform length.
    pub log2_n: u32,
}

impl HpccFft {
    /// Largest power-of-two transform whose working set (input + scratch,
    /// 32 B per point) fits `bytes`.
    pub fn for_memory(bytes: f64) -> Self {
        let points = (bytes / 32.0).max(1024.0);
        Self { log2_n: (points.log2().floor() as u32).max(10) }
    }

    /// Transform length.
    pub fn len(&self) -> u64 {
        1u64 << self.log2_n
    }

    /// True if the configured length is zero (never: kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Benchmark for HpccFft {
    fn id(&self) -> &'static str {
        "hpcc-fft"
    }

    fn display_name(&self) -> String {
        format!("fft.2^{}", self.log2_n)
    }

    fn signature(&self) -> WorkloadSignature {
        let n = self.len() as f64;
        let flops = fft_flops(self.len() as usize);
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 1.2,
            // Each of log2(n) stages streams the whole array once; only
            // ~6 stages fit in cache.
            dram_bytes: n * 16.0 * (f64::from(self.log2_n) - 6.0).max(1.0),
            footprint_bytes: n * 32.0,
            footprint_per_proc_bytes: 8.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.20,
            cpu_intensity: 0.75,
            kind: ComputeKind::Mixed(0.8),
            locality: LocalityProfile::streaming(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::PowerOfTwo
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 1usize << 14;
        let mut rng = NpbRng::new(1001);
        let orig: Vec<C64> =
            (0..n).map(|_| C64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)).collect();
        let mut v = orig.clone();
        fft_in_place(&mut v, Direction::Forward);
        // Parseval.
        let te: f64 = orig.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = v.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        if (te - fe).abs() > 1e-8 * te {
            return VerifyOutcome::fail(format!("Parseval violated: {te} vs {fe}"));
        }
        fft_in_place(&mut v, Direction::Inverse);
        let max_err = v
            .iter()
            .zip(&orig)
            .map(|(a, b)| a.sub(*b).norm_sqr().sqrt())
            .fold(0.0, f64::max);
        if max_err < 1e-10 {
            VerifyOutcome::pass(
                format!("2^14 round trip err {max_err:.2e}, Parseval ok"),
                fft_flops(n) * 2.0,
            )
        } else {
            VerifyOutcome::fail(format!("round trip error {max_err:e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_passes() {
        let out = HpccFft { log2_n: 24 }.verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn memory_sizing_is_conservative() {
        let f = HpccFft::for_memory(1e9);
        assert!(f.len() as f64 * 32.0 <= 1e9);
    }

    #[test]
    fn signature_mixes_compute_and_memory() {
        let sig = HpccFft { log2_n: 26 }.signature();
        let ai = sig.arithmetic_intensity();
        assert!(ai > 0.2 && ai < 10.0, "FFT must sit between STREAM and DGEMM, got {ai}");
    }
}
