//! The HPC Challenge benchmark suite.
//!
//! HPCC bundles seven programs spanning the locality/intensity plane —
//! compute-bound (HPL, DGEMM), streaming memory-bound (STREAM, PTRANS),
//! latency-bound (RandomAccess), mixed (FFT) and network-bound (b_eff).
//! The paper (§VI-A2) runs all seven from one core up to full cores and
//! uses the sampled (PMU, power) pairs to *train* the regression power
//! model; the breadth of the suite is what makes the model generalize to
//! the NPB validation set.
//!
//! HPL is shared with [`crate::hpl`]; the other six live here.

pub mod beff;
pub mod dgemm;
pub mod fft;
pub mod ptrans;
pub mod random_access;
pub mod stream;

use crate::hpl::HplConfig;
use crate::suite::Benchmark;

use hpceval_machine::spec::ServerSpec;

/// The seven HPCC programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HpccProgram {
    /// High-Performance Linpack (shared with the standalone HPL).
    Hpl,
    /// Dense matrix-matrix multiply.
    Dgemm,
    /// Sustainable memory bandwidth (copy/scale/add/triad).
    Stream,
    /// Parallel matrix transpose.
    Ptrans,
    /// Giga-updates-per-second random table updates.
    RandomAccess,
    /// Large 1-D complex FFT.
    Fft,
    /// Effective bandwidth/latency microbenchmark.
    Beff,
}

impl HpccProgram {
    /// All seven, in the canonical HPCC report order.
    pub const ALL: [HpccProgram; 7] = [
        HpccProgram::Hpl,
        HpccProgram::Dgemm,
        HpccProgram::Stream,
        HpccProgram::Ptrans,
        HpccProgram::RandomAccess,
        HpccProgram::Fft,
        HpccProgram::Beff,
    ];

    /// Short id.
    pub fn id(self) -> &'static str {
        match self {
            HpccProgram::Hpl => "hpcc-hpl",
            HpccProgram::Dgemm => "dgemm",
            HpccProgram::Stream => "stream",
            HpccProgram::Ptrans => "ptrans",
            HpccProgram::RandomAccess => "randomaccess",
            HpccProgram::Fft => "hpcc-fft",
            HpccProgram::Beff => "b_eff",
        }
    }

    /// Instantiate the benchmark, sized for `spec` (HPCC problems scale
    /// with the machine's memory, like the real `hpccinf.txt` setup).
    pub fn benchmark(self, spec: &ServerSpec) -> Box<dyn Benchmark> {
        let mem = spec.memory_bytes() as f64;
        match self {
            HpccProgram::Hpl => {
                Box::new(HplConfig::for_memory_fraction(spec, 0.7, spec.total_cores()))
            }
            HpccProgram::Dgemm => Box::new(dgemm::Dgemm::for_memory(mem * 0.25)),
            HpccProgram::Stream => Box::new(stream::Stream::for_memory(mem * 0.5)),
            HpccProgram::Ptrans => Box::new(ptrans::Ptrans::for_memory(mem * 0.4)),
            HpccProgram::RandomAccess => {
                Box::new(random_access::RandomAccess::for_memory(mem * 0.5))
            }
            HpccProgram::Fft => Box::new(fft::HpccFft::for_memory(mem * 0.3)),
            HpccProgram::Beff => Box::new(beff::Beff::standard()),
        }
    }
}

/// The whole training suite for one server.
pub fn full_suite(spec: &ServerSpec) -> Vec<Box<dyn Benchmark>> {
    HpccProgram::ALL.iter().map(|p| p.benchmark(spec)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn suite_has_seven_programs() {
        let suite = full_suite(&presets::xeon_e5462());
        assert_eq!(suite.len(), 7);
    }

    #[test]
    fn signatures_span_the_intensity_plane() {
        // The training set must include compute-bound and memory-bound
        // extremes for the regression to learn both coefficients.
        let spec = presets::xeon_4870();
        let intensities: Vec<f64> =
            full_suite(&spec).iter().map(|b| b.signature().arithmetic_intensity()).collect();
        let max = intensities.iter().cloned().fold(f64::MIN, f64::max);
        let min = intensities.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 10.0, "needs a compute-bound member (max {max})");
        assert!(min < 0.5, "needs a memory-bound member (min {min})");
    }

    #[test]
    fn problems_fit_in_machine_memory() {
        for spec in presets::all_servers() {
            for b in full_suite(&spec) {
                let sig = b.signature();
                assert!(
                    sig.fits_in(1, spec.memory_bytes()),
                    "{} does not fit {}",
                    sig.name,
                    spec.name
                );
            }
        }
    }
}
