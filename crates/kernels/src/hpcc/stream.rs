//! HPCC STREAM — sustainable memory bandwidth.
//!
//! The four canonical vector operations over arrays far larger than any
//! cache: Copy `c = a`, Scale `b = α·c`, Add `c = a + b`, Triad
//! `a = b + α·c`. STREAM is the pure bandwidth-bound member of the
//! training set: two flops per 24 bytes at best, so its signature pins
//! the regression's memory-traffic coefficients.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};
use hpceval_trace::{hooks, AccessKind, Region};

use crate::simd;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

/// Span length each parallel task hands to the SIMD micro-kernels.
/// Purely a dispatch granularity: the four STREAM ops are element-wise,
/// so any chunking yields identical bits at every width and SIMD path.
const SPAN: usize = 8192;

// Logical trace addresses of the three arrays. Fixed constants (not
// heap pointers) keep captured traces bitwise identical across runs,
// allocators and thread counts; the span index is the chunk id.
const TRACE_A: u64 = 0x1000_0000;
const TRACE_B: u64 = 0x2000_0000;
const TRACE_C: u64 = 0x3000_0000;

/// The STREAM benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Stream {
    /// Elements per array (three arrays total).
    pub n: u64,
    /// Repetitions of the four-kernel cycle.
    pub reps: u32,
}

impl Stream {
    /// Size the three arrays to occupy `bytes`.
    pub fn for_memory(bytes: f64) -> Self {
        Self { n: ((bytes / 24.0) as u64).max(1024), reps: 10 }
    }

    /// Bytes moved per full cycle (copy 16, scale 16, add 24, triad 24
    /// bytes per element).
    pub fn bytes_per_cycle(&self) -> f64 {
        self.n as f64 * 80.0
    }
}

/// Outcome of a real STREAM pass: per-kernel checksum of the final
/// arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOutcome {
    /// Final `a[0] + b[0] + c[0]` (validates the dataflow).
    pub head: f64,
    /// Expected value of `head` given the recurrence.
    pub expected: f64,
}

impl StreamOutcome {
    /// STREAM's own validation criterion (relative error on the known
    /// closed form).
    pub fn passes(&self) -> bool {
        (self.head - self.expected).abs() <= 1e-8 * self.expected.abs().max(1.0)
    }
}

/// Run `reps` cycles of copy/scale/add/triad over arrays of length `n`.
pub fn run(n: usize, reps: u32) -> StreamOutcome {
    let scalar = 3.0;
    let m = simd::mode();
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    // Per-span trace burst: `srcs` read then `dst` written, all
    // unit-stride doubles. One enabled() branch per span when untraced.
    let trace = |i: usize, len: usize, srcs: &[u64], dst: u64| {
        let chunk = i as u64;
        if hooks::chunk_enabled(Region::Stream, chunk) {
            let off = (i * SPAN * 8) as u64;
            for &s in srcs {
                hooks::record(Region::Stream, chunk, AccessKind::Read, s + off, 8, len as u32);
            }
            hooks::record(Region::Stream, chunk, AccessKind::Write, dst + off, 8, len as u32);
        }
    };
    for _ in 0..reps {
        // Each op is its own trace epoch: the four kernels (and every
        // rep) revisit the same spans, so without the epoch boundary
        // their bursts would collapse into one ring per span.
        // Copy: c = a (pure data movement; memcpy per span).
        hooks::begin_epoch(Region::Stream);
        c.par_chunks_mut(SPAN)
            .enumerate()
            .zip(a.par_chunks(SPAN))
            .for_each(|((i, cv), av)| {
                trace(i, cv.len(), &[TRACE_A], TRACE_C);
                cv.copy_from_slice(av)
            });
        // Scale: b = scalar * c.
        hooks::begin_epoch(Region::Stream);
        b.par_chunks_mut(SPAN)
            .enumerate()
            .zip(c.par_chunks(SPAN))
            .for_each(|((i, bv), cv)| {
                trace(i, bv.len(), &[TRACE_C], TRACE_B);
                simd::scale(m, bv, cv, scalar)
            });
        // Add: c = a + b.
        hooks::begin_epoch(Region::Stream);
        c.par_chunks_mut(SPAN)
            .enumerate()
            .zip(a.par_chunks(SPAN).zip(b.par_chunks(SPAN)))
            .for_each(|((i, cv), (av, bv))| {
                trace(i, cv.len(), &[TRACE_A, TRACE_B], TRACE_C);
                simd::add(m, cv, av, bv)
            });
        // Triad: a = b + scalar * c.
        hooks::begin_epoch(Region::Stream);
        a.par_chunks_mut(SPAN)
            .enumerate()
            .zip(b.par_chunks(SPAN).zip(c.par_chunks(SPAN)))
            .for_each(|((i, av), (bv, cv))| {
                trace(i, av.len(), &[TRACE_B, TRACE_C], TRACE_A);
                simd::triad(m, av, bv, cv, scalar)
            });
    }
    // Closed form of one cycle: c1 = a0; b1 = s·a0; c2 = a0 + s·a0;
    // a1 = s·a0 + s·(a0 + s·a0) = a0·(2s + s²).
    let mut ea = 1.0f64;
    let mut eb;
    let mut ec;
    let s = scalar;
    let (mut fb, mut fc) = (2.0, 0.0);
    for _ in 0..reps {
        fc = ea;
        fb = s * fc;
        fc = ea + fb;
        ea = fb + s * fc;
    }
    eb = fb;
    ec = fc;
    // All elements identical by construction.
    let _ = &mut eb;
    let _ = &mut ec;
    StreamOutcome { head: a[0] + b[0] + c[0], expected: ea + eb + ec }
}

impl Benchmark for Stream {
    fn id(&self) -> &'static str {
        "stream"
    }

    fn display_name(&self) -> String {
        format!("stream.n{}", self.n)
    }

    fn signature(&self) -> WorkloadSignature {
        let bytes = self.bytes_per_cycle() * f64::from(self.reps);
        // 2 flops per element only in add/triad.
        let flops = self.n as f64 * 3.0 * f64::from(self.reps);
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: flops,
            work_ops: flops * 2.0,
            dram_bytes: bytes,
            footprint_bytes: self.n as f64 * 24.0,
            footprint_per_proc_bytes: 4.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.0,
            cpu_intensity: 0.62,
            kind: ComputeKind::Vector,
            locality: LocalityProfile {
                instr_per_op: 2.5,
                accesses_per_instr: 0.5,
                l1_hit: 0.62,
                l2_hit: 0.04,
                l3_hit: 0.02,
                mem: 0.32,
                write_fraction: 0.42,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let out = run(1 << 16, 5);
        if out.passes() {
            VerifyOutcome::pass(
                format!("head {} matches closed form {}", out.head, out.expected),
                (1u64 << 16) as f64 * 3.0 * 5.0,
            )
        } else {
            VerifyOutcome::fail(format!("head {} != expected {}", out.head, out.expected))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_matches_hand_computation() {
        // a0=1, b0=2, c0=0, s=3: c=1, b=3, c=4, a=15.
        let out = run(64, 1);
        assert!((out.head - (15.0 + 3.0 + 4.0)).abs() < 1e-12, "head {}", out.head);
        assert!(out.passes());
    }

    #[test]
    fn multiple_cycles_stay_consistent() {
        for reps in [2, 3, 7] {
            let out = run(128, reps);
            assert!(out.passes(), "reps={reps}: {out:?}");
        }
    }

    #[test]
    fn verify_passes() {
        let out = Stream { n: 1 << 20, reps: 10 }.verify(4);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn signature_is_bandwidth_bound() {
        let sig = Stream::for_memory(1e9).signature();
        assert!(sig.arithmetic_intensity() < 0.2, "STREAM must be memory bound");
    }
}
