//! HPCC b_eff — effective bandwidth and latency microbenchmark.
//!
//! b_eff ping-pongs messages of exponentially growing sizes between
//! process pairs and reports latency and effective bandwidth. On a single
//! server the "network" is shared memory; we implement the real message
//! exchange over crossbeam channels between threads, measuring per-size
//! round-trip behaviour. It contributes the communication-dominated
//! corner of the regression training set (the corner whose power the six
//! PMU indicators cannot see — the root of the paper's EP/SP validation
//! residuals).

use crossbeam::channel;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};

use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

/// The b_eff benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Beff {
    /// Message sizes: 1 B .. 2^`max_log2_size` B, doubling.
    pub max_log2_size: u32,
    /// Round trips per size.
    pub reps: u32,
}

impl Beff {
    /// The standard configuration (up to 4 MiB messages).
    pub fn standard() -> Self {
        Self { max_log2_size: 22, reps: 16 }
    }

    /// Total bytes exchanged over the full schedule.
    pub fn total_bytes(&self) -> f64 {
        (0..=self.max_log2_size)
            .map(|s| 2f64.powi(s as i32) * f64::from(self.reps) * 2.0)
            .sum()
    }
}

/// Measured exchange outcome for one message size.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeStat {
    /// Message size in bytes.
    pub size: usize,
    /// Completed round trips.
    pub round_trips: u32,
    /// Bytes that arrived intact.
    pub bytes_ok: u64,
}

/// Run a ping-pong exchange of `reps` round trips at each size
/// `1, 2, 4, …, 2^max_log2_size` bytes between two threads; the pong side
/// echoes a transformed payload so corruption is detectable.
///
/// The two sides run as the branches of a `rayon::join`: the ping side
/// on the calling thread, the echo on a pool worker. The executor's
/// `join` guarantees the echo branch really runs concurrently (it is
/// offered to the pool even at logical width 1), which the rendezvous
/// channels require for progress.
pub fn run(max_log2_size: u32, reps: u32) -> Vec<ExchangeStat> {
    let (to_pong, pong_rx) = channel::bounded::<Vec<u8>>(1);
    let (to_ping, ping_rx) = channel::bounded::<Vec<u8>>(1);

    let (stats, ()) = rayon::join(
        move || {
            let mut stats = Vec::new();
            for s in 0..=max_log2_size {
                let size = 1usize << s;
                let mut ok_bytes = 0u64;
                let mut trips = 0u32;
                for rep in 0..reps {
                    let payload: Vec<u8> =
                        (0..size).map(|i| (i as u8).wrapping_add(rep as u8)).collect();
                    to_pong.send(payload.clone()).expect("echo side alive");
                    let back = ping_rx.recv().expect("echo side alive");
                    trips += 1;
                    ok_bytes +=
                        back.iter().zip(&payload).filter(|(e, o)| **e == o.wrapping_add(1)).count()
                            as u64;
                }
                stats.push(ExchangeStat { size, round_trips: trips, bytes_ok: ok_bytes });
            }
            // Dropping the sender ends the echo loop.
            drop(to_pong);
            stats
        },
        move || {
            while let Ok(mut msg) = pong_rx.recv() {
                for b in msg.iter_mut() {
                    *b = b.wrapping_add(1);
                }
                if to_ping.send(msg).is_err() {
                    break;
                }
            }
        },
    );
    stats
}

impl Benchmark for Beff {
    fn id(&self) -> &'static str {
        "b_eff"
    }

    fn display_name(&self) -> String {
        format!("b_eff.max2^{}", self.max_log2_size)
    }

    fn signature(&self) -> WorkloadSignature {
        let bytes = self.total_bytes();
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: bytes / 1e3, // nominal op count: mostly waiting
            work_ops: bytes * 0.5,
            dram_bytes: bytes * 2.0,
            footprint_bytes: 2f64.powi(self.max_log2_size as i32) * 4.0,
            footprint_per_proc_bytes: 2.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.85,
            cpu_intensity: 0.40,
            kind: ComputeKind::Scalar,
            locality: LocalityProfile::streaming(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let stats = run(12, 4);
        let total: u64 = stats.iter().map(|s| s.bytes_ok).sum();
        let expected: u64 = stats.iter().map(|s| s.size as u64 * u64::from(s.round_trips)).sum();
        if total == expected && stats.len() == 13 {
            VerifyOutcome::pass(
                format!("{} sizes, {expected} bytes echoed intact", stats.len()),
                expected as f64,
            )
        } else {
            VerifyOutcome::fail(format!("echoed {total} of {expected} bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_echoed_intact() {
        let stats = run(8, 3);
        for s in &stats {
            assert_eq!(s.round_trips, 3);
            assert_eq!(s.bytes_ok, s.size as u64 * 3);
        }
    }

    #[test]
    fn sizes_double() {
        let stats = run(5, 1);
        let sizes: Vec<usize> = stats.iter().map(|s| s.size).collect();
        assert_eq!(sizes, vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn verify_passes() {
        let out = Beff::standard().verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn signature_is_communication_dominated() {
        let sig = Beff::standard().signature();
        assert!(sig.comm_fraction > 0.5);
    }
}
