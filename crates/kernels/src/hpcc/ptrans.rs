//! HPCC PTRANS — parallel matrix transpose.
//!
//! `A ← A + Bᵀ` over large dense matrices. In the distributed suite this
//! is a total-exchange stressor; on one server it stresses strided memory
//! access (a column walk on a row-major matrix touches one element per
//! cache line). Implemented with cache-friendly tiling and verified
//! against the transpose identity.

use rayon::prelude::*;

use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};

use crate::rng::NpbRng;
use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};
use crate::transpose::transpose_tiles;

pub use crate::transpose::TILE;

/// The PTRANS benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Ptrans {
    /// Matrix order.
    pub n: u64,
}

impl Ptrans {
    /// Size the two matrices to occupy `bytes`.
    pub fn for_memory(bytes: f64) -> Self {
        Self { n: ((bytes / 16.0).sqrt() as u64).max(64) }
    }
}

/// `a ← a + transpose(b)`, tiled and parallel over tile rows.
pub fn add_transpose(n: usize, a: &mut [f64], b: &[f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    // Parallel over horizontal tile bands of `a`; each band is the tiled
    // core's destination with b's rows `r0..r0+rows` as the source
    // columns, so every element of `a` is written by exactly one task.
    a.par_chunks_mut(n * TILE).enumerate().for_each(|(band, aband)| {
        let r0 = band * TILE;
        let rows = aband.len() / n;
        // aband[dr*n + c] += b[c*n + (r0 + dr)] for dr in 0..rows, c in 0..n
        transpose_tiles(b, r0, n, aband, 0, n, n, rows, |d, s| *d += s);
    });
}

impl Benchmark for Ptrans {
    fn id(&self) -> &'static str {
        "ptrans"
    }

    fn display_name(&self) -> String {
        format!("ptrans.n{}", self.n)
    }

    fn signature(&self) -> WorkloadSignature {
        let n = self.n as f64;
        let elems = n * n;
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: elems, // one add per element
            work_ops: elems * 4.0,
            dram_bytes: elems * 24.0, // read a, read b (strided), write a
            footprint_bytes: elems * 16.0,
            footprint_per_proc_bytes: 8.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.30, // total exchange in the MPI version
            cpu_intensity: 0.58,
            kind: ComputeKind::Vector,
            locality: LocalityProfile {
                instr_per_op: 2.2,
                accesses_per_instr: 0.55,
                l1_hit: 0.55,
                l2_hit: 0.10,
                l3_hit: 0.05,
                mem: 0.30,
                write_fraction: 0.35,
            },
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, _threads: usize) -> VerifyOutcome {
        let n = 200; // non-multiple of TILE exercises edge tiles
        let mut rng = NpbRng::new(31_337);
        let a0: Vec<f64> = (0..n * n).map(|_| rng.next_f64()).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64()).collect();
        let mut a = a0.clone();
        add_transpose(n, &mut a, &b);
        // Reference check.
        let mut max_err = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                let want = a0[r * n + c] + b[c * n + r];
                max_err = max_err.max((a[r * n + c] - want).abs());
            }
        }
        if max_err == 0.0 {
            VerifyOutcome::pass(format!("n={n} exact transpose-add"), (n * n) as f64)
        } else {
            VerifyOutcome::fail(format!("max error {max_err:e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_add_on_small_matrix() {
        // a = 0, b = [[1,2],[3,4]] -> a = [[1,3],[2,4]].
        let mut a = vec![0.0; 4];
        let b = vec![1.0, 2.0, 3.0, 4.0];
        add_transpose(2, &mut a, &b);
        assert_eq!(a, vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn double_transpose_add_is_symmetrization() {
        let n = 50;
        let mut rng = NpbRng::new(5);
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64()).collect();
        let mut a = b.clone();
        add_transpose(n, &mut a, &b); // a = b + b^T is symmetric
        for r in 0..n {
            for c in 0..n {
                assert!((a[r * n + c] - a[c * n + r]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn verify_passes() {
        let out = Ptrans { n: 1000 }.verify(2);
        assert!(out.passed, "{}", out.detail);
    }

    #[test]
    fn signature_is_memory_bound() {
        let sig = Ptrans { n: 10_000 }.signature();
        assert!(sig.arithmetic_intensity() < 0.5);
    }
}
