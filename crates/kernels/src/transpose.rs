//! The blocked-transpose primitive shared by every transpose in the
//! workspace.
//!
//! NPB FT's x↔y / x↔z passes and HPCC PTRANS's `A ← A + Bᵀ` are all the
//! same memory access pattern: walk a 2-D index space where one side is
//! contiguous and the other is strided by a full row, which on a
//! row-major layout touches one element per cache line. The classic fix
//! (used by every NPB/HPCC reference implementation) is to tile the
//! index space so a `TILE × TILE` block of both operands stays resident
//! in L1 while it is swapped. This module provides that tiled core once,
//! over *strided* row layouts, so a plain 2-D matrix, one z-plane of a
//! 3-D field, and the y-interleaved x↔z permutation are all expressible
//! as calls into the same loop nest (proptested against the naive loops
//! in `tests/proptests.rs`).

/// Tile edge of the blocked loop nest. 32×32 `f64`/`C64` tiles are 8/16
/// KiB — two fit in a 32 KiB L1 alongside the stack.
pub const TILE: usize = 32;

/// The tiled transpose core: for every `(r, c)` in `rows × cols`,
///
/// ```text
/// dst[dst_base + c·dst_stride + r]  op=  src[src_base + r·src_stride + c]
/// ```
///
/// visited tile-by-tile so both sides stay cache-resident. `op` is the
/// element combiner — assignment for a copy transpose, `+=` for
/// PTRANS's transpose-add. The traversal order within and across tiles
/// is fixed, so for a pure-copy `op` the output is bitwise identical to
/// the naive double loop at any tile size.
///
/// # Panics
/// Panics (via slice indexing) if the index space reaches outside
/// either slice.
#[allow(clippy::too_many_arguments)] // two strided views, each irreducibly (slice, base, stride)
#[inline]
pub fn transpose_tiles<T, F>(
    src: &[T],
    src_base: usize,
    src_stride: usize,
    dst: &mut [T],
    dst_base: usize,
    dst_stride: usize,
    rows: usize,
    cols: usize,
    op: F,
) where
    T: Copy,
    F: Fn(&mut T, T),
{
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TILE).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                let src_row = src_base + r * src_stride;
                for c in c0..c1 {
                    op(&mut dst[dst_base + c * dst_stride + r], src[src_row + c]);
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// Copy-transpose a dense row-major `rows × cols` matrix into `dst`
/// (which becomes `cols × rows`), tiled.
pub fn transpose_into<T: Copy>(src: &[T], rows: usize, cols: usize, dst: &mut [T]) {
    assert_eq!(src.len(), rows * cols, "src must be rows x cols");
    assert_eq!(dst.len(), rows * cols, "dst must be cols x rows");
    transpose_tiles(src, 0, cols, dst, 0, rows, rows, cols, |d, s| *d = s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_transpose_matches_naive() {
        // Edges straddle tile boundaries: 33 and 70 are not TILE
        // multiples.
        let (rows, cols) = (33, 70);
        let src: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut dst = vec![0.0; rows * cols];
        transpose_into(&src, rows, cols, &mut dst);
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(dst[c * rows + r], src[r * cols + c], "({r},{c})");
            }
        }
    }

    #[test]
    fn strided_view_transposes_a_plane() {
        // Two stacked 4x6 planes; transpose only the second by offsetting
        // the bases.
        let (rows, cols) = (4, 6);
        let plane = rows * cols;
        let src: Vec<i64> = (0..2 * plane as i64).collect();
        let mut dst = vec![0i64; 2 * plane];
        transpose_tiles(&src, plane, cols, &mut dst, plane, rows, rows, cols, |d, s| *d = s);
        assert!(dst[..plane].iter().all(|&v| v == 0), "first plane untouched");
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(dst[plane + c * rows + r], src[plane + r * cols + c]);
            }
        }
    }

    #[test]
    fn add_op_accumulates() {
        let n = 3;
        let src = vec![1.0; n * n];
        let mut dst = vec![2.0; n * n];
        transpose_tiles(&src, 0, n, &mut dst, 0, n, n, n, |d, s| *d += s);
        assert!(dst.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn double_transpose_is_identity() {
        let (rows, cols) = (40, 37);
        let src: Vec<f64> = (0..rows * cols).map(|i| (i as f64).sin()).collect();
        let mut once = vec![0.0; rows * cols];
        let mut twice = vec![0.0; rows * cols];
        transpose_into(&src, rows, cols, &mut once);
        transpose_into(&once, cols, rows, &mut twice);
        assert_eq!(src, twice);
    }
}
