//! High-Performance Linpack.
//!
//! HPL solves a dense `N × N` linear system by blocked LU factorization
//! with row partial pivoting and reports `(2/3·N³ + 2·N²) / time` FLOPS.
//! The netlib implementation is tuned through an input file with the
//! problem size `Ns`, the panel block size `NBs` and the process grid
//! `P × Q`; §V-A of the paper sweeps exactly these knobs and finds that
//! only the *process count* materially moves power.
//!
//! * [`lu`] — the actual factorization/solve, rayon-parallel and verified
//!   by the HPL residual criterion,
//! * [`HplConfig`] — the tuning surface and the closed-form
//!   [`WorkloadSignature`] used by the simulated servers.

pub mod dat;
pub mod lu;

use hpceval_machine::spec::ServerSpec;
use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};

use crate::suite::{Benchmark, ProcConstraint, VerifyOutcome};

/// One HPL run configuration (a line of the netlib `HPL.dat`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HplConfig {
    /// Problem size `Ns` (matrix order).
    pub n: u64,
    /// LU block size `NBs`.
    pub nb: u32,
    /// Process grid rows `P`.
    pub p: u32,
    /// Process grid columns `Q`.
    pub q: u32,
}

impl HplConfig {
    /// A configuration with the given size and a sensible default block
    /// size and near-square grid for `procs` processes.
    pub fn tuned(n: u64, procs: u32) -> Self {
        let (p, q) = Self::near_square_grid(procs);
        Self { n, nb: 200, p, q }
    }

    /// Choose the problem size so the matrix occupies `frac` of the
    /// server's memory (the paper's "Mf" ≈ 0.92, "Mh" ≈ 0.5 states),
    /// rounded down to a multiple of `nb`.
    pub fn for_memory_fraction(spec: &ServerSpec, frac: f64, procs: u32) -> Self {
        let bytes = spec.memory_bytes() as f64 * frac.clamp(0.01, 0.98);
        let n = (bytes / 8.0).sqrt() as u64;
        let nb = 200u32;
        let n = (n / u64::from(nb)).max(1) * u64::from(nb);
        let (p, q) = Self::near_square_grid(procs);
        Self { n, nb, p, q }
    }

    /// The most square `P × Q = procs` factorization with `P ≤ Q`
    /// (HPL's recommended grid shape).
    pub fn near_square_grid(procs: u32) -> (u32, u32) {
        let procs = procs.max(1);
        let mut best = (1, procs);
        let mut r = 1u32;
        while r * r <= procs {
            if procs.is_multiple_of(r) {
                best = (r, procs / r);
            }
            r += 1;
        }
        best
    }

    /// Total process count `P × Q`.
    pub fn procs(&self) -> u32 {
        self.p * self.q
    }

    /// Reported floating point operations: `2/3·N³ + 2·N²`.
    pub fn reported_flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 / 3.0 * n.powi(3) + 2.0 * n * n
    }

    /// Memory footprint of the matrix plus per-process panel buffers.
    pub fn footprint_bytes(&self) -> f64 {
        let n = self.n as f64;
        8.0 * n * n + 3.0 * 8.0 * n * f64::from(self.nb)
    }

    /// Fraction of peak DGEMM efficiency retained at this block size.
    ///
    /// Small panels starve the matrix-multiply inner kernel: NB = 50
    /// loses ~14 % — the paper's Fig 7 observes its power sitting ~10 W
    /// below the other block sizes on the Xeon-E5462.
    pub fn nb_efficiency(&self) -> f64 {
        1.0 - 0.35 * (-f64::from(self.nb) / 55.0).exp()
    }

    /// Communication imbalance of the grid: 1.0 for a square grid,
    /// growing as the grid becomes a strip (`1×q` or `p×1`).
    pub fn grid_imbalance(&self) -> f64 {
        let (p, q) = (f64::from(self.p), f64::from(self.q));
        0.5 * (p / q + q / p)
    }

    /// DRAM traffic of the factorization: each trailing-update element is
    /// re-read `N / NB` times, so traffic ≈ `8·N³ / NB` bytes, inflated
    /// slightly by grid imbalance (extra panel copies).
    pub fn dram_bytes(&self) -> f64 {
        let n = self.n as f64;
        8.0 * n.powi(3) / f64::from(self.nb) * (0.9 + 0.1 * self.grid_imbalance())
    }
}

impl Benchmark for HplConfig {
    fn id(&self) -> &'static str {
        "hpl"
    }

    fn display_name(&self) -> String {
        format!("HPL N={} NB={} {}x{}", self.n, self.nb, self.p, self.q)
    }

    fn signature(&self) -> WorkloadSignature {
        let eff = self.nb_efficiency();
        WorkloadSignature {
            name: self.display_name(),
            reported_flops: self.reported_flops(),
            // Poor blocking costs extra machine work (partial products
            // re-loaded, pipeline bubbles), folded into the op count.
            work_ops: self.reported_flops() / eff,
            dram_bytes: self.dram_bytes(),
            footprint_bytes: self.footprint_bytes(),
            footprint_per_proc_bytes: 48.0 * f64::from(1u32 << 20),
            footprint_scratch_bytes: 0.0,
            // Panel broadcasts; residual on top of the machine-calibrated
            // parallel decay, worse for strip grids.
            comm_fraction: 0.01 * self.grid_imbalance(),
            // Stalled multiply units burn markedly less power at tiny NB:
            // the quadratic exponent reproduces the ~10 W dip the paper
            // measures at NB = 50 (Fig 7) while leaving NB ≥ 200 flat.
            cpu_intensity: (eff * eff).min(1.0),
            kind: ComputeKind::Vector,
            locality: LocalityProfile::dense_blocked(),
        }
    }

    fn constraint(&self) -> ProcConstraint {
        ProcConstraint::Any
    }

    fn verify(&self, threads: usize) -> VerifyOutcome {
        // Scaled-down instance: cap the order so tests stay fast while
        // still exercising multi-panel factorization.
        let n = (self.n as usize).clamp(16, 240);
        let nb = (self.nb as usize).min(n / 2).max(4);
        match lu::solve_random(n, nb, threads) {
            Ok(res) => {
                let flops = 2.0 / 3.0 * (n as f64).powi(3);
                if res.passes() {
                    VerifyOutcome::pass(
                        format!("n={n} nb={nb} scaled residual {:.3e}", res.scaled_residual),
                        flops,
                    )
                } else {
                    VerifyOutcome::fail(format!(
                        "residual {:.3e} exceeds HPL threshold",
                        res.scaled_residual
                    ))
                }
            }
            Err(e) => VerifyOutcome::fail(format!("factorization failed: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn near_square_grids() {
        assert_eq!(HplConfig::near_square_grid(1), (1, 1));
        assert_eq!(HplConfig::near_square_grid(4), (2, 2));
        assert_eq!(HplConfig::near_square_grid(16), (4, 4));
        assert_eq!(HplConfig::near_square_grid(40), (5, 8));
        assert_eq!(HplConfig::near_square_grid(7), (1, 7));
    }

    #[test]
    fn memory_fraction_sizes_match_paper_scale() {
        // Paper §V-A3 uses N = 30,000 on the 8 GiB Xeon-E5462 (Mf).
        let cfg = HplConfig::for_memory_fraction(&presets::xeon_e5462(), 0.92, 4);
        assert!(cfg.n >= 28_000 && cfg.n <= 32_000, "N = {}", cfg.n);
        assert_eq!(cfg.n % u64::from(cfg.nb), 0);
    }

    #[test]
    fn flop_count_formula() {
        let cfg = HplConfig::tuned(30_000, 4);
        let n = 30_000f64;
        assert!((cfg.reported_flops() - (2.0 / 3.0 * n.powi(3) + 2.0 * n * n)).abs() < 1.0);
    }

    #[test]
    fn nb_efficiency_ordering_matches_fig6() {
        // NB=50 must cost noticeably more than NB>=200; beyond 200 the
        // effect is negligible — Fig 6's flat curves.
        let mk = |nb| HplConfig { n: 30_000, nb, p: 2, q: 2 };
        let e50 = mk(50).nb_efficiency();
        let e200 = mk(200).nb_efficiency();
        let e400 = mk(400).nb_efficiency();
        assert!(e50 < e200 && e200 < e400);
        assert!(e200 - e50 > 0.08, "NB=50 visibly less efficient");
        assert!(e400 - e200 < 0.02, "NB>=200 plateau");
    }

    #[test]
    fn grid_imbalance_square_is_minimal() {
        let sq = HplConfig { n: 1000, nb: 100, p: 2, q: 2 }.grid_imbalance();
        let strip = HplConfig { n: 1000, nb: 100, p: 1, q: 4 }.grid_imbalance();
        assert!((sq - 1.0).abs() < 1e-12);
        assert!(strip > sq);
    }

    #[test]
    fn verify_runs_and_passes() {
        let cfg = HplConfig::tuned(30_000, 2);
        let out = cfg.verify(2);
        assert!(out.passed, "{}", out.detail);
        assert!(out.useful_ops > 0.0);
    }

    #[test]
    fn signature_footprint_tracks_n() {
        let small = HplConfig::tuned(10_000, 4).signature();
        let big = HplConfig::tuned(30_000, 4).signature();
        assert!(big.footprint_bytes > 8.0 * small.footprint_bytes);
    }
}
