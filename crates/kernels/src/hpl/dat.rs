//! Parser for the netlib `HPL.dat` input file.
//!
//! The paper's §V-A tunes HPL exactly the way practitioners do: by
//! editing `HPL.dat`'s problem sizes (`Ns`), block sizes (`NBs`) and
//! process grids (`Ps`/`Qs`) and running the cross product. This module
//! reads that file format and expands it into the [`HplConfig`] sweep it
//! denotes, so a real tuning file drives the simulated study.
//!
//! The classic format is line-oriented with a trailing comment on every
//! line, e.g.:
//!
//! ```text
//! HPLinpack benchmark input file
//! Innovative Computing Laboratory, University of Tennessee
//! HPL.out      output file name (if any)
//! 6            device out (6=stdout,7=stderr,file)
//! 1            # of problems sizes (N)
//! 30000        Ns
//! 8            # of NBs
//! 50 100 150 200 250 300 350 400  NBs
//! 0            PMAP process mapping (0=Row-,1=Column-major)
//! 3            # of process grids (P x Q)
//! 1 2 4        Ps
//! 4 2 1        Qs
//! ```

use super::HplConfig;

/// A parsed `HPL.dat` tuning specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HplDat {
    /// Problem sizes.
    pub ns: Vec<u64>,
    /// Block sizes.
    pub nbs: Vec<u32>,
    /// Process grid rows.
    pub ps: Vec<u32>,
    /// Process grid columns (paired with `ps` by index).
    pub qs: Vec<u32>,
}

/// Parse errors with enough context to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatError {
    /// The file ended before a required line.
    Truncated {
        /// What was being looked for.
        expected: &'static str,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// The line's role.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// A count line disagrees with the number of values provided.
    CountMismatch {
        /// The list's role.
        field: &'static str,
        /// Declared count.
        declared: usize,
        /// Values actually present.
        found: usize,
    },
    /// `Ps` and `Qs` lists have different lengths.
    GridMismatch {
        /// Number of P entries.
        ps: usize,
        /// Number of Q entries.
        qs: usize,
    },
}

impl std::fmt::Display for DatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatError::Truncated { expected } => write!(f, "file ended before {expected}"),
            DatError::BadNumber { field, token } => {
                write!(f, "cannot parse {token:?} in {field}")
            }
            DatError::CountMismatch { field, declared, found } => {
                write!(f, "{field}: declared {declared} values, found {found}")
            }
            DatError::GridMismatch { ps, qs } => {
                write!(f, "process grid: {ps} Ps vs {qs} Qs")
            }
        }
    }
}

impl std::error::Error for DatError {}

/// Leading whitespace-separated numbers of a line (the classic format
/// puts a free-text comment after the values).
fn numbers<T: std::str::FromStr>(
    line: &str,
    count: usize,
    field: &'static str,
) -> Result<Vec<T>, DatError> {
    let mut out = Vec::with_capacity(count);
    for tok in line.split_whitespace() {
        match tok.parse::<T>() {
            Ok(v) => {
                out.push(v);
                if out.len() == count {
                    return Ok(out);
                }
            }
            // First non-numeric token starts the comment.
            Err(_) => break,
        }
    }
    Err(DatError::CountMismatch { field, declared: count, found: out.len() })
}

/// One leading number.
fn one<T: std::str::FromStr>(line: &str, field: &'static str) -> Result<T, DatError> {
    let tok = line
        .split_whitespace()
        .next()
        .ok_or(DatError::BadNumber { field, token: String::new() })?;
    tok.parse().map_err(|_| DatError::BadNumber { field, token: tok.to_string() })
}

impl HplDat {
    /// Parse the classic 12-line header of an `HPL.dat` file.
    pub fn parse(text: &str) -> Result<Self, DatError> {
        let mut lines = text.lines();
        let mut next =
            |expected: &'static str| lines.next().ok_or(DatError::Truncated { expected });
        // Two title lines, output file, device.
        next("title line 1")?;
        next("title line 2")?;
        next("output file name")?;
        next("device out")?;

        let n_ns: usize = one(next("# of problem sizes")?, "# of problem sizes")?;
        let ns = numbers(next("Ns")?, n_ns, "Ns")?;
        let n_nbs: usize = one(next("# of NBs")?, "# of NBs")?;
        let nbs = numbers(next("NBs")?, n_nbs, "NBs")?;
        next("PMAP")?;
        let n_grids: usize = one(next("# of process grids")?, "# of process grids")?;
        let ps = numbers(next("Ps")?, n_grids, "Ps")?;
        let qs = numbers(next("Qs")?, n_grids, "Qs")?;
        if ps.len() != qs.len() {
            return Err(DatError::GridMismatch { ps: ps.len(), qs: qs.len() });
        }
        Ok(Self { ns, nbs, ps, qs })
    }

    /// Expand into the full cross-product sweep the file denotes:
    /// every `N × NB × (P, Q)` combination, in netlib's nesting order.
    pub fn configs(&self) -> Vec<HplConfig> {
        let mut out = Vec::with_capacity(self.ns.len() * self.nbs.len() * self.ps.len());
        for &n in &self.ns {
            for &nb in &self.nbs {
                for (&p, &q) in self.ps.iter().zip(&self.qs) {
                    out.push(HplConfig { n, nb, p, q });
                }
            }
        }
        out
    }

    /// The paper's §V-A3 tuning file: N = 30,000, NB ∈ 50..400,
    /// grids 1×4 / 2×2 / 4×1.
    pub fn paper_tuning_file() -> &'static str {
        "HPLinpack benchmark input file\n\
         Tsinghua University power evaluation study\n\
         HPL.out      output file name (if any)\n\
         6            device out (6=stdout,7=stderr,file)\n\
         1            # of problems sizes (N)\n\
         30000        Ns\n\
         8            # of NBs\n\
         50 100 150 200 250 300 350 400  NBs\n\
         0            PMAP process mapping (0=Row-,1=Column-major)\n\
         3            # of process grids (P x Q)\n\
         1 2 4        Ps\n\
         4 2 1        Qs\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_tuning_file() {
        let dat = HplDat::parse(HplDat::paper_tuning_file()).expect("valid file");
        assert_eq!(dat.ns, vec![30_000]);
        assert_eq!(dat.nbs, vec![50, 100, 150, 200, 250, 300, 350, 400]);
        assert_eq!(dat.ps, vec![1, 2, 4]);
        assert_eq!(dat.qs, vec![4, 2, 1]);
        // 1 N x 8 NB x 3 grids = 24 configurations (the Fig 7 sweep).
        assert_eq!(dat.configs().len(), 24);
    }

    #[test]
    fn configs_preserve_grid_pairing() {
        let dat = HplDat::parse(HplDat::paper_tuning_file()).expect("valid file");
        let cfgs = dat.configs();
        // Every grid multiplies to 4 processes.
        assert!(cfgs.iter().all(|c| c.procs() == 4));
        assert!(cfgs.iter().any(|c| (c.p, c.q) == (2, 2)));
        assert!(cfgs.iter().any(|c| (c.p, c.q) == (4, 1)));
    }

    #[test]
    fn truncated_file_reports_what_is_missing() {
        let text = "a\nb\nc\n6\n1\n30000\n";
        match HplDat::parse(text) {
            Err(DatError::Truncated { expected }) => assert_eq!(expected, "# of NBs"),
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn count_mismatch_detected() {
        let text = "t\nt\no\n6\n2            # of problems sizes\n30000        Ns\n\
                    1\n200\n0\n1\n2\n2\n";
        match HplDat::parse(text) {
            Err(DatError::CountMismatch { field, declared, found }) => {
                assert_eq!(field, "Ns");
                assert_eq!(declared, 2);
                assert_eq!(found, 1);
            }
            other => panic!("expected count mismatch, got {other:?}"),
        }
    }

    #[test]
    fn grid_mismatch_detected() {
        let text = "t\nt\no\n6\n1\n1000\n1\n100\n0\n2\n1 2\n2\n";
        // Qs line has 1 value but 2 declared grids -> CountMismatch on Qs.
        assert!(matches!(HplDat::parse(text), Err(DatError::CountMismatch { field: "Qs", .. })));
    }

    #[test]
    fn bad_number_reports_token() {
        let text = "t\nt\no\n6\nxyz\n";
        match HplDat::parse(text) {
            Err(DatError::BadNumber { token, .. }) => assert_eq!(token, "xyz"),
            other => panic!("expected bad number, got {other:?}"),
        }
    }

    #[test]
    fn error_messages_render() {
        let e = DatError::GridMismatch { ps: 2, qs: 3 };
        assert!(e.to_string().contains("2 Ps vs 3 Qs"));
    }
}
