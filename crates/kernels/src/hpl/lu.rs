//! Blocked LU factorization with row partial pivoting, and the HPL
//! verification criterion.
//!
//! Right-looking algorithm: factor a `NB`-wide panel unblocked, apply its
//! row swaps across the matrix, triangular-solve the block row of U, then
//! update the trailing submatrix with a rayon-parallel blocked
//! matrix-multiply — the same structure (panel factorization, U update,
//! DGEMM trailing update) as netlib HPL, minus the distributed memory.

use rayon::prelude::*;

use hpceval_trace::{hooks, AccessKind, Region};

use crate::rng::NpbRng;
use crate::simd;

// Logical trace addresses: the whole factorization works one row-major
// matrix, so a single base suffices; element (r, c) maps to
// `TRACE_MAT + (r·n + c)·8`. Chunk ids: each panel iteration is its own
// epoch ([`hooks::begin_epoch`] at the serial top of the loop), within
// which the serial panel and U-row phases use fixed phase ids and the
// parallel trailing update uses the updated row's matrix index — a
// width-invariant id even though the band decomposition is sized to the
// pool. All ids stay far below the recorder's `1 << 44` epoch shift.
const TRACE_MAT: u64 = 0x1_0000_0000;
const TRACE_PANEL_CHUNK: u64 = 1 << 32;
const TRACE_UROW_CHUNK: u64 = 2 << 32;

/// A dense row-major matrix.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Row count (== column count; HPL matrices are square).
    pub n: usize,
    /// Row-major storage, `n * n` elements.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of order `n`.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n] }
    }

    /// Uniform(-0.5, 0.5) random matrix from the NPB generator — the same
    /// distribution HPL's `HPL_pdmatgen` uses.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = NpbRng::new(seed);
        let data = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        Self { n, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.n)
            .map(|r| self.data[r * self.n..(r + 1) * self.n].iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|r| {
                self.data[r * self.n..(r + 1) * self.n]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect()
    }
}

/// Error cases of the factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// A pivot column was exactly zero: the matrix is singular.
    Singular {
        /// Column at which factorization broke down.
        column: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// LU factorization result: `P·A = L·U` packed into one matrix, plus the
/// pivot row for every column.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    pub lu: Matrix,
    /// `pivots[k]` = row swapped into position `k` at step `k`.
    pub pivots: Vec<usize>,
}

/// Factor `a` in place with block size `nb` using `threads` rayon workers.
pub fn factor(mut a: Matrix, nb: usize, threads: usize) -> Result<LuFactors, LuError> {
    let n = a.n;
    let nb = nb.max(1).min(n);
    let mut pivots = vec![0usize; n];
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool");

    pool.install(|| {
        let mut k = 0;
        while k < n {
            // Serial point: one epoch per panel iteration, so repeated
            // phase chunk ids never collide across iterations.
            hooks::begin_epoch(Region::Hpl);
            let kb = nb.min(n - k);
            let tr = hooks::chunk_enabled(Region::Hpl, TRACE_PANEL_CHUNK);
            // --- Panel factorization (columns k..k+kb), unblocked. ---
            for j in k..k + kb {
                // Find pivot in column j at/below row j.
                let (piv, maxval) = (j..n)
                    .map(|r| (r, a.get(r, j).abs()))
                    .fold((j, -1.0), |acc, x| if x.1 > acc.1 { x } else { acc });
                if maxval == 0.0 {
                    return Err(LuError::Singular { column: j });
                }
                pivots[j] = piv;
                if piv != j {
                    for c in 0..n {
                        let t = a.get(j, c);
                        a.set(j, c, a.get(piv, c));
                        a.set(piv, c, t);
                    }
                }
                let d = a.get(j, j);
                // Scale multipliers and update the remainder of the panel.
                for r in j + 1..n {
                    let m = a.get(r, j) / d;
                    a.set(r, j, m);
                    for c in j + 1..k + kb {
                        let v = a.get(r, c) - m * a.get(j, c);
                        a.set(r, c, v);
                    }
                }
                if tr {
                    let rg = Region::Hpl;
                    let ch = TRACE_PANEL_CHUNK;
                    let stride = (n * 8) as u32;
                    // Pivot search walks column j, the scaling writes it
                    // back below the diagonal, and the panel update
                    // re-reads pivot row j across the panel width.
                    let col = TRACE_MAT + ((j * n + j) * 8) as u64;
                    hooks::record(rg, ch, AccessKind::Read, col, stride, (n - j) as u32);
                    if j + 1 < n {
                        let below = TRACE_MAT + (((j + 1) * n + j) * 8) as u64;
                        hooks::record(rg, ch, AccessKind::Write, below, stride, (n - j - 1) as u32);
                    }
                    let prow = TRACE_MAT + ((j * n + j) * 8) as u64;
                    hooks::record(rg, ch, AccessKind::Read, prow, 8, (k + kb - j) as u32);
                }
            }

            let end = k + kb;
            if end < n {
                // --- U block row: solve L11 · U12 = A12 (unit lower). ---
                let m = simd::mode();
                let tru = hooks::chunk_enabled(Region::Hpl, TRACE_UROW_CHUNK);
                for j in k..end {
                    if tru {
                        let rg = Region::Hpl;
                        let rj = TRACE_MAT + ((j * n + end) * 8) as u64;
                        hooks::record(
                            rg,
                            TRACE_UROW_CHUNK,
                            AccessKind::Read,
                            rj,
                            8,
                            (n - end) as u32,
                        );
                        hooks::record(
                            rg,
                            TRACE_UROW_CHUNK,
                            AccessKind::Write,
                            rj,
                            8,
                            (n - end) as u32,
                        );
                    }
                    for r in k..j {
                        let mult = a.get(j, r);
                        if mult != 0.0 {
                            // Rows r < j: split the storage between them
                            // and stream `row_j -= mult · row_r` over the
                            // U columns (`y + (−m)·x` is bitwise `y − m·x`).
                            let (head, rest) = a.data.split_at_mut(j * n);
                            let rowr = &head[r * n + end..r * n + n];
                            let rowj = &mut rest[end..n];
                            simd::axpy(m, rowj, rowr, -mult);
                            if tru {
                                let ra = TRACE_MAT + ((r * n + end) * 8) as u64;
                                let w = (n - end) as u32;
                                hooks::record(
                                    Region::Hpl,
                                    TRACE_UROW_CHUNK,
                                    AccessKind::Read,
                                    ra,
                                    8,
                                    w,
                                );
                            }
                        }
                    }
                }
                // --- Trailing update: A22 -= L21 · U12 (parallel bands). ---
                let (head, tail) = a.data.split_at_mut(end * n);
                let u12 = &head[k * n..]; // rows k..end
                trailing_update(tail, u12, n, k, end);
            }
            k = end;
        }
        Ok(())
    })?;

    Ok(LuFactors { lu: a, pivots })
}

/// The DGEMM-shaped trailing update `A22 -= L21 · U12` of one blocked
/// LU step, over full matrix rows: `tail` holds rows `end..n` (each of
/// length `n`, multipliers in columns `k..end`, updated columns
/// `end..n`) and `u12` holds the U rows `k..end`.
///
/// Rows are grouped into bands sized to the installed pool (4 bands
/// per thread for load balance) so each piece amortises dispatch over
/// many rows instead of paying it per row; within a row, pairs of U
/// rows stream through one fused SIMD pass ([`simd::sub2`]). Per-row
/// arithmetic is unchanged by the banding and bitwise identical across
/// SIMD paths, so results are deterministic at every width × path.
/// Public (and allocation-free at width 1) so `tests/alloc_free.rs`
/// can pin it directly.
pub fn trailing_update(tail: &mut [f64], u12: &[f64], n: usize, k: usize, end: usize) {
    assert!(k <= end && end <= n);
    assert_eq!(tail.len() % n.max(1), 0, "tail must hold whole rows");
    assert_eq!(u12.len(), (end - k) * n, "u12 must hold rows k..end");
    let m = simd::mode();
    let rows = tail.len() / n.max(1);
    let band = rows.div_ceil(4 * rayon::current_num_threads()).max(1);
    tail.par_chunks_mut(n * band).enumerate().for_each(|(bi, bandrows)| {
        for (ri, row) in bandrows.chunks_mut(n).enumerate() {
            // The chunk id is the updated row's matrix index — the band
            // decomposition is pool-shaped, but `bi·band + ri` is the
            // row's absolute position in `tail` at any width.
            let grow = end + bi * band + ri;
            if hooks::chunk_enabled(Region::Hpl, grow as u64) {
                let rg = Region::Hpl;
                let ch = grow as u64;
                // One GEMM row: the fixed L21 multipliers, every U12
                // row streamed against it, and the updated row segment.
                let lrow = TRACE_MAT + ((grow * n + k) * 8) as u64;
                hooks::record(rg, ch, AccessKind::Read, lrow, 8, (end - k) as u32);
                for ur in k..end {
                    let ua = TRACE_MAT + ((ur * n + end) * 8) as u64;
                    hooks::record(rg, ch, AccessKind::Read, ua, 8, (n - end) as u32);
                }
                let ca = TRACE_MAT + ((grow * n + end) * 8) as u64;
                hooks::record(rg, ch, AccessKind::Read, ca, 8, (n - end) as u32);
                hooks::record(rg, ch, AccessKind::Write, ca, 8, (n - end) as u32);
            }
            // The multipliers row[k..end] are fixed L21 entries (only
            // columns end.. are written), so pairs of U rows can stream
            // through one fused pass.
            let mut urows = u12.chunks(n);
            let mut j = k;
            while j + 2 <= end {
                let u0 = urows.next().expect("U12 row");
                let u1 = urows.next().expect("U12 row");
                let m0 = row[j];
                let m1 = row[j + 1];
                simd::sub2(m, &mut row[end..], &u0[end..], &u1[end..], m0, m1);
                j += 2;
            }
            if j < end {
                let u0 = urows.next().expect("U12 row");
                let m0 = row[j];
                simd::axpy(m, &mut row[end..], &u0[end..], -m0);
            }
        }
    });
}

impl LuFactors {
    /// Solve `A·x = b` given the factorization of `A`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.n;
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        // Apply row permutation.
        for k in 0..n {
            x.swap(k, self.pivots[k]);
        }
        // Forward substitution (L unit lower).
        for r in 1..n {
            let mut s = x[r];
            for c in 0..r {
                s -= self.lu.get(r, c) * x[c];
            }
            x[r] = s;
        }
        // Back substitution (U upper).
        for r in (0..n).rev() {
            let mut s = x[r];
            for c in r + 1..n {
                s -= self.lu.get(r, c) * x[c];
            }
            x[r] = s / self.lu.get(r, r);
        }
        x
    }
}

/// Outcome of an end-to-end HPL-style solve of a random system.
#[derive(Debug, Clone, Copy)]
pub struct SolveCheck {
    /// `‖A·x − b‖∞ / (ε · (‖A‖∞·‖x‖∞ + ‖b‖∞) · n)` — HPL's acceptance
    /// metric.
    pub scaled_residual: f64,
}

impl SolveCheck {
    /// HPL accepts runs with scaled residual below 16.
    pub fn passes(&self) -> bool {
        self.scaled_residual.is_finite() && self.scaled_residual < 16.0
    }
}

/// Generate a random system of order `n`, factor with block size `nb`,
/// solve, and compute the HPL residual.
pub fn solve_random(n: usize, nb: usize, threads: usize) -> Result<SolveCheck, LuError> {
    let a = Matrix::random(n, 42);
    let mut rng = NpbRng::new(777);
    let b: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    let factors = factor(a.clone(), nb, threads)?;
    let x = factors.solve(&b);
    let ax = a.matvec(&x);
    let r_inf = ax.iter().zip(&b).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
    let x_inf = x.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let b_inf = b.iter().map(|v| v.abs()).fold(0.0, f64::max);
    let denom = f64::EPSILON * (a.norm_inf() * x_inf + b_inf) * n as f64;
    Ok(SolveCheck { scaled_residual: r_inf / denom })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_small_system() {
        // A = [[2,1],[1,3]], b = [3,5] -> x = [0.8, 1.4]
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let f = factor(a, 1, 1).unwrap();
        let x = f.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_element() {
        // Without pivoting this matrix breaks at (0,0).
        let mut a = Matrix::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 1.0);
        let f = factor(a, 2, 1).unwrap();
        let x = f.solve(&[1.0, 2.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::zeros(3);
        match factor(a, 2, 1) {
            Err(LuError::Singular { column }) => assert_eq!(column, 0),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let a = Matrix::random(48, 7);
        let f1 = factor(a.clone(), 1, 1).unwrap();
        let f2 = factor(a.clone(), 8, 1).unwrap();
        let f3 = factor(a, 48, 1).unwrap();
        for (x, y) in f1.lu.data.iter().zip(&f2.lu.data) {
            assert!((x - y).abs() < 1e-9);
        }
        for (x, y) in f1.lu.data.iter().zip(&f3.lu.data) {
            assert!((x - y).abs() < 1e-9);
        }
        assert_eq!(f1.pivots, f2.pivots);
    }

    #[test]
    fn parallel_matches_serial() {
        let a = Matrix::random(96, 3);
        let f1 = factor(a.clone(), 16, 1).unwrap();
        let f4 = factor(a, 16, 4).unwrap();
        assert_eq!(f1.pivots, f4.pivots);
        for (x, y) in f1.lu.data.iter().zip(&f4.lu.data) {
            assert_eq!(x, y, "parallel trailing update must be bitwise deterministic");
        }
    }

    #[test]
    fn residual_passes_hpl_criterion() {
        for n in [32, 100, 200] {
            let check = solve_random(n, 24, 2).unwrap();
            assert!(check.passes(), "n={n}: residual {}", check.scaled_residual);
        }
    }

    #[test]
    fn reconstructs_pa_equals_lu() {
        let n = 40;
        let a = Matrix::random(n, 11);
        let f = factor(a.clone(), 8, 1).unwrap();
        // Build P·A by replaying the swaps.
        let mut pa = a.clone();
        for k in 0..n {
            let piv = f.pivots[k];
            if piv != k {
                for c in 0..n {
                    let t = pa.get(k, c);
                    pa.set(k, c, pa.get(piv, c));
                    pa.set(piv, c, t);
                }
            }
        }
        // L·U from the packed factors.
        for r in 0..n {
            for c in 0..n {
                let mut s = 0.0;
                for k in 0..=r.min(c) {
                    let l = if k == r { 1.0 } else { f.lu.get(r, k) };
                    if k <= c {
                        s += l * f.lu.get(k, c);
                    }
                }
                assert!(
                    (s - pa.get(r, c)).abs() < 1e-8,
                    "P·A != L·U at ({r},{c}): {s} vs {}",
                    pa.get(r, c)
                );
            }
        }
    }
}
