//! Synthetic memory-access streams characteristic of each workload
//! family, used to validate the closed-form [`LocalityProfile`]s against
//! the machine crate's set-associative cache simulator.
//!
//! The PMU synthesis (`hpceval_machine::pmu`) derives L2/L3 hit counters
//! from per-workload locality profiles. Those profiles are hand-stated
//! constants; this module grounds them: it generates address streams
//! with the access structure of each workload family (blocked reuse,
//! streaming, random) and the tests assert that running them through the
//! real cache hierarchy orders the families the same way the profiles
//! do.
//!
//! The SIMD micro-kernels (`crate::simd`) change how many elements one
//! instruction touches, not which cache lines a kernel visits or in what
//! order — so these streams, and the locality profiles they ground, are
//! identical under every `HPCEVAL_SIMD` mode.

use hpceval_machine::workload::LocalityProfile;

use crate::rng::NpbRng;

/// How many addresses [`generate`] produces per call.
pub const STREAM_LEN: usize = 200_000;

/// The access-structure families used by the kernel signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Blocked dense linear algebra: long dwell inside a cache-sized
    /// tile, then move to the next tile (HPL/DGEMM).
    DenseBlocked,
    /// Streaming: sequential walk over a working set far beyond cache
    /// (STREAM, FT transposes).
    Streaming,
    /// Uniform random over a large table (RandomAccess, IS histogram).
    Random,
    /// Tiny resident working set (EP).
    ComputeResident,
}

impl AccessPattern {
    /// The closed-form profile this pattern is meant to justify.
    pub fn profile(self) -> LocalityProfile {
        match self {
            AccessPattern::DenseBlocked => LocalityProfile::dense_blocked(),
            AccessPattern::Streaming => LocalityProfile::streaming(),
            AccessPattern::Random => LocalityProfile::random_access(),
            AccessPattern::ComputeResident => LocalityProfile::compute_resident(),
        }
    }
}

/// Generate a characteristic address stream for `pattern` over a
/// `working_set` bytes region.
pub fn generate(pattern: AccessPattern, working_set: u64, seed: u64) -> Vec<u64> {
    let mut rng = NpbRng::new(seed.max(1));
    let ws = working_set.max(1 << 12);
    let mut out = Vec::with_capacity(STREAM_LEN);
    match pattern {
        AccessPattern::DenseBlocked => {
            // 24 KiB tiles revisited 16 times before moving on.
            let tile = 24 * 1024u64;
            let mut base = 0u64;
            while out.len() < STREAM_LEN {
                for _ in 0..16 {
                    let mut addr = base;
                    while addr < base + tile && out.len() < STREAM_LEN {
                        out.push(addr % ws);
                        addr += 8;
                    }
                }
                base = (base + tile) % ws;
            }
        }
        AccessPattern::Streaming => {
            let mut addr = 0u64;
            while out.len() < STREAM_LEN {
                out.push(addr % ws);
                addr += 8;
            }
        }
        AccessPattern::Random => {
            for _ in 0..STREAM_LEN {
                let r = (rng.next_f64() * ws as f64) as u64;
                out.push(r & !7);
            }
        }
        AccessPattern::ComputeResident => {
            // 8 KiB of state, revisited forever.
            let resident = 8 * 1024u64;
            let mut addr = 0u64;
            while out.len() < STREAM_LEN {
                out.push(addr % resident);
                addr += 8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::cache::CacheHierarchy;
    use hpceval_machine::presets;

    /// DRAM share of each pattern on a given server.
    fn mem_share(pattern: AccessPattern, spec: &hpceval_machine::ServerSpec) -> f64 {
        let mut h = CacheHierarchy::for_server(spec);
        let ws = 256 << 20; // 256 MiB working set
        let (_, _, mem) = h.profile_stream(generate(pattern, ws, 9));
        mem
    }

    #[test]
    fn cache_simulator_orders_patterns_like_the_profiles() {
        // The hand-stated profiles claim mem share: random > streaming >
        // dense-blocked > compute-resident. The real cache hierarchy
        // must agree on every server.
        for spec in presets::all_servers() {
            let r = mem_share(AccessPattern::Random, &spec);
            let s = mem_share(AccessPattern::Streaming, &spec);
            let b = mem_share(AccessPattern::DenseBlocked, &spec);
            let c = mem_share(AccessPattern::ComputeResident, &spec);
            assert!(r > s, "{}: random {r:.3} !> streaming {s:.3}", spec.name);
            assert!(s > b, "{}: streaming {s:.3} !> blocked {b:.3}", spec.name);
            assert!(b > c, "{}: blocked {b:.3} !> resident {c:.3}", spec.name);
        }
    }

    #[test]
    fn profile_mem_fractions_order_matches() {
        let pats = [
            AccessPattern::Random,
            AccessPattern::Streaming,
            AccessPattern::DenseBlocked,
            AccessPattern::ComputeResident,
        ];
        let mems: Vec<f64> = pats.iter().map(|p| p.profile().mem + p.profile().l3_hit).collect();
        for w in mems.windows(2) {
            assert!(w[0] > w[1], "profile ordering broken: {mems:?}");
        }
    }

    #[test]
    fn compute_resident_hits_l1_after_warmup() {
        let spec = presets::xeon_e5462();
        let mut h = CacheHierarchy::for_server(&spec);
        let stream = generate(AccessPattern::ComputeResident, 1 << 20, 3);
        let (_, _, mem) = h.profile_stream(stream);
        // Only the cold 8 KiB / 64 B = 128 lines miss.
        assert!(mem < 0.001, "resident stream missed {mem:.4}");
    }

    #[test]
    fn random_stream_misses_heavily_on_small_caches() {
        // A 256 MiB random walk cannot live in a 12 MiB LLC.
        let spec = presets::xeon_e5462();
        let mut h = CacheHierarchy::for_server(&spec);
        let (_, _, mem) = h.profile_stream(generate(AccessPattern::Random, 256 << 20, 5));
        assert!(mem > 0.5, "random mem share {mem:.3}");
    }

    #[test]
    fn streams_are_deterministic() {
        let a = generate(AccessPattern::Random, 1 << 24, 7);
        let b = generate(AccessPattern::Random, 1 << 24, 7);
        assert_eq!(a, b);
        let c = generate(AccessPattern::Random, 1 << 24, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_inside_the_working_set() {
        for pat in [AccessPattern::DenseBlocked, AccessPattern::Streaming, AccessPattern::Random] {
            let ws = 1u64 << 22;
            let stream = generate(pat, ws, 1);
            assert_eq!(stream.len(), STREAM_LEN);
            assert!(stream.iter().all(|&a| a < ws), "{pat:?} escaped");
        }
    }
}
