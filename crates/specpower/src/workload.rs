//! The SSJ transaction: real executable work standing in for the
//! server-side-Java order-processing transaction.
//!
//! Each warehouse owns a small object-graph buffer (16 KiB — far below
//! any realistic cache, which is why SSJ's memory utilization stays low)
//! and a transaction performs a deterministic mix of reads, hashes and
//! writes over it. Used by the calibration phase and by tests; the
//! graduated-load *power* behaviour is modelled analytically in
//! [`crate::ssj`].

/// Words per warehouse buffer (16 KiB of u64).
pub const WAREHOUSE_WORDS: usize = 2048;

/// One warehouse: the per-thread working state of the SSJ workload.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// The object-graph stand-in.
    pub data: Vec<u64>,
    /// Running transaction counter.
    pub completed: u64,
}

impl Warehouse {
    /// A warehouse seeded deterministically.
    pub fn new(seed: u64) -> Self {
        let mut x = seed | 1;
        let data = (0..WAREHOUSE_WORDS)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        Self { data, completed: 0 }
    }
}

/// Execute one SSJ transaction against a warehouse; returns a checksum
/// so the optimizer cannot elide the work.
pub fn transaction(w: &mut Warehouse) -> u64 {
    let n = w.data.len();
    let mut h = 0xcbf29ce484222325u64 ^ w.completed;
    // "New order": walk a pseudo-random chain of 64 items, hash and
    // update each.
    let mut idx = (h as usize) % n;
    for _ in 0..64 {
        let v = w.data[idx];
        h = (h ^ v).wrapping_mul(0x100000001b3);
        w.data[idx] = v.rotate_left(7) ^ h;
        idx = (v as usize).wrapping_add(idx) % n;
    }
    // "Payment": small arithmetic summary.
    let total: u64 = w.data[..16].iter().fold(0u64, |a, &b| a.wrapping_add(b));
    h ^= total;
    w.completed += 1;
    h
}

/// Run `count` transactions and return (checksum, transactions/sec) —
/// the calibration-phase measurement.
pub fn calibrate(count: u64, seed: u64) -> (u64, f64) {
    let mut w = Warehouse::new(seed);
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for _ in 0..count {
        acc ^= transaction(&mut w);
    }
    let dt = start.elapsed().as_secs_f64().max(1e-9);
    (acc, count as f64 / dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_are_deterministic() {
        let mut w1 = Warehouse::new(42);
        let mut w2 = Warehouse::new(42);
        for _ in 0..100 {
            assert_eq!(transaction(&mut w1), transaction(&mut w2));
        }
        assert_eq!(w1.completed, 100);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut w1 = Warehouse::new(1);
        let mut w2 = Warehouse::new(2);
        let c1: Vec<u64> = (0..10).map(|_| transaction(&mut w1)).collect();
        let c2: Vec<u64> = (0..10).map(|_| transaction(&mut w2)).collect();
        assert_ne!(c1, c2);
    }

    #[test]
    fn transactions_mutate_the_warehouse() {
        let mut w = Warehouse::new(3);
        let before = w.data.clone();
        for _ in 0..50 {
            transaction(&mut w);
        }
        let changed = w.data.iter().zip(&before).filter(|(a, b)| a != b).count();
        assert!(changed > 100, "only {changed} words touched");
    }

    #[test]
    fn calibration_measures_positive_rate() {
        let (_, rate) = calibrate(10_000, 7);
        assert!(rate > 1000.0, "absurdly slow: {rate} tx/s");
    }

    #[test]
    fn warehouse_footprint_is_small() {
        // The entire working set must stay KB-scale — SSJ's low memory
        // footprint is the point of Fig 1.
        let w = Warehouse::new(1);
        assert_eq!(w.data.len() * 8, 16 * 1024);
    }
}
