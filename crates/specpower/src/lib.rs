//! A SPECpower_ssj2008-like workload simulator.
//!
//! SPECpower_ssj2008 drives a transactional server-side-Java workload
//! through three calibration phases (finding the peak request rate) and
//! then ten graduated target loads, 100 % down to 10 %, collecting
//! `ssj_ops` and wall power at each level; the score is
//! `Σ ssj_ops / Σ power` over all levels plus active idle.
//!
//! The paper uses it in two ways, both reproduced here:
//!
//! * **Figs 1–2** — its *resource shape*: memory utilization stays below
//!   14 % at every load level, and per-core CPU utilization tracks the
//!   load level downward (the opposite of HPC codes, which pin the CPU
//!   regardless of problem size). [`SsjRun`] generates those series.
//! * **§V-C3** — its *score*: `ssj_ops/W` for the three servers
//!   (247 / 22.2 / 139), reproduced through the power model plus
//!   per-server throughput calibrations.
//!
//! The transaction itself is real executable work ([`workload`]): a
//! mix of hashing, object-graph walks over a warehouse buffer and small
//! arithmetic, so calibration-phase behaviour is testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ssj;
pub mod workload;

pub use ssj::{SsjCalibration, SsjLevel, SsjRun};
pub use workload::{transaction, Warehouse};
