//! The graduated-load measurement schedule and its resource shapes.
//!
//! SPECpower_ssj2008's controller runs: Calibration 1–3 (full tilt, used
//! to fix the 100 % request rate), then target loads 100 %, 90 %, …,
//! 10 %, then active idle. At a target load ℓ the scheduler injects
//! requests at `ℓ × peak` with exponential think times, so each core is
//! busy ℓ of the time — CPU utilization *tracks the load*, unlike HPC
//! codes (paper Fig 2). The warehouse heap is fixed at JVM start, so
//! memory utilization is flat and low (paper Fig 1: < 14 %).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hpceval_machine::spec::ServerSpec;
use hpceval_machine::workload::{ComputeKind, LocalityProfile, WorkloadSignature};

/// Per-server SSJ throughput calibration: the peak `ssj_ops` the three
/// calibration phases would measure.
///
/// These reproduce the paper's §V-C3 scores (247 / 22.2 / 139 ssj_ops/W)
/// through our power model; the enormous spread between the machines is
/// the paper's own measurement (the Opteron's JVM throughput per watt is
/// 11× worse than the Harpertown Xeon's).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SsjCalibration {
    /// Peak server-side-Java operations per second at 100 % load.
    pub peak_ssj_ops: f64,
}

impl SsjCalibration {
    /// Calibration for a paper server (generic formula otherwise:
    /// ~7000 ssj_ops per core × GHz of scalar throughput).
    pub fn for_server(spec: &ServerSpec) -> Self {
        let peak = match spec.name.as_str() {
            "Xeon-E5462" => 80_000.0,
            "Opteron-8347" => 19_500.0,
            "Xeon-4870" => 208_000.0,
            _ => 7_000.0 * spec.scalar_gops() * f64::from(spec.total_cores()),
        };
        Self { peak_ssj_ops: peak }
    }
}

/// One measurement interval of the graduated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsjLevel {
    /// Interval label as the paper's Figs 1–2 print them ("Cal1",
    /// "100%", …).
    pub label: String,
    /// Target load ∈ [0, 1]; calibration phases run at 1.0.
    pub target_load: f64,
    /// Achieved ssj_ops during the interval.
    pub ssj_ops: f64,
    /// Mean per-core CPU utilization ∈ [0, 1] (with scheduler jitter).
    pub cpu_util_per_core: Vec<f64>,
    /// Memory utilization fraction of installed RAM.
    pub mem_usage_frac: f64,
}

/// A full SPECpower-style run on one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsjRun {
    /// The measurement intervals, in schedule order.
    pub levels: Vec<SsjLevel>,
    /// Cores exercised.
    pub cores: u32,
}

impl SsjRun {
    /// Execute the measurement schedule for `spec` (Cal1–3 then
    /// 100 %..10 %), deterministic under `seed`.
    pub fn run(spec: &ServerSpec, seed: u64) -> Self {
        let cal = SsjCalibration::for_server(spec);
        let cores = spec.total_cores();
        let mut rng = StdRng::seed_from_u64(seed);
        // The JVM heap is sized at startup: a fixed low fraction of RAM
        // (paper Fig 1 shows ~11-13 % throughout).
        let heap_frac = 0.11 + 0.015 * rng.random::<f64>();

        let mut levels = Vec::new();
        for (i, label) in ["Cal1", "Cal2", "Cal3"].iter().enumerate() {
            levels.push(Self::level(
                label,
                1.0,
                cal.peak_ssj_ops * (0.97 + 0.01 * i as f64),
                cores,
                heap_frac,
                &mut rng,
            ));
        }
        for step in 0..10 {
            let load = 1.0 - 0.1 * step as f64;
            levels.push(Self::level(
                &format!("{}%", (load * 100.0).round()),
                load,
                cal.peak_ssj_ops * load,
                cores,
                heap_frac,
                &mut rng,
            ));
        }
        Self { levels, cores }
    }

    fn level(
        label: &str,
        load: f64,
        ops: f64,
        cores: u32,
        heap_frac: f64,
        rng: &mut StdRng,
    ) -> SsjLevel {
        // Each core's utilization tracks the target with scheduler
        // jitter; the load balancer is imperfect at partial loads.
        let jitter = 0.02 + 0.04 * (1.0 - load);
        let cpu = (0..cores)
            .map(|_| (load * (1.0 + jitter * (rng.random::<f64>() * 2.0 - 1.0))).clamp(0.0, 1.0))
            .collect();
        SsjLevel {
            label: label.to_string(),
            target_load: load,
            ssj_ops: ops,
            cpu_util_per_core: cpu,
            mem_usage_frac: (heap_frac + 0.01 * load).min(0.14),
        }
    }

    /// The ten graduated (non-calibration) levels.
    pub fn graduated(&self) -> impl Iterator<Item = &SsjLevel> {
        self.levels.iter().filter(|l| !l.label.starts_with("Cal"))
    }

    /// Workload signature of one target level, used to drive the power
    /// model: intensity scales with the load.
    pub fn signature_at(&self, spec: &ServerSpec, level: &SsjLevel) -> WorkloadSignature {
        let ops = level.ssj_ops;
        WorkloadSignature {
            name: format!("SPECpower.{}@{}", self.cores, level.label),
            reported_flops: ops,
            // ~350 kops of machine work per ssj transaction-batch unit.
            work_ops: ops * 350_000.0,
            dram_bytes: ops * 40_000.0,
            footprint_bytes: level.mem_usage_frac * spec.memory_bytes() as f64,
            footprint_per_proc_bytes: 0.0,
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.05,
            // Java object churn keeps the pipelines under half-busy even
            // at 100 % load; partial loads idle the cores proportionally.
            cpu_intensity: 0.40 * level.target_load,
            kind: ComputeKind::Mixed(0.25),
            locality: LocalityProfile {
                instr_per_op: 1.0,
                accesses_per_instr: 0.35,
                l1_hit: 0.90,
                l2_hit: 0.06,
                l3_hit: 0.02,
                mem: 0.02,
                write_fraction: 0.4,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpceval_machine::presets;

    #[test]
    fn schedule_has_three_calibrations_and_ten_levels() {
        let run = SsjRun::run(&presets::xeon_e5462(), 1);
        assert_eq!(run.levels.len(), 13);
        assert_eq!(run.levels[0].label, "Cal1");
        assert_eq!(run.levels[3].label, "100%");
        assert_eq!(run.levels[12].label, "10%");
    }

    #[test]
    fn memory_stays_below_fourteen_percent() {
        // Fig 1's finding, asserted across all servers and levels.
        for spec in presets::all_servers() {
            let run = SsjRun::run(&spec, 7);
            for level in &run.levels {
                assert!(
                    level.mem_usage_frac < 0.14 + 1e-9,
                    "{} {}: {}",
                    spec.name,
                    level.label,
                    level.mem_usage_frac
                );
            }
        }
    }

    #[test]
    fn cpu_utilization_tracks_load() {
        // Fig 2's finding: per-core utilization declines with load.
        let run = SsjRun::run(&presets::xeon_e5462(), 3);
        let mean = |l: &SsjLevel| {
            l.cpu_util_per_core.iter().sum::<f64>() / l.cpu_util_per_core.len() as f64
        };
        let hundred = run.levels.iter().find(|l| l.label == "100%").unwrap();
        let fifty = run.levels.iter().find(|l| l.label == "50%").unwrap();
        let ten = run.levels.iter().find(|l| l.label == "10%").unwrap();
        assert!(mean(hundred) > mean(fifty) && mean(fifty) > mean(ten));
        assert!((mean(fifty) - 0.5).abs() < 0.1);
    }

    #[test]
    fn ssj_ops_scale_linearly_with_load() {
        let run = SsjRun::run(&presets::xeon_4870(), 5);
        let l100 = run.levels.iter().find(|l| l.label == "100%").unwrap();
        let l20 = run.levels.iter().find(|l| l.label == "20%").unwrap();
        assert!((l20.ssj_ops / l100.ssj_ops - 0.2).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic_under_seed() {
        let a = SsjRun::run(&presets::opteron_8347(), 11);
        let b = SsjRun::run(&presets::opteron_8347(), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn signature_intensity_scales_with_level() {
        let spec = presets::xeon_e5462();
        let run = SsjRun::run(&spec, 1);
        let l100 = run.levels.iter().find(|l| l.label == "100%").unwrap();
        let l10 = run.levels.iter().find(|l| l.label == "10%").unwrap();
        let s100 = run.signature_at(&spec, l100);
        let s10 = run.signature_at(&spec, l10);
        assert!(s100.cpu_intensity > 4.0 * s10.cpu_intensity);
    }
}
