//! Server hardware models for the HPC power evaluation method.
//!
//! The ICPP 2015 paper evaluates three physical servers (Table I):
//! Xeon-E5462, Opteron-8347 and Xeon-4870. This crate provides the
//! simulated substrate standing in for that hardware:
//!
//! * [`spec`] — machine descriptions ([`ServerSpec`], cache geometry,
//!   memory system) plus microarchitectural efficiency knobs,
//! * [`presets`] — the three servers of Table I, encoded verbatim,
//! * [`topology`] — chips/cores and process placement policies,
//! * [`cache`] — a set-associative, LRU cache hierarchy simulator used to
//!   derive hit rates for synthetic access streams,
//! * [`workload`] — the resource *signature* of a benchmark program
//!   (flops, DRAM traffic, footprint, communication fraction, compute
//!   kind), the interface between the kernel implementations and the
//!   performance/power models,
//! * [`roofline`] — an analytic performance model turning a signature and
//!   a process count into execution time, achieved GFLOPS and per-core
//!   utilization,
//! * [`pmu`] — Performance Monitoring Unit counter synthesis (the paper's
//!   X1..X6 regression indicators).
//!
//! The design contract: kernels in `hpceval-kernels` are *real*
//! implementations whose correctness is testable at any problem size, and
//! whose published class sizes (NPB A/B/C, HPL Ns/NBs/P×Q) determine the
//! signatures fed to this crate's models. Power is then derived from the
//! model outputs by `hpceval-power`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pmu;
pub mod presets;
pub mod roofline;
pub mod spec;
pub mod topology;
pub mod workload;

pub use cache::{
    Access, AccessOutcome, CacheHierarchy, CacheSim, HierarchyCounters, PredictionStats,
    ReplacementPolicy, WayPrediction,
};
pub use pmu::{PmuCounters, PmuRates};
pub use presets::{all_servers, opteron_8347, xeon_4870, xeon_e5462};
pub use roofline::{ExecEstimate, PerfModel};
pub use spec::{CacheLevel, MemoryKind, ServerSpec};
pub use topology::{Placement, PlacementPlan};
pub use workload::{ComputeKind, LocalityProfile, WorkloadSignature};
