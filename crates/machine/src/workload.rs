//! Workload resource signatures.
//!
//! A [`WorkloadSignature`] is the contract between a benchmark
//! implementation (`hpceval-kernels`, `hpceval-specpower`) and the
//! performance/power models. It captures what the paper's measurement
//! infrastructure observes about a program: how much useful work it
//! reports, how much machine work it actually executes, its DRAM traffic
//! and footprint, its communication share and its cache locality.
//!
//! Signatures are *derived from the real published problem classes* (NPB
//! A/B/C sizes, HPL Ns/NBs) by the kernel crates; the algorithms
//! themselves are separately implemented and verified at scaled sizes.

use serde::{Deserialize, Serialize};

/// What execution resources dominate the program's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComputeKind {
    /// Dense, vectorizable floating point (HPL, DGEMM, FT butterflies):
    /// throughput follows the machine's peak-FLOPS pipeline and its
    /// `sustained_vector_eff`.
    Vector,
    /// Irregular, latency-bound scalar work (EP's transcendental loop,
    /// RandomAccess, IS): throughput follows `scalar_ipc × frequency`.
    Scalar,
    /// A blend; the field is the fraction of work executed on the vector
    /// pipeline (CG ≈ 0.6, MG ≈ 0.7, ...).
    Mixed(f64),
}

impl ComputeKind {
    /// Fraction of the work that runs on the vector pipeline.
    pub fn vector_fraction(self) -> f64 {
        match self {
            ComputeKind::Vector => 1.0,
            ComputeKind::Scalar => 0.0,
            ComputeKind::Mixed(f) => f.clamp(0.0, 1.0),
        }
    }
}

/// Closed-form cache behaviour of a workload, used by the PMU synthesizer.
///
/// `l1_hit + l2_hit + l3_hit + mem` must sum to 1 over data accesses
/// (enforced by [`LocalityProfile::normalized`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityProfile {
    /// Retired instructions per unit of `work_ops` (captures address
    /// arithmetic, loads/stores and control flow around each flop).
    pub instr_per_op: f64,
    /// Data-memory accesses per instruction (typical: 0.3–0.4).
    pub accesses_per_instr: f64,
    /// Fraction of data accesses served by L1.
    pub l1_hit: f64,
    /// Fraction served by L2.
    pub l2_hit: f64,
    /// Fraction served by L3 (folded into memory on L3-less machines).
    pub l3_hit: f64,
    /// Fraction reaching DRAM.
    pub mem: f64,
    /// Of the DRAM accesses, the fraction that are writes.
    pub write_fraction: f64,
}

impl LocalityProfile {
    /// A cache-friendly dense-blocked profile (HPL/DGEMM-like).
    pub fn dense_blocked() -> Self {
        Self {
            instr_per_op: 1.3,
            accesses_per_instr: 0.35,
            l1_hit: 0.965,
            l2_hit: 0.025,
            l3_hit: 0.007,
            mem: 0.003,
            write_fraction: 0.33,
        }
    }

    /// A streaming profile (STREAM, FT transpose phases).
    pub fn streaming() -> Self {
        Self {
            instr_per_op: 2.0,
            accesses_per_instr: 0.45,
            l1_hit: 0.80,
            l2_hit: 0.05,
            l3_hit: 0.02,
            mem: 0.13,
            write_fraction: 0.4,
        }
    }

    /// A pointer-chasing / random-access profile (RandomAccess, IS ranks).
    pub fn random_access() -> Self {
        Self {
            instr_per_op: 4.0,
            accesses_per_instr: 0.40,
            l1_hit: 0.45,
            l2_hit: 0.15,
            l3_hit: 0.10,
            mem: 0.30,
            write_fraction: 0.5,
        }
    }

    /// A compute-only profile with a tiny working set (EP).
    pub fn compute_resident() -> Self {
        Self {
            instr_per_op: 1.1,
            accesses_per_instr: 0.20,
            l1_hit: 0.999,
            l2_hit: 0.0008,
            l3_hit: 0.0001,
            mem: 0.0001,
            write_fraction: 0.5,
        }
    }

    /// Rescale the four level fractions so they sum to exactly 1.
    pub fn normalized(mut self) -> Self {
        let s = self.l1_hit + self.l2_hit + self.l3_hit + self.mem;
        if s > 0.0 {
            self.l1_hit /= s;
            self.l2_hit /= s;
            self.l3_hit /= s;
            self.mem /= s;
        }
        self
    }

    /// Check the level fractions are a distribution (within `tol`).
    pub fn is_distribution(&self, tol: f64) -> bool {
        let s = self.l1_hit + self.l2_hit + self.l3_hit + self.mem;
        (s - 1.0).abs() <= tol
            && self.l1_hit >= 0.0
            && self.l2_hit >= 0.0
            && self.l3_hit >= 0.0
            && self.mem >= 0.0
    }
}

/// The resource signature of one benchmark configuration (program ×
/// problem class × parameters), independent of process count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSignature {
    /// Display name, e.g. "ep.C" or "HPL N=30000 NB=200".
    pub name: String,
    /// Operations counted for the *reported* GFLOPS figure. For HPL this
    /// is 2/3·N³ + 2·N²; for EP the NPB counts only the Gaussian-pair
    /// bookkeeping, which is why the paper's EP "performance" is tiny
    /// (0.03–0.76 GFLOPS).
    pub reported_flops: f64,
    /// Machine operations actually executed (includes transcendental
    /// call expansion, index arithmetic amortized via the locality
    /// profile's `instr_per_op`).
    pub work_ops: f64,
    /// Total bytes moved to/from DRAM over the run.
    pub dram_bytes: f64,
    /// Resident memory of the problem, independent of process count.
    pub footprint_bytes: f64,
    /// Additional resident memory per process (buffers, replicated
    /// tables; this is what stops cg.C.2/cg.C.4 on the 8 GiB Xeon-E5462).
    pub footprint_per_proc_bytes: f64,
    /// Scratch memory that *shrinks* with the process count (an all-ranks
    /// transpose buffer is `total/p` per rank): contributes
    /// `footprint_scratch_bytes / p` to the resident set. This is why
    /// ft.C.4 runs on the 8 GiB Xeon-E5462 while ft.C.2 does not (Fig 3).
    pub footprint_scratch_bytes: f64,
    /// Fraction of runtime spent in communication/synchronization when
    /// running in parallel (0 = embarrassingly parallel).
    pub comm_fraction: f64,
    /// Power intensity of an active core relative to the most power-hungry
    /// code (HPL = 1.0; EP ≈ 0.35–0.4 per the Xeon-E5462 deltas).
    pub cpu_intensity: f64,
    /// Pipeline blend.
    pub kind: ComputeKind,
    /// Cache behaviour.
    pub locality: LocalityProfile,
}

impl WorkloadSignature {
    /// Total resident bytes for a `p`-process run.
    pub fn footprint_at(&self, p: u32) -> f64 {
        let p = p.max(1);
        self.footprint_bytes
            + self.footprint_per_proc_bytes * f64::from(p)
            + self.footprint_scratch_bytes / f64::from(p)
    }

    /// Whether a `p`-process run fits in `mem_bytes` of RAM (with the
    /// ~6 % OS reserve the paper's servers exhibit).
    pub fn fits_in(&self, p: u32, mem_bytes: u64) -> bool {
        self.footprint_at(p) <= mem_bytes as f64 * 0.94
    }

    /// Arithmetic intensity in flops per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.work_ops / self.dram_bytes
        }
    }

    /// An idle pseudo-workload (the evaluation's state 1).
    pub fn idle() -> Self {
        Self {
            name: "Idle".to_string(),
            reported_flops: 0.0,
            work_ops: 0.0,
            dram_bytes: 0.0,
            footprint_bytes: 0.0,
            footprint_per_proc_bytes: 0.0,
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.0,
            cpu_intensity: 0.0,
            kind: ComputeKind::Scalar,
            locality: LocalityProfile::compute_resident(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_presets_are_distributions() {
        for p in [
            LocalityProfile::dense_blocked(),
            LocalityProfile::streaming(),
            LocalityProfile::random_access(),
            LocalityProfile::compute_resident(),
        ] {
            assert!(p.is_distribution(1e-6), "{p:?} fractions must sum to 1");
        }
    }

    #[test]
    fn normalize_fixes_sloppy_profile() {
        let p = LocalityProfile {
            instr_per_op: 1.0,
            accesses_per_instr: 0.3,
            l1_hit: 2.0,
            l2_hit: 1.0,
            l3_hit: 0.5,
            mem: 0.5,
            write_fraction: 0.3,
        }
        .normalized();
        assert!(p.is_distribution(1e-12));
        assert!((p.l1_hit - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vector_fraction_clamped() {
        assert_eq!(ComputeKind::Mixed(1.7).vector_fraction(), 1.0);
        assert_eq!(ComputeKind::Mixed(-0.2).vector_fraction(), 0.0);
        assert_eq!(ComputeKind::Vector.vector_fraction(), 1.0);
        assert_eq!(ComputeKind::Scalar.vector_fraction(), 0.0);
    }

    #[test]
    fn footprint_grows_with_processes() {
        let mut s = WorkloadSignature::idle();
        s.footprint_bytes = 1e9;
        s.footprint_per_proc_bytes = 5e8;
        s.footprint_scratch_bytes = 0.0;
        assert!(s.footprint_at(4) > s.footprint_at(1));
        assert!(s.fits_in(1, 4 << 30));
        assert!(!s.fits_in(8, 4 << 30));
    }

    #[test]
    fn idle_signature_is_inert() {
        let s = WorkloadSignature::idle();
        assert_eq!(s.reported_flops, 0.0);
        assert_eq!(s.cpu_intensity, 0.0);
        assert!(s.arithmetic_intensity().is_infinite());
    }
}
