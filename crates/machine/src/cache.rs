//! Set-associative cache hierarchy simulation.
//!
//! The regression power model of the paper (§VI) uses L2/L3 hit counts and
//! memory read/write counts as predictors. Those counters come from real
//! PMU hardware in the paper; here they are produced by replaying each
//! workload's address trace through this simulator (or, for the analytic
//! fast path, by the closed-form locality profiles in [`crate::workload`],
//! which are validated against this simulator in tests).
//!
//! The model is a write-allocate, write-back, set-associative hierarchy
//! with per-set replacement stamps. Beyond the classic LRU core it
//! implements the three refinements of the exemplar cache-lab simulator
//! (see SNIPPETS.md):
//!
//! * an optional fully-associative LRU **victim cache** whose hits count
//!   toward the attached level's hit rate,
//! * **MRU way prediction** (per-set most-recently-used way, first-hit vs
//!   non-first-hit statistics), and
//! * **multi-column way prediction** (per-set columns selected by a tag
//!   hash, each holding a bit-vector of candidate ways; statistics track
//!   the average number of candidate ways probed).
//!
//! Dirty-line accounting makes DRAM reads (line fills) and DRAM writes
//! (dirty write-backs) separately countable, which is exactly the split
//! the paper's X5/X6 indicators need. There is deliberately no coherence
//! and no prefetching: the regression only needs hit/miss structure that
//! orders workloads correctly (dense-blocked ≫ streaming ≫ random).

use crate::spec::{CacheLevel, ServerSpec};

/// Result of pushing one address through a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served by the L1 data cache (including its victim cache, if any).
    L1Hit,
    /// Missed L1, served by L2.
    L2Hit,
    /// Missed L2, served by L3.
    L3Hit,
    /// Missed every level; DRAM access.
    Memory,
}

/// Replacement policy of a [`CacheSim`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the default; what the hit-rate model and the
    /// locality profiles assume).
    #[default]
    Lru,
    /// First-in-first-out: insertion order, ignoring reuse.
    Fifo,
    /// Pseudo-random victim selection (an xorshift stream), the cheap
    /// hardware fallback.
    Random,
}

/// Way-prediction scheme of a [`CacheSim`] (statistics only — prediction
/// does not change hit/miss behaviour, it models lookup latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WayPrediction {
    /// No predictor.
    #[default]
    None,
    /// Predict the per-set most-recently-used way.
    Mru,
    /// Per-set columns indexed by a tag hash, each holding a bit-vector
    /// of candidate ways.
    MultiColumn,
}

/// Way-prediction outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionStats {
    /// Hits served by the first predicted way.
    pub first_hits: u64,
    /// Hits the predictor did not resolve on its first probe.
    pub non_first_hits: u64,
    /// Total candidate ways probed across all hits.
    pub probed_ways: u64,
}

impl PredictionStats {
    /// Mean ways probed per hit (1.0 = perfect prediction).
    pub fn avg_probes(&self) -> f64 {
        let hits = self.first_hits + self.non_first_hits;
        if hits == 0 {
            0.0
        } else {
            self.probed_ways as f64 / hits as f64
        }
    }

    /// Fraction of hits resolved on the first probe.
    pub fn first_hit_ratio(&self) -> f64 {
        let hits = self.first_hits + self.non_first_hits;
        if hits == 0 {
            0.0
        } else {
            self.first_hits as f64 / hits as f64
        }
    }
}

/// Result of one [`CacheSim::touch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Served by this cache (or its victim cache).
    pub hit: bool,
    /// Served specifically by the victim cache.
    pub victim_hit: bool,
    /// Line address (byte address of the line start) of a dirty line
    /// this access pushed out of the cache+victim pair, if any.
    pub writeback: Option<u64>,
}

/// One cached line slot.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Replacement stamp: updated on every touch under LRU, only on
    /// fill under FIFO. Victim selection evicts the minimum stamp.
    stamp: u64,
}

/// Fully-associative LRU victim buffer attached to a [`CacheSim`].
#[derive(Debug, Clone)]
struct VictimCache {
    capacity: usize,
    /// `(line_number, dirty, stamp)`.
    lines: Vec<(u64, bool, u64)>,
    hits: u64,
}

impl VictimCache {
    fn new(capacity: usize) -> Self {
        Self { capacity, lines: Vec::with_capacity(capacity), hits: 0 }
    }

    /// Remove `line` if present, returning its dirty bit.
    fn take(&mut self, line: u64) -> Option<bool> {
        let pos = self.lines.iter().position(|&(l, _, _)| l == line)?;
        self.hits += 1;
        Some(self.lines.swap_remove(pos).1)
    }

    /// Insert an evicted line; returns the line this pushed out of the
    /// buffer (with its dirty bit), if the buffer was full.
    fn insert(&mut self, line: u64, dirty: bool, stamp: u64) -> Option<(u64, bool)> {
        let evicted = if self.lines.len() == self.capacity {
            let lru = self
                .lines
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, _, s))| s)
                .map(|(i, _)| i)
                .expect("full victim cache has a minimum stamp");
            Some(self.lines.swap_remove(lru)).map(|(l, d, _)| (l, d))
        } else {
            None
        };
        self.lines.push((line, dirty, stamp));
        evicted
    }
}

/// One set-associative cache with configurable replacement policy,
/// optional victim cache and optional way prediction.
///
/// Lines live in fixed slots (per the exemplar simulator's per-set LRU
/// timestamps): a hit refreshes the slot's stamp (LRU only) and a fill
/// evicts the slot with the minimum stamp. Fixed slots are what give
/// the way predictors a stable notion of "way".
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_shift: u32,
    sets: u64,
    ways: usize,
    policy: ReplacementPolicy,
    prediction: WayPrediction,
    rng_state: u64,
    clock: u64,
    /// `sets × ways` fixed slot store.
    slots: Vec<Slot>,
    /// Per-set MRU slot index (allocated iff prediction == Mru).
    mru: Vec<u32>,
    /// Per-set × per-column candidate-way bit-vectors (allocated iff
    /// prediction == MultiColumn). Column count equals the way count.
    columns: Vec<u64>,
    victim: Option<VictimCache>,
    hits: u64,
    misses: u64,
    victim_hits_total: u64,
    pred_stats: PredictionStats,
}

impl CacheSim {
    /// Build a simulator for the given cache geometry.
    ///
    /// Set counts need not be powers of two: the sliced LLCs of the paper's
    /// Xeon E7-4870 (30 MiB, 24-way) have 20480 sets, so indexing is by
    /// modulo rather than mask.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, zero sets, or a
    /// non-power-of-two line size).
    pub fn new(level: &CacheLevel) -> Self {
        let sets = level.sets();
        assert!(level.ways > 0, "cache must have at least one way");
        assert!(sets > 0, "cache must have at least one set");
        assert!(level.line_bytes.is_power_of_two(), "line size must be a power of two");
        Self {
            line_shift: level.line_bytes.trailing_zeros(),
            sets: u64::from(sets),
            ways: level.ways as usize,
            policy: ReplacementPolicy::Lru,
            prediction: WayPrediction::None,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            clock: 0,
            slots: vec![Slot::default(); sets as usize * level.ways as usize],
            mru: Vec::new(),
            columns: Vec::new(),
            victim: None,
            hits: 0,
            misses: 0,
            victim_hits_total: 0,
            pred_stats: PredictionStats::default(),
        }
    }

    /// Select a replacement policy (builder style).
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a fully-associative LRU victim cache of `entries` lines
    /// (builder style; 0 detaches).
    pub fn with_victim(mut self, entries: usize) -> Self {
        self.victim = (entries > 0).then(|| VictimCache::new(entries));
        self
    }

    /// Select a way-prediction scheme (builder style).
    pub fn with_prediction(mut self, prediction: WayPrediction) -> Self {
        self.prediction = prediction;
        match prediction {
            WayPrediction::None => {
                self.mru.clear();
                self.columns.clear();
            }
            WayPrediction::Mru => {
                self.mru = vec![0; self.sets as usize];
                self.columns.clear();
            }
            WayPrediction::MultiColumn => {
                self.mru.clear();
                self.columns = vec![0; self.sets as usize * self.ways];
            }
        }
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The way-prediction scheme in use.
    pub fn prediction(&self) -> WayPrediction {
        self.prediction
    }

    /// The exemplar's tag→column hash (any deterministic mixer works;
    /// this is splitmix64's finalizer).
    #[inline]
    fn column_of(&self, tag: u64) -> usize {
        let mut z = tag.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % self.ways
    }

    /// Record way-prediction statistics for a hit at slot `way` of
    /// `set`, then update the predictor state.
    fn note_predicted_hit(&mut self, set: usize, way: usize, tag: u64) {
        match self.prediction {
            WayPrediction::None => {}
            WayPrediction::Mru => {
                if self.mru[set] as usize == way {
                    self.pred_stats.first_hits += 1;
                    self.pred_stats.probed_ways += 1;
                } else {
                    self.pred_stats.non_first_hits += 1;
                    // The MRU probe failed, then the scan found the way.
                    self.pred_stats.probed_ways += 2;
                }
                self.mru[set] = way as u32;
            }
            WayPrediction::MultiColumn => {
                let col = set * self.ways + self.column_of(tag);
                let bits = self.columns[col];
                // Probe candidate ways in ascending order until `way`.
                let below = bits & ((1u64 << way) - 1);
                if bits & (1 << way) != 0 {
                    let probes = below.count_ones() as u64 + 1;
                    self.pred_stats.probed_ways += probes;
                    if probes == 1 {
                        self.pred_stats.first_hits += 1;
                    } else {
                        self.pred_stats.non_first_hits += 1;
                    }
                } else {
                    // No candidate bit: the predictor gave up and the
                    // full scan served the hit.
                    self.pred_stats.probed_ways += bits.count_ones() as u64 + 1;
                    self.pred_stats.non_first_hits += 1;
                }
            }
        }
    }

    /// Update predictor state for a fill of `tag` into slot `way`.
    fn note_fill(&mut self, set: usize, way: usize, tag: u64) {
        match self.prediction {
            WayPrediction::None => {}
            WayPrediction::Mru => self.mru[set] = way as u32,
            WayPrediction::MultiColumn => {
                // Way `way` now holds `tag`: set its bit in tag's column
                // and clear it everywhere else in the set.
                let base = set * self.ways;
                let col = self.column_of(tag);
                for c in 0..self.ways {
                    self.columns[base + c] &= !(1u64 << way);
                }
                self.columns[base + col] |= 1 << way;
            }
        }
    }

    /// Pick the victim slot index (within the set) for a fill.
    fn victim_way(&mut self, set: usize) -> usize {
        let base = set * self.ways;
        // Prefer an invalid slot.
        if let Some(w) = (0..self.ways).find(|&w| !self.slots[base + w].valid) {
            return w;
        }
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (0..self.ways)
                .min_by_key(|&w| self.slots[base + w].stamp)
                .expect("cache has at least one way"),
            ReplacementPolicy::Random => {
                let mut x = self.rng_state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.rng_state = x;
                (x % self.ways as u64) as usize
            }
        }
    }

    /// Access a byte address; `write` marks the line dirty. Misses
    /// allocate (write-allocate). Returns the full [`Access`] outcome
    /// including any dirty line pushed out of the cache+victim pair.
    pub fn touch(&mut self, addr: u64, write: bool) -> Access {
        self.clock += 1;
        let clock = self.clock;
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.ways;

        if let Some(way) =
            (0..self.ways).find(|&w| self.slots[base + w].valid && self.slots[base + w].tag == tag)
        {
            let slot = &mut self.slots[base + way];
            if self.policy == ReplacementPolicy::Lru {
                slot.stamp = clock;
            }
            slot.dirty |= write;
            self.hits += 1;
            self.note_predicted_hit(set, way, tag);
            return Access { hit: true, victim_hit: false, writeback: None };
        }

        // Miss in the set: the victim buffer may still hold the line.
        let (victim_hit, mut dirty) = match self.victim.as_mut().and_then(|v| v.take(line)) {
            Some(was_dirty) => (true, was_dirty || write),
            None => (false, write),
        };
        if victim_hit {
            self.hits += 1;
            self.victim_hits_total += 1;
        } else {
            self.misses += 1;
        }
        // In either case the line is (re)filled into the set.
        let way = self.victim_way(set);
        let slot = self.slots[base + way];
        let mut writeback = None;
        if slot.valid {
            let evicted_line = slot.tag * self.sets + set as u64;
            match &mut self.victim {
                Some(v) => {
                    if let Some((wline, wdirty)) = v.insert(evicted_line, slot.dirty, clock) {
                        if wdirty {
                            writeback = Some(wline << self.line_shift);
                        }
                    }
                }
                None => {
                    if slot.dirty {
                        writeback = Some(evicted_line << self.line_shift);
                    }
                }
            }
        }
        if victim_hit {
            // Victim hits keep their accumulated dirty state.
            dirty = dirty || write;
        }
        self.slots[base + way] = Slot { tag, valid: true, dirty, stamp: clock };
        self.note_fill(set, way, tag);
        Access { hit: victim_hit, victim_hit, writeback }
    }

    /// Access a byte address as a read; returns `true` on hit.
    /// (The pre-write-back API; misses allocate.)
    pub fn access(&mut self, addr: u64) -> bool {
        self.touch(addr, false).hit
    }

    /// Whether `addr`'s line is present (cache or victim), without
    /// touching any replacement or statistics state.
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.ways;
        (0..self.ways).any(|w| self.slots[base + w].valid && self.slots[base + w].tag == tag)
            || self.victim.as_ref().is_some_and(|v| v.lines.iter().any(|&(l, _, _)| l == line))
    }

    /// Mark `addr`'s line dirty if present (cache or victim) without
    /// counting an access; returns `true` when absorbed. This is how a
    /// lower level receives a write-back from the level above.
    pub fn absorb_writeback(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.ways;
        for w in 0..self.ways {
            let slot = &mut self.slots[base + w];
            if slot.valid && slot.tag == tag {
                slot.dirty = true;
                return true;
            }
        }
        if let Some(v) = &mut self.victim {
            for entry in &mut v.lines {
                if entry.0 == line {
                    entry.1 = true;
                    return true;
                }
            }
        }
        false
    }

    /// Drain every dirty line (cache and victim), returning their byte
    /// addresses in ascending order and clearing the dirty bits.
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.valid && slot.dirty {
                let set = (i / self.ways) as u64;
                out.push((slot.tag * self.sets + set) << self.line_shift);
                slot.dirty = false;
            }
        }
        if let Some(v) = &mut self.victim {
            for entry in &mut v.lines {
                if entry.1 {
                    out.push(entry.0 << self.line_shift);
                    entry.1 = false;
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Hits observed so far (victim hits included).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hits served by the victim cache.
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits_total
    }

    /// Way-prediction statistics (zeros when prediction is off).
    pub fn prediction_stats(&self) -> PredictionStats {
        self.pred_stats
    }

    /// Hit ratio over all accesses so far (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Forget all cached lines and statistics.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            *slot = Slot::default();
        }
        if let Some(v) = &mut self.victim {
            v.lines.clear();
            v.hits = 0;
        }
        self.mru.fill(0);
        self.columns.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
        self.victim_hits_total = 0;
        self.pred_stats = PredictionStats::default();
    }
}

/// Counter snapshot of a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyCounters {
    /// Data accesses pushed through the hierarchy.
    pub total: u64,
    /// Accesses served by L1 (victim cache included).
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// DRAM line fills (every last-level miss, read or write-allocate).
    pub mem_reads: u64,
    /// DRAM line write-backs (dirty evictions that fell out of the
    /// hierarchy, plus anything drained by [`CacheHierarchy::flush`]).
    pub mem_writes: u64,
    /// L1 hits that came specifically from the victim cache.
    pub l1_victim_hits: u64,
}

/// A data-side cache hierarchy (L1d → L2 → optional L3) for one core's
/// view of a server, counting per-level hits and memory traffic.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheSim,
    l2: CacheSim,
    l3: Option<CacheSim>,
    mem_reads: u64,
    mem_writes: u64,
    total: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy a single core sees on `spec`.
    ///
    /// Shared caches are modelled at their full capacity: when measuring a
    /// single-threaded access stream this is the capacity actually
    /// available, matching how the paper's PMU counters behave for
    /// one-process runs.
    pub fn for_server(spec: &ServerSpec) -> Self {
        Self {
            l1: CacheSim::new(&spec.l1d),
            l2: CacheSim::new(&spec.l2),
            l3: spec.l3.as_ref().map(CacheSim::new),
            mem_reads: 0,
            mem_writes: 0,
            total: 0,
        }
    }

    /// Attach a victim cache of `entries` lines to L1 (builder style).
    pub fn with_l1_victim(mut self, entries: usize) -> Self {
        self.l1 = self.l1.with_victim(entries);
        self
    }

    /// Enable way prediction on L1 (builder style; statistics via
    /// [`Self::l1_prediction_stats`]).
    pub fn with_l1_prediction(mut self, prediction: WayPrediction) -> Self {
        self.l1 = self.l1.with_prediction(prediction);
        self
    }

    /// Route a dirty line falling out of `level` into the next level
    /// down, or to DRAM.
    fn route_writeback(
        l3: &mut Option<CacheSim>,
        mem_writes: &mut u64,
        lower: Option<&mut CacheSim>,
        addr: u64,
    ) {
        let absorbed = match lower {
            Some(l2) => {
                l2.absorb_writeback(addr) || l3.as_mut().is_some_and(|l3| l3.absorb_writeback(addr))
            }
            None => l3.as_mut().is_some_and(|l3| l3.absorb_writeback(addr)),
        };
        if !absorbed {
            *mem_writes += 1;
        }
    }

    /// Push one data address through the hierarchy. `write` marks the
    /// L1 line dirty; dirty evictions cascade toward DRAM.
    pub fn access_rw(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.total += 1;
        let a1 = self.l1.touch(addr, write);
        if let Some(wb) = a1.writeback {
            Self::route_writeback(&mut self.l3, &mut self.mem_writes, Some(&mut self.l2), wb);
        }
        if a1.hit {
            return AccessOutcome::L1Hit;
        }
        // The L1 fill requests the line from L2 as a read: the dirty
        // bit lives at L1 until eviction.
        let a2 = self.l2.touch(addr, false);
        if let Some(wb) = a2.writeback {
            Self::route_writeback(&mut self.l3, &mut self.mem_writes, None, wb);
        }
        if a2.hit {
            return AccessOutcome::L2Hit;
        }
        if let Some(l3) = &mut self.l3 {
            let a3 = l3.touch(addr, false);
            if let Some(wb) = a3.writeback {
                self.mem_writes += 1;
                let _ = wb;
            }
            if a3.hit {
                return AccessOutcome::L3Hit;
            }
        }
        self.mem_reads += 1;
        AccessOutcome::Memory
    }

    /// Push one read address through the hierarchy.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.access_rw(addr, false)
    }

    /// Write back every dirty line still resident anywhere in the
    /// hierarchy to DRAM. Each distinct dirty line counts once, no
    /// matter how many levels hold it.
    pub fn flush(&mut self) {
        let mut lines = self.l1.drain_dirty();
        lines.extend(self.l2.drain_dirty());
        if let Some(l3) = &mut self.l3 {
            lines.extend(l3.drain_dirty());
        }
        lines.sort_unstable();
        lines.dedup();
        self.mem_writes += lines.len() as u64;
    }

    /// Run a whole (read) address stream and return `(l2_hit_ratio,
    /// l3_hit_ratio, memory_ratio)` relative to all accesses.
    pub fn profile_stream(&mut self, addrs: impl IntoIterator<Item = u64>) -> (f64, f64, f64) {
        for a in addrs {
            self.access(a);
        }
        let t = self.total.max(1) as f64;
        (
            self.l2.hits() as f64 / t,
            self.l3.as_ref().map_or(0.0, |c| c.hits() as f64) / t,
            self.mem_reads as f64 / t,
        )
    }

    /// Accesses that reached DRAM (line fills).
    pub fn memory_accesses(&self) -> u64 {
        self.mem_reads
    }

    /// DRAM line fills.
    pub fn mem_reads(&self) -> u64 {
        self.mem_reads
    }

    /// DRAM dirty write-backs.
    pub fn mem_writes(&self) -> u64 {
        self.mem_writes
    }

    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// L1 hits observed (victim hits included).
    pub fn l1_hits(&self) -> u64 {
        self.l1.hits()
    }

    /// L2 hits observed.
    pub fn l2_hits(&self) -> u64 {
        self.l2.hits()
    }

    /// L3 hits observed (0 when the machine has no L3).
    pub fn l3_hits(&self) -> u64 {
        self.l3.as_ref().map_or(0, |c| c.hits())
    }

    /// Way-prediction statistics of L1.
    pub fn l1_prediction_stats(&self) -> PredictionStats {
        self.l1.prediction_stats()
    }

    /// The full counter snapshot.
    pub fn counters(&self) -> HierarchyCounters {
        HierarchyCounters {
            total: self.total,
            l1_hits: self.l1.hits(),
            l2_hits: self.l2.hits(),
            l3_hits: self.l3_hits(),
            mem_reads: self.mem_reads,
            mem_writes: self.mem_writes,
            l1_victim_hits: self.l1.victim_hits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::spec::CacheLevel;

    #[test]
    fn repeated_access_hits_after_first() {
        let mut c = CacheSim::new(&CacheLevel::private(32, 8, 64));
        assert!(!c.access(0x1000));
        for _ in 0..10 {
            assert!(c.access(0x1000));
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 10);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = CacheSim::new(&CacheLevel::private(32, 8, 64));
        assert!(!c.access(0x40));
        assert!(c.access(0x41)); // same 64 B line
        assert!(c.access(0x7f));
        assert!(!c.access(0x80)); // next line
    }

    #[test]
    fn lru_evicts_oldest_way() {
        // 2 ways, 64 B lines, size_kib=1 -> 8 sets. Address stride of
        // 8*64=512 maps to the same set.
        let mut c = CacheSim::new(&CacheLevel::private(1, 2, 64));
        let s = 512u64;
        assert!(!c.access(0)); // way 1
        assert!(!c.access(s)); // way 2
        assert!(c.access(0)); // hit, now MRU
        assert!(!c.access(2 * s)); // evicts `s` (LRU)
        assert!(c.access(0));
        assert!(!c.access(s)); // was evicted
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        // Stream over 2 MiB with a 32 KiB L1: second pass still misses.
        let mut c = CacheSim::new(&CacheLevel::private(32, 8, 64));
        let n = 2 * 1024 * 1024 / 64;
        for pass in 0..2 {
            for i in 0..n {
                c.access(i * 64);
            }
            if pass == 0 {
                assert_eq!(c.hits(), 0);
            }
        }
        assert_eq!(c.hits(), 0, "LRU streaming working set > capacity never hits");
    }

    #[test]
    fn small_working_set_lives_in_l1() {
        let spec = presets::xeon_e5462();
        let mut h = CacheHierarchy::for_server(&spec);
        // 16 KiB working set walked 4 times: everything after the cold
        // pass is an L1 hit.
        let lines = 16 * 1024 / 64;
        for _ in 0..4 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        assert_eq!(h.memory_accesses(), lines);
        assert_eq!(h.l2_hits(), 0);
    }

    #[test]
    fn medium_working_set_hits_in_l2() {
        let spec = presets::xeon_e5462(); // 32 KiB L1, 6 MiB L2
        let mut h = CacheHierarchy::for_server(&spec);
        let bytes = 1 << 20; // 1 MiB: fits L2, not L1
        let lines = bytes / 64;
        for _ in 0..4 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        // Cold pass misses everything; later passes hit in L2.
        assert_eq!(h.memory_accesses(), lines);
        assert!(h.l2_hits() >= 3 * (lines - spec.l1d.size_bytes() / 64));
    }

    #[test]
    fn l3_catches_l2_overflow_on_xeon_4870() {
        let spec = presets::xeon_4870(); // 256 KiB L2, 30 MiB L3
        let mut h = CacheHierarchy::for_server(&spec);
        let bytes = 4 << 20; // 4 MiB: fits L3 only
        let lines = bytes / 64;
        for _ in 0..3 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        assert_eq!(h.memory_accesses(), lines);
        assert!(h.l3_hits() > 0, "overflowing L2 must land in L3");
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        // 2-way set; access pattern A B A C: under LRU, C evicts B
        // (A was refreshed); under FIFO, C evicts A (oldest insertion).
        let lvl = CacheLevel::private(1, 2, 64); // 8 sets
        let s = 512u64; // same-set stride
        let (a, b, c) = (0u64, s, 2 * s);

        let mut lru = CacheSim::new(&lvl);
        lru.access(a);
        lru.access(b);
        assert!(lru.access(a));
        lru.access(c);
        assert!(lru.access(a), "LRU keeps the refreshed line");

        let mut fifo = CacheSim::new(&lvl).with_policy(ReplacementPolicy::Fifo);
        fifo.access(a);
        fifo.access(b);
        assert!(fifo.access(a));
        fifo.access(c);
        assert!(!fifo.access(a), "FIFO evicts the oldest insertion");
    }

    #[test]
    fn lru_beats_fifo_and_random_on_reuse_heavy_streams() {
        // A blocked-reuse stream (tile revisits) is exactly where LRU
        // earns its keep.
        let lvl = CacheLevel::private(32, 8, 64);
        let mut stream = Vec::new();
        for tile in 0..64u64 {
            let base = tile * 16 * 1024;
            for _ in 0..4 {
                for off in (0..16 * 1024).step_by(64) {
                    stream.push(base + off);
                }
            }
        }
        let ratio = |policy| {
            let mut c = CacheSim::new(&lvl).with_policy(policy);
            for &a in &stream {
                c.access(a);
            }
            c.hit_ratio()
        };
        let lru = ratio(ReplacementPolicy::Lru);
        let fifo = ratio(ReplacementPolicy::Fifo);
        let random = ratio(ReplacementPolicy::Random);
        assert!(lru >= fifo, "LRU {lru:.3} < FIFO {fifo:.3}");
        assert!(lru >= random, "LRU {lru:.3} < Random {random:.3}");
        assert!(lru > 0.7, "blocked stream should mostly hit: {lru:.3}");
    }

    #[test]
    fn random_policy_is_deterministic() {
        let lvl = CacheLevel::private(4, 2, 64);
        let addrs: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % (1 << 20)).collect();
        let run = || {
            let mut c = CacheSim::new(&lvl).with_policy(ReplacementPolicy::Random);
            for &a in &addrs {
                c.access(a);
            }
            (c.hits(), c.misses())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hierarchy_ratios_sum_sane() {
        let spec = presets::opteron_8347();
        let mut h = CacheHierarchy::for_server(&spec);
        let addrs: Vec<u64> = (0..20_000u64).map(|i| (i * 6151) % (8 << 20)).collect();
        let (l2, l3, mem) = h.profile_stream(addrs);
        assert!(l2 >= 0.0 && l3 >= 0.0 && mem >= 0.0);
        assert!(l2 + l3 + mem <= 1.0 + 1e-12);
    }

    #[test]
    fn victim_cache_catches_conflict_misses() {
        // Direct-mapped 8-set cache: 9 lines mapping round-robin thrash
        // it; a 4-entry victim buffer catches the re-references.
        let lvl = CacheLevel::private(1, 1, 64); // 16 sets, direct-mapped
        let s = 16 * 64u64; // same-set stride
        let mut plain = CacheSim::new(&lvl);
        let mut with_victim = CacheSim::new(&lvl).with_victim(4);
        // A and B conflict in set 0; alternate between them.
        for _ in 0..32 {
            plain.access(0);
            plain.access(s);
            with_victim.access(0);
            with_victim.access(s);
        }
        assert_eq!(plain.hits(), 0, "direct-mapped thrash never hits");
        assert!(with_victim.victim_hits() > 0, "victim cache must serve the conflicting line");
        assert!(with_victim.hit_ratio() > 0.9, "ratio {:.3}", with_victim.hit_ratio());
    }

    #[test]
    fn victim_hits_count_in_overall_hit_rate() {
        let lvl = CacheLevel::private(1, 1, 64);
        let s = 16 * 64u64;
        let mut c = CacheSim::new(&lvl).with_victim(2);
        c.access(0); // miss
        c.access(s); // miss, 0 -> victim
        let a = c.touch(0, false); // victim hit
        assert!(a.hit && a.victim_hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.victim_hits(), 1);
    }

    #[test]
    fn mru_prediction_first_hits_on_repeats() {
        let lvl = CacheLevel::private(1, 4, 64); // 4 sets, 4 ways
        let mut c = CacheSim::new(&lvl).with_prediction(WayPrediction::Mru);
        c.access(0);
        for _ in 0..10 {
            c.access(0); // always the MRU way
        }
        let s = c.prediction_stats();
        assert_eq!(s.first_hits, 10);
        assert_eq!(s.non_first_hits, 0);
        assert_eq!(s.avg_probes(), 1.0);
    }

    #[test]
    fn mru_prediction_misses_on_alternation() {
        let lvl = CacheLevel::private(1, 4, 64);
        let s = 4 * 64u64; // same-set stride (4 sets)
        let mut c = CacheSim::new(&lvl).with_prediction(WayPrediction::Mru);
        c.access(0);
        c.access(s);
        // Alternate: the MRU guess is always the *other* line.
        for i in 0..10u64 {
            let a = if i % 2 == 0 { 0 } else { s };
            c.access(a);
        }
        let st = c.prediction_stats();
        assert_eq!(st.first_hits, 0, "{st:?}");
        assert_eq!(st.non_first_hits, 10, "{st:?}");
        assert!(st.avg_probes() > 1.0);
    }

    #[test]
    fn multi_column_prediction_tracks_candidates() {
        let lvl = CacheLevel::private(1, 4, 64);
        let mut c = CacheSim::new(&lvl).with_prediction(WayPrediction::MultiColumn);
        c.access(0);
        for _ in 0..8 {
            c.access(0);
        }
        let st = c.prediction_stats();
        // A single resident tag has exactly one candidate bit in its
        // column: every repeat is a first hit with one probe.
        assert_eq!(st.first_hits, 8, "{st:?}");
        assert_eq!(st.avg_probes(), 1.0);
        assert!(st.first_hit_ratio() > 0.99);
    }

    #[test]
    fn writeback_counts_dirty_evictions_once() {
        // Direct-mapped single... 16-set cache; write line A, thrash it
        // out with a conflicting read: the dirty line must come back as
        // a write-back exactly once.
        let lvl = CacheLevel::private(1, 1, 64);
        let s = 16 * 64u64;
        let mut c = CacheSim::new(&lvl);
        assert_eq!(c.touch(0, true).writeback, None); // fill, dirty
        let a = c.touch(s, false); // evicts dirty line 0
        assert_eq!(a.writeback, Some(0));
        let b = c.touch(0, false); // evicts clean line s
        assert_eq!(b.writeback, None);
    }

    #[test]
    fn hierarchy_separates_reads_and_writes() {
        let spec = presets::xeon_4870();
        let mut h = CacheHierarchy::for_server(&spec);
        // Stream-write 8 MiB (beyond L2, within L3), then flush.
        let lines = (8 << 20) / 64u64;
        for i in 0..lines {
            h.access_rw(i * 64, true);
        }
        h.flush();
        let c = h.counters();
        // Write-allocate: every cold write fills a line (a DRAM read)…
        assert_eq!(c.mem_reads, lines);
        // …and every dirty line eventually drains to DRAM exactly once.
        assert_eq!(c.mem_writes, lines);
    }

    #[test]
    fn read_only_stream_writes_nothing_back() {
        let spec = presets::xeon_e5462();
        let mut h = CacheHierarchy::for_server(&spec);
        for i in 0..(1u64 << 14) {
            h.access_rw(i * 64, false);
        }
        h.flush();
        assert_eq!(h.mem_writes(), 0);
        assert!(h.mem_reads() > 0);
    }

    #[test]
    fn flush_counts_each_dirty_line_once_across_levels() {
        let spec = presets::xeon_4870();
        let mut h = CacheHierarchy::for_server(&spec);
        // Dirty a small set of lines repeatedly; some write-backs get
        // absorbed by L2/L3 along the way. Flush must dedupe.
        let lines = 64u64;
        for _ in 0..8 {
            for i in 0..lines {
                h.access_rw(i * 64, true);
            }
        }
        h.flush();
        assert_eq!(h.mem_writes(), lines, "each dirty line drains exactly once");
    }
}
