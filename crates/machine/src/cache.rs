//! Set-associative cache hierarchy simulation.
//!
//! The regression power model of the paper (§VI) uses L2/L3 hit counts and
//! memory read/write counts as predictors. Those counters come from real
//! PMU hardware in the paper; here they are synthesized by running each
//! workload's characteristic access stream through this simulator (or, for
//! the analytic fast path, by the closed-form locality profiles in
//! [`crate::workload`], which are validated against this simulator in
//! tests).
//!
//! The model is a classic inclusive, write-allocate, LRU, set-associative
//! hierarchy. It is deliberately simple — no coherence, no prefetching —
//! because the regression only needs hit/miss *ratios* that order
//! workloads correctly (dense-blocked ≫ streaming ≫ random).

use crate::spec::{CacheLevel, ServerSpec};

/// Result of pushing one address through a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served by the L1 data cache.
    L1Hit,
    /// Missed L1, served by L2.
    L2Hit,
    /// Missed L2, served by L3.
    L3Hit,
    /// Missed every level; DRAM access.
    Memory,
}

/// Replacement policy of a [`CacheSim`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the default; what the hit-rate model and the
    /// locality profiles assume).
    #[default]
    Lru,
    /// First-in-first-out: insertion order, ignoring reuse.
    Fifo,
    /// Pseudo-random victim selection (an xorshift stream), the cheap
    /// hardware fallback.
    Random,
}

/// One set-associative cache with a configurable replacement policy.
///
/// Under LRU, tags are stored per set in recency order (index 0 = most
/// recently used): a hit moves the tag to the front and a fill evicts
/// the back. Under FIFO, hits do not reorder. Under Random, the victim
/// way is drawn from a deterministic xorshift stream.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_shift: u32,
    sets: u64,
    ways: usize,
    policy: ReplacementPolicy,
    rng_state: u64,
    /// `sets × ways` tag store in per-set recency order.
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Build a simulator for the given cache geometry.
    ///
    /// Set counts need not be powers of two: the sliced LLCs of the paper's
    /// Xeon E7-4870 (30 MiB, 24-way) have 20480 sets, so indexing is by
    /// modulo rather than mask.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, zero sets, or a
    /// non-power-of-two line size).
    pub fn new(level: &CacheLevel) -> Self {
        let sets = level.sets();
        assert!(level.ways > 0, "cache must have at least one way");
        assert!(sets > 0, "cache must have at least one set");
        assert!(level.line_bytes.is_power_of_two(), "line size must be a power of two");
        Self {
            line_shift: level.line_bytes.trailing_zeros(),
            sets: u64::from(sets),
            ways: level.ways as usize,
            policy: ReplacementPolicy::Lru,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            tags: vec![Vec::with_capacity(level.ways as usize); sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Select a replacement policy (builder style).
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The policy in use.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Access a byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let policy = self.policy;
        let capacity = self.ways;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            if policy == ReplacementPolicy::Lru {
                let t = ways.remove(pos);
                ways.insert(0, t);
            }
            self.hits += 1;
            true
        } else {
            if ways.len() == capacity {
                match policy {
                    // LRU and FIFO both evict the back of the list; they
                    // differ in whether hits refresh recency.
                    ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                        ways.pop();
                    }
                    ReplacementPolicy::Random => {
                        // Deterministic xorshift victim.
                        let mut x = self.rng_state;
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        self.rng_state = x;
                        let victim = (x % capacity as u64) as usize;
                        ways.remove(victim);
                    }
                }
            }
            ways.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all accesses so far (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Forget all cached lines and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.tags {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// A data-side cache hierarchy (L1d → L2 → optional L3) for one core's
/// view of a server, counting per-level hits and memory traffic.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheSim,
    l2: CacheSim,
    l3: Option<CacheSim>,
    mem_accesses: u64,
    total: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy a single core sees on `spec`.
    ///
    /// Shared caches are modelled at their full capacity: when measuring a
    /// single-threaded access stream this is the capacity actually
    /// available, matching how the paper's PMU counters behave for
    /// one-process runs.
    pub fn for_server(spec: &ServerSpec) -> Self {
        Self {
            l1: CacheSim::new(&spec.l1d),
            l2: CacheSim::new(&spec.l2),
            l3: spec.l3.as_ref().map(CacheSim::new),
            mem_accesses: 0,
            total: 0,
        }
    }

    /// Push one data address through the hierarchy.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.total += 1;
        if self.l1.access(addr) {
            return AccessOutcome::L1Hit;
        }
        if self.l2.access(addr) {
            return AccessOutcome::L2Hit;
        }
        if let Some(l3) = &mut self.l3 {
            if l3.access(addr) {
                return AccessOutcome::L3Hit;
            }
        }
        self.mem_accesses += 1;
        AccessOutcome::Memory
    }

    /// Run a whole address stream and return `(l2_hit_ratio,
    /// l3_hit_ratio, memory_ratio)` relative to all accesses.
    pub fn profile_stream(&mut self, addrs: impl IntoIterator<Item = u64>) -> (f64, f64, f64) {
        for a in addrs {
            self.access(a);
        }
        let t = self.total.max(1) as f64;
        (
            self.l2.hits() as f64 / t,
            self.l3.as_ref().map_or(0.0, |c| c.hits() as f64) / t,
            self.mem_accesses as f64 / t,
        )
    }

    /// Accesses that reached DRAM.
    pub fn memory_accesses(&self) -> u64 {
        self.mem_accesses
    }

    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// L2 hits observed.
    pub fn l2_hits(&self) -> u64 {
        self.l2.hits()
    }

    /// L3 hits observed (0 when the machine has no L3).
    pub fn l3_hits(&self) -> u64 {
        self.l3.as_ref().map_or(0, |c| c.hits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::spec::CacheLevel;

    #[test]
    fn repeated_access_hits_after_first() {
        let mut c = CacheSim::new(&CacheLevel::private(32, 8, 64));
        assert!(!c.access(0x1000));
        for _ in 0..10 {
            assert!(c.access(0x1000));
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 10);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = CacheSim::new(&CacheLevel::private(32, 8, 64));
        assert!(!c.access(0x40));
        assert!(c.access(0x41)); // same 64 B line
        assert!(c.access(0x7f));
        assert!(!c.access(0x80)); // next line
    }

    #[test]
    fn lru_evicts_oldest_way() {
        // 1 set would need size = ways*line; build a tiny 2-way cache:
        // 2 ways, 64 B lines, 1 set => 128 B total = 0.125 KiB; use
        // size_kib=1, ways=2, line=64 -> sets=8. Address stride of
        // 8*64=512 maps to the same set.
        let mut c = CacheSim::new(&CacheLevel::private(1, 2, 64));
        let s = 512u64;
        assert!(!c.access(0)); // way 1
        assert!(!c.access(s)); // way 2
        assert!(c.access(0)); // hit, now MRU
        assert!(!c.access(2 * s)); // evicts `s` (LRU)
        assert!(c.access(0));
        assert!(!c.access(s)); // was evicted
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        // Stream over 2 MiB with a 32 KiB L1: second pass still misses.
        let mut c = CacheSim::new(&CacheLevel::private(32, 8, 64));
        let n = 2 * 1024 * 1024 / 64;
        for pass in 0..2 {
            for i in 0..n {
                c.access(i * 64);
            }
            if pass == 0 {
                assert_eq!(c.hits(), 0);
            }
        }
        assert_eq!(c.hits(), 0, "LRU streaming working set > capacity never hits");
    }

    #[test]
    fn small_working_set_lives_in_l1() {
        let spec = presets::xeon_e5462();
        let mut h = CacheHierarchy::for_server(&spec);
        // 16 KiB working set walked 4 times: everything after the cold
        // pass is an L1 hit.
        let lines = 16 * 1024 / 64;
        for _ in 0..4 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        assert_eq!(h.memory_accesses(), lines);
        assert_eq!(h.l2_hits(), 0);
    }

    #[test]
    fn medium_working_set_hits_in_l2() {
        let spec = presets::xeon_e5462(); // 32 KiB L1, 6 MiB L2
        let mut h = CacheHierarchy::for_server(&spec);
        let bytes = 1 << 20; // 1 MiB: fits L2, not L1
        let lines = bytes / 64;
        for _ in 0..4 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        // Cold pass misses everything; later passes hit in L2.
        assert_eq!(h.memory_accesses(), lines);
        assert!(h.l2_hits() >= 3 * (lines - spec.l1d.size_bytes() / 64));
    }

    #[test]
    fn l3_catches_l2_overflow_on_xeon_4870() {
        let spec = presets::xeon_4870(); // 256 KiB L2, 30 MiB L3
        let mut h = CacheHierarchy::for_server(&spec);
        let bytes = 4 << 20; // 4 MiB: fits L3 only
        let lines = bytes / 64;
        for _ in 0..3 {
            for i in 0..lines {
                h.access(i * 64);
            }
        }
        assert_eq!(h.memory_accesses(), lines);
        assert!(h.l3_hits() > 0, "overflowing L2 must land in L3");
    }

    #[test]
    fn fifo_does_not_refresh_on_hit() {
        // 2-way set; access pattern A B A C: under LRU, C evicts B
        // (A was refreshed); under FIFO, C evicts A (oldest insertion).
        let lvl = CacheLevel::private(1, 2, 64); // 8 sets
        let s = 512u64; // same-set stride
        let (a, b, c) = (0u64, s, 2 * s);

        let mut lru = CacheSim::new(&lvl);
        lru.access(a);
        lru.access(b);
        assert!(lru.access(a));
        lru.access(c);
        assert!(lru.access(a), "LRU keeps the refreshed line");

        let mut fifo = CacheSim::new(&lvl).with_policy(ReplacementPolicy::Fifo);
        fifo.access(a);
        fifo.access(b);
        assert!(fifo.access(a));
        fifo.access(c);
        assert!(!fifo.access(a), "FIFO evicts the oldest insertion");
    }

    #[test]
    fn lru_beats_fifo_and_random_on_reuse_heavy_streams() {
        // A blocked-reuse stream (tile revisits) is exactly where LRU
        // earns its keep.
        let lvl = CacheLevel::private(32, 8, 64);
        let mut stream = Vec::new();
        for tile in 0..64u64 {
            let base = tile * 16 * 1024;
            for _ in 0..4 {
                for off in (0..16 * 1024).step_by(64) {
                    stream.push(base + off);
                }
            }
        }
        let ratio = |policy| {
            let mut c = CacheSim::new(&lvl).with_policy(policy);
            for &a in &stream {
                c.access(a);
            }
            c.hit_ratio()
        };
        let lru = ratio(ReplacementPolicy::Lru);
        let fifo = ratio(ReplacementPolicy::Fifo);
        let random = ratio(ReplacementPolicy::Random);
        assert!(lru >= fifo, "LRU {lru:.3} < FIFO {fifo:.3}");
        assert!(lru >= random, "LRU {lru:.3} < Random {random:.3}");
        assert!(lru > 0.7, "blocked stream should mostly hit: {lru:.3}");
    }

    #[test]
    fn random_policy_is_deterministic() {
        let lvl = CacheLevel::private(4, 2, 64);
        let addrs: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % (1 << 20)).collect();
        let run = || {
            let mut c = CacheSim::new(&lvl).with_policy(ReplacementPolicy::Random);
            for &a in &addrs {
                c.access(a);
            }
            (c.hits(), c.misses())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hierarchy_ratios_sum_sane() {
        let spec = presets::opteron_8347();
        let mut h = CacheHierarchy::for_server(&spec);
        let addrs: Vec<u64> = (0..20_000u64).map(|i| (i * 6151) % (8 << 20)).collect();
        let (l2, l3, mem) = h.profile_stream(addrs);
        assert!(l2 >= 0.0 && l3 >= 0.0 && mem >= 0.0);
        assert!(l2 + l3 + mem <= 1.0 + 1e-12);
    }
}
