//! Performance Monitoring Unit counter synthesis.
//!
//! The paper's regression model (§VI) uses six indicators sampled from the
//! PMU at 10-second intervals:
//!
//! * X1 `WorkingCoreNum`
//! * X2 `InstructionNum`
//! * X3 `L2CacheHit`
//! * X4 `L3CacheHit`
//! * X5 `MemoryReadTimes`
//! * X6 `MemoryWriteTimes`
//!
//! [`PmuRates::synthesize`] derives steady-state counter *rates* from a
//! workload signature and its roofline execution estimate; sampling those
//! rates over an interval gives the [`PmuCounters`] the regression
//! consumes. The locality split is the signature's closed-form profile —
//! validated against the [`crate::cache`] simulator in the kernels crate.

use serde::{Deserialize, Serialize};

use crate::roofline::ExecEstimate;
use crate::spec::ServerSpec;
use crate::workload::WorkloadSignature;

/// Counter totals over one sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PmuCounters {
    /// X1: number of cores executing work during the interval.
    pub working_cores: f64,
    /// X2: retired instructions.
    pub instructions: f64,
    /// X3: loads/stores served by L2.
    pub l2_hits: f64,
    /// X4: loads/stores served by L3.
    pub l3_hits: f64,
    /// X5: DRAM read transactions.
    pub mem_reads: f64,
    /// X6: DRAM write transactions.
    pub mem_writes: f64,
}

impl PmuCounters {
    /// The regressor vector `[X1..X6]` in the paper's order.
    pub fn as_features(&self) -> [f64; 6] {
        [
            self.working_cores,
            self.instructions,
            self.l2_hits,
            self.l3_hits,
            self.mem_reads,
            self.mem_writes,
        ]
    }

    /// Human-readable names matching the paper's §VI-A2 list.
    pub const FEATURE_NAMES: [&'static str; 6] = [
        "WorkingCoreNum",
        "InstructionNum",
        "L2CacheHit",
        "L3CacheHit",
        "MemoryReadTimes",
        "MemoryWriteTimes",
    ];
}

/// Steady-state counter rates (per second) for a running workload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PmuRates {
    /// Cores doing work.
    pub working_cores: f64,
    /// Instructions per second (whole machine).
    pub instructions_per_s: f64,
    /// L2 hits per second.
    pub l2_hits_per_s: f64,
    /// L3 hits per second.
    pub l3_hits_per_s: f64,
    /// DRAM reads per second.
    pub mem_reads_per_s: f64,
    /// DRAM writes per second.
    pub mem_writes_per_s: f64,
}

impl PmuRates {
    /// Derive machine-wide counter rates for `sig` running with
    /// `plan.processes` processes as estimated by `est` on `spec`.
    pub fn synthesize(spec: &ServerSpec, sig: &WorkloadSignature, est: &ExecEstimate) -> Self {
        let p = f64::from(est.plan.processes);
        if p == 0.0 || est.time_s <= 0.0 {
            return Self::default();
        }
        let ops_per_s = sig.work_ops / est.time_s;
        let loc = sig.locality;
        let instr = ops_per_s * loc.instr_per_op;
        let accesses = instr * loc.accesses_per_instr;
        // On machines without an L3 the L3 share is counted as L2-miss
        // traffic, exactly as the PMU would report it.
        let l3_share = if spec.l3.is_some() { loc.l3_hit } else { 0.0 };
        // DRAM transactions come from the roofline's traffic estimate —
        // the uncore IMC counters measure actual line transfers, which
        // is also the quantity that burns memory power.
        let line = f64::from(spec.l1d.line_bytes);
        let mem_accesses = est.mem_traffic_gbs * 1e9 / line;
        Self {
            working_cores: p,
            instructions_per_s: instr,
            l2_hits_per_s: accesses * loc.l2_hit,
            l3_hits_per_s: accesses * l3_share,
            mem_reads_per_s: mem_accesses * (1.0 - loc.write_fraction),
            mem_writes_per_s: mem_accesses * loc.write_fraction,
        }
    }

    /// Integrate the rates over `dt` seconds into counter totals.
    pub fn sample(&self, dt: f64) -> PmuCounters {
        PmuCounters {
            working_cores: self.working_cores,
            instructions: self.instructions_per_s * dt,
            l2_hits: self.l2_hits_per_s * dt,
            l3_hits: self.l3_hits_per_s * dt,
            mem_reads: self.mem_reads_per_s * dt,
            mem_writes: self.mem_writes_per_s * dt,
        }
    }

    /// DRAM traffic implied by the counters, in GB/s, assuming one
    /// transaction touches one cache line.
    pub fn implied_traffic_gbs(&self, line_bytes: u32) -> f64 {
        (self.mem_reads_per_s + self.mem_writes_per_s) * f64::from(line_bytes) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::roofline::PerfModel;
    use crate::workload::{ComputeKind, LocalityProfile};

    fn toy_sig(loc: LocalityProfile) -> WorkloadSignature {
        WorkloadSignature {
            name: "toy".to_string(),
            reported_flops: 1e12,
            work_ops: 1e12,
            dram_bytes: 1e10,
            footprint_bytes: 1e9,
            footprint_per_proc_bytes: 0.0,
            footprint_scratch_bytes: 0.0,
            comm_fraction: 0.0,
            cpu_intensity: 0.8,
            kind: ComputeKind::Vector,
            locality: loc,
        }
    }

    #[test]
    fn idle_yields_zero_rates() {
        let spec = presets::xeon_e5462();
        let m = PerfModel::new(spec.clone());
        let sig = WorkloadSignature::idle();
        let est = m.execute(&sig, 0);
        let r = PmuRates::synthesize(&spec, &sig, &est);
        assert_eq!(r, PmuRates::default());
    }

    #[test]
    fn l3_counter_absent_on_l3less_machine() {
        let e5462 = presets::xeon_e5462(); // no L3
        let x4870 = presets::xeon_4870(); // has L3
        let sig = toy_sig(LocalityProfile::streaming());
        let est_e = PerfModel::new(e5462.clone()).execute(&sig, 4);
        let est_x = PerfModel::new(x4870.clone()).execute(&sig, 4);
        let r_e = PmuRates::synthesize(&e5462, &sig, &est_e);
        let r_x = PmuRates::synthesize(&x4870, &sig, &est_x);
        assert_eq!(r_e.l3_hits_per_s, 0.0);
        assert!(r_x.l3_hits_per_s > 0.0);
        // Both still report DRAM transactions (from the traffic model).
        assert!(r_e.mem_reads_per_s > 0.0);
        assert!(r_x.mem_reads_per_s > 0.0);
    }

    #[test]
    fn memory_counters_track_roofline_traffic() {
        // The IMC counters must agree with the traffic estimate that
        // drives memory power — the consistency the regression needs.
        let spec = presets::xeon_4870();
        let sig = toy_sig(LocalityProfile::streaming());
        let est = PerfModel::new(spec.clone()).execute(&sig, 8);
        let r = PmuRates::synthesize(&spec, &sig, &est);
        let implied = r.implied_traffic_gbs(spec.l1d.line_bytes);
        assert!((implied - est.mem_traffic_gbs).abs() < 1e-6 * est.mem_traffic_gbs.max(1.0));
    }

    #[test]
    fn sampling_integrates_linearly() {
        let spec = presets::xeon_4870();
        let sig = toy_sig(LocalityProfile::dense_blocked());
        let est = PerfModel::new(spec.clone()).execute(&sig, 8);
        let r = PmuRates::synthesize(&spec, &sig, &est);
        let c1 = r.sample(10.0);
        let c2 = r.sample(20.0);
        assert!((c2.instructions - 2.0 * c1.instructions).abs() < 1e-3 * c2.instructions);
        assert_eq!(c1.working_cores, 8.0);
    }

    #[test]
    fn traffic_heavy_workload_generates_more_memory_transactions() {
        let spec = presets::xeon_4870();
        let m = PerfModel::new(spec.clone());
        let blocked = toy_sig(LocalityProfile::dense_blocked());
        let mut streamy = toy_sig(LocalityProfile::random_access());
        streamy.dram_bytes = blocked.dram_bytes * 50.0;
        let rb = PmuRates::synthesize(&spec, &blocked, &m.execute(&blocked, 4));
        let rr = PmuRates::synthesize(&spec, &streamy, &m.execute(&streamy, 4));
        let rate_b = rb.mem_reads_per_s + rb.mem_writes_per_s;
        let rate_r = rr.mem_reads_per_s + rr.mem_writes_per_s;
        assert!(rate_r > 5.0 * rate_b, "{rate_r} vs {rate_b}");
    }

    #[test]
    fn features_order_matches_paper() {
        let c = PmuCounters {
            working_cores: 1.0,
            instructions: 2.0,
            l2_hits: 3.0,
            l3_hits: 4.0,
            mem_reads: 5.0,
            mem_writes: 6.0,
        };
        assert_eq!(c.as_features(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(PmuCounters::FEATURE_NAMES[0], "WorkingCoreNum");
    }

    #[test]
    fn implied_traffic_is_positive_for_streaming() {
        let spec = presets::opteron_8347();
        let sig = toy_sig(LocalityProfile::streaming());
        let est = PerfModel::new(spec.clone()).execute(&sig, 16);
        let r = PmuRates::synthesize(&spec, &sig, &est);
        assert!(r.implied_traffic_gbs(64) > 0.0);
    }
}
