//! Machine descriptions: processors, cache geometry and the memory system.
//!
//! A [`ServerSpec`] encodes everything Table I of the paper records about a
//! server, plus a small set of calibration knobs (sustained efficiency,
//! parallel-scaling decay, scalar IPC) that the performance model in
//! [`crate::roofline`] needs in order to reproduce the measured GFLOPS of
//! the three machines.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
///
/// `shared_by_cores` is the number of cores that share one instance of the
/// cache (1 = private). The Xeon E5462's L2, for example, is two 6 MiB
/// caches each shared by two cores (`shared_by_cores = 2`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Capacity of one cache instance in KiB.
    pub size_kib: u32,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Number of cores sharing one instance.
    pub shared_by_cores: u32,
}

impl CacheLevel {
    /// A private per-core cache.
    pub const fn private(size_kib: u32, ways: u32, line_bytes: u32) -> Self {
        Self { size_kib, ways, line_bytes, shared_by_cores: 1 }
    }

    /// A cache shared by `cores` cores.
    pub const fn shared(size_kib: u32, ways: u32, line_bytes: u32, cores: u32) -> Self {
        Self { size_kib, ways, line_bytes, shared_by_cores: cores }
    }

    /// Number of sets (capacity / (ways × line size)).
    pub fn sets(&self) -> u32 {
        (self.size_kib * 1024) / (self.ways * self.line_bytes)
    }

    /// Capacity in bytes of one instance.
    pub fn size_bytes(&self) -> u64 {
        u64::from(self.size_kib) * 1024
    }

    /// Bytes of this level effectively available to a single core: the
    /// instance capacity divided by the cores sharing it. The DGEMM
    /// tile autotuner sizes its per-core working sets against this.
    pub fn bytes_per_core(&self) -> u64 {
        self.size_bytes() / u64::from(self.shared_by_cores.max(1))
    }
}

/// DRAM generation of the server's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryKind {
    /// DDR2 SDRAM (all three paper servers use DDR2).
    Ddr2,
    /// DDR3 SDRAM.
    Ddr3,
    /// DDR4 SDRAM.
    Ddr4,
}

/// One DVFS operating point: a core frequency and its supply voltage.
///
/// Dynamic CMOS power scales as `f·V²`, so each state's contribution to
/// the power model is the ratio `(f/f_nom)·(V/V_nom)²` against the
/// nominal state (see `hpceval-power`'s calibration scaling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsState {
    /// Core clock of this P-state in MHz.
    pub freq_mhz: u32,
    /// Supply voltage of this P-state in volts.
    pub volts: f64,
}

/// The discrete DVFS ladder of a server: frequency states in ascending
/// clock order with a per-state voltage table.
///
/// `nominal` indexes the state the paper measured at; it always equals
/// the spec's `freq_mhz`, so every existing experiment runs at the
/// nominal state and is bitwise-unchanged by the ladder's presence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsCurve {
    /// P-states in strictly ascending frequency (voltage non-decreasing).
    pub states: Vec<DvfsState>,
    /// Index of the nominal (paper-measured) state in `states`.
    pub nominal: usize,
}

impl DvfsCurve {
    /// A one-state ladder pinned at `freq_mhz` — the curve of a custom
    /// spec that never specified DVFS data.
    pub fn single(freq_mhz: u32) -> Self {
        Self { states: vec![DvfsState { freq_mhz, volts: 1.0 }], nominal: 0 }
    }

    /// Number of P-states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the ladder is empty (a constructed-by-hand degenerate
    /// curve; `single` and the presets never produce this).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The nominal state.
    pub fn nominal_state(&self) -> DvfsState {
        self.states[self.nominal]
    }

    /// Index of the state clocked exactly at `freq_mhz`, if any.
    pub fn state_of(&self, freq_mhz: u32) -> Option<usize> {
        self.states.iter().position(|s| s.freq_mhz == freq_mhz)
    }

    /// Dynamic-power ratio of state `idx` against the nominal state:
    /// `(f/f_nom)·(V/V_nom)²`. Exactly 1.0 at the nominal index.
    pub fn power_ratio(&self, idx: usize) -> f64 {
        if idx == self.nominal {
            return 1.0;
        }
        let s = self.states[idx];
        let nom = self.nominal_state();
        (f64::from(s.freq_mhz) / f64::from(nom.freq_mhz)) * (s.volts / nom.volts).powi(2)
    }
}

/// Full description of a single multi-core HPC server.
///
/// The first block of fields mirrors Table I of the paper; the
/// `sustained_*` block holds microarchitectural calibration constants used
/// by the roofline model (documented in DESIGN.md §2: these are fit so the
/// model reproduces the paper's measured HPL and EP performance anchors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Marketing name used throughout the paper, e.g. "Xeon-E5462".
    pub name: String,
    /// Processor model string, e.g. "Xeon E5462".
    pub processor: String,
    /// Number of processor chips (sockets).
    pub chips: u32,
    /// Physical cores per chip.
    pub cores_per_chip: u32,
    /// Hardware threads per core (all paper machines: 1 or 2).
    pub threads_per_core: u32,
    /// Core clock in MHz.
    pub freq_mhz: u32,
    /// Peak double-precision floating point operations per cycle per core.
    pub flops_per_cycle: u32,
    /// L1 instruction cache (per core).
    pub l1i: CacheLevel,
    /// L1 data cache (per core).
    pub l1d: CacheLevel,
    /// L2 cache.
    pub l2: CacheLevel,
    /// L3 cache, if present.
    pub l3: Option<CacheLevel>,
    /// Installed memory in GiB.
    pub memory_gib: u32,
    /// DRAM generation.
    pub memory_kind: MemoryKind,
    /// Aggregate peak DRAM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Per-core achievable DRAM bandwidth cap in GB/s.
    pub per_core_bw_gbs: f64,
    /// Network interface speed in Mbit/s.
    pub net_mbps: u32,
    /// Disk capacity in GB.
    pub disk_gb: u32,
    /// Number of power supplies.
    pub power_supplies: u32,
    /// Rated capacity of one power supply in watts (used by Table II's
    /// normalization; the paper lists the rating as "Unknown", we use the
    /// chassis class rating).
    pub psu_rating_w: f64,

    /// Fraction of peak FLOPS sustained by well-blocked dense vector code
    /// on one core (HPL/DGEMM class). Xeon-E5462 ≈ 0.95, Opteron-8347 ≈
    /// 0.52 (the paper's HPL reaches only 27 % of peak at 16 cores).
    pub sustained_vector_eff: f64,
    /// Parallel-efficiency decay exponent: efficiency(p) =
    /// `sustained_vector_eff` × p^(−`parallel_alpha`).
    pub parallel_alpha: f64,
    /// Sustained scalar instructions per cycle for irregular, latency-bound
    /// code (EP/RandomAccess class), as a fraction of one op/cycle.
    pub scalar_ipc: f64,

    /// Discrete DVFS ladder. `freq_mhz` must equal one of its states —
    /// the nominal one for the as-measured machine; `at_dvfs_state`
    /// derives the downclocked variants.
    pub dvfs: DvfsCurve,
}

impl ServerSpec {
    /// Total physical cores in the machine.
    pub fn total_cores(&self) -> u32 {
        self.chips * self.cores_per_chip
    }

    /// Total hardware threads in the machine.
    pub fn total_threads(&self) -> u32 {
        self.total_cores() * self.threads_per_core
    }

    /// Clock frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        f64::from(self.freq_mhz) / 1000.0
    }

    /// Theoretical peak performance of one core in GFLOPS.
    pub fn peak_core_gflops(&self) -> f64 {
        self.freq_ghz() * f64::from(self.flops_per_cycle)
    }

    /// Theoretical peak performance of the whole server in GFLOPS
    /// (the paper: 44.8, 121.6 and 384 GFLOPS for the three machines).
    pub fn peak_gflops(&self) -> f64 {
        self.peak_core_gflops() * f64::from(self.total_cores())
    }

    /// Installed memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        u64::from(self.memory_gib) * (1 << 30)
    }

    /// Sustained scalar op throughput of one core in Gop/s.
    pub fn scalar_gops(&self) -> f64 {
        self.freq_ghz() * self.scalar_ipc
    }

    /// Vector (dense floating point) efficiency when `p` cores participate:
    /// `sustained_vector_eff × p^(−parallel_alpha)`, clamped to (0, 1].
    pub fn vector_eff(&self, p: u32) -> f64 {
        let p = p.max(1) as f64;
        (self.sustained_vector_eff * p.powf(-self.parallel_alpha)).clamp(1e-6, 1.0)
    }

    /// Aggregate DRAM bandwidth achievable by `p` cores in GB/s: the
    /// machine-wide peak, capped by the per-core limit.
    pub fn bw_at(&self, p: u32) -> f64 {
        (self.per_core_bw_gbs * f64::from(p.max(1))).min(self.mem_bw_gbs)
    }

    /// Normalization constant for Table II style "dimensionless power":
    /// the aggregate PSU rating.
    pub fn psu_total_w(&self) -> f64 {
        self.psu_rating_w * f64::from(self.power_supplies)
    }

    /// The spec re-clocked to DVFS state `idx` (`None` if out of range).
    ///
    /// Only `freq_mhz` changes — the roofline compute ceiling follows
    /// the clock through `peak_core_gflops`/`scalar_gops`, while memory
    /// bandwidth is DVFS-invariant (DRAM and uncore keep their clocks).
    /// At the nominal index this is an exact clone, so the derived spec
    /// is bitwise-indistinguishable from the original.
    pub fn at_dvfs_state(&self, idx: usize) -> Option<ServerSpec> {
        let state = *self.dvfs.states.get(idx)?;
        let mut spec = self.clone();
        spec.freq_mhz = state.freq_mhz;
        Some(spec)
    }

    /// The DVFS state the spec currently runs at, by exact frequency
    /// match (`None` for a hand-built spec whose clock is off-ladder).
    pub fn dvfs_state_index(&self) -> Option<usize> {
        self.dvfs.state_of(self.freq_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn cache_level_sets() {
        // 32 KiB, 8-way, 64 B lines -> 64 sets.
        let l1 = CacheLevel::private(32, 8, 64);
        assert_eq!(l1.sets(), 64);
        assert_eq!(l1.size_bytes(), 32 * 1024);
    }

    #[test]
    fn peak_gflops_match_paper_table1() {
        // Paper §II: 44.8, 121.6, 384 GFLOPS theoretical peaks.
        assert!((presets::xeon_e5462().peak_gflops() - 44.8).abs() < 1e-9);
        assert!((presets::opteron_8347().peak_gflops() - 121.6).abs() < 1e-9);
        assert!((presets::xeon_4870().peak_gflops() - 384.0).abs() < 1e-9);
    }

    #[test]
    fn per_core_peaks_match_paper() {
        // Paper §II: 11.2, 7.6, 9.6 GFLOPS per core.
        assert!((presets::xeon_e5462().peak_core_gflops() - 11.2).abs() < 1e-9);
        assert!((presets::opteron_8347().peak_core_gflops() - 7.6).abs() < 1e-9);
        assert!((presets::xeon_4870().peak_core_gflops() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn vector_eff_monotone_nonincreasing_in_p() {
        let s = presets::opteron_8347();
        let mut last = f64::INFINITY;
        for p in 1..=s.total_cores() {
            let e = s.vector_eff(p);
            assert!(e <= last + 1e-12, "efficiency must not grow with p");
            assert!(e > 0.0 && e <= 1.0);
            last = e;
        }
    }

    #[test]
    fn bandwidth_saturates() {
        let s = presets::xeon_e5462();
        assert!(s.bw_at(1) <= s.mem_bw_gbs);
        assert!((s.bw_at(64) - s.mem_bw_gbs).abs() < 1e-12);
        assert!(s.bw_at(2) >= s.bw_at(1));
    }

    #[test]
    fn core_counts_match_table1() {
        assert_eq!(presets::xeon_e5462().total_cores(), 4);
        assert_eq!(presets::opteron_8347().total_cores(), 16);
        assert_eq!(presets::xeon_4870().total_cores(), 40);
    }

    #[test]
    fn preset_dvfs_ladders_are_well_formed() {
        for s in presets::all_servers() {
            assert!(s.dvfs.len() >= 3, "{}: needs ≥3 P-states", s.name);
            assert_eq!(s.dvfs.nominal_state().freq_mhz, s.freq_mhz, "{}", s.name);
            assert_eq!(s.dvfs.nominal, s.dvfs.len() - 1, "{}: nominal is the top state", s.name);
            for w in s.dvfs.states.windows(2) {
                assert!(w[0].freq_mhz < w[1].freq_mhz, "{}: ascending clocks", s.name);
                assert!(w[0].volts <= w[1].volts, "{}: non-decreasing voltage", s.name);
            }
        }
    }

    #[test]
    fn power_ratio_is_exactly_one_at_nominal_and_monotone_below() {
        for s in presets::all_servers() {
            assert_eq!(s.dvfs.power_ratio(s.dvfs.nominal), 1.0, "{}", s.name);
            let ratios: Vec<f64> = (0..s.dvfs.len()).map(|i| s.dvfs.power_ratio(i)).collect();
            for w in ratios.windows(2) {
                assert!(w[0] < w[1], "{}: f·V² must grow with the clock", s.name);
            }
        }
    }

    #[test]
    fn at_dvfs_state_scales_the_roofline_but_not_the_memory() {
        let s = presets::xeon_4870();
        let lowest = s.at_dvfs_state(0).unwrap();
        assert!(lowest.peak_gflops() < s.peak_gflops());
        assert!(lowest.scalar_gops() < s.scalar_gops());
        assert_eq!(lowest.mem_bw_gbs, s.mem_bw_gbs);
        assert_eq!(lowest.per_core_bw_gbs, s.per_core_bw_gbs);
        assert_eq!(lowest.memory_bytes(), s.memory_bytes());
        assert!(s.at_dvfs_state(s.dvfs.len()).is_none());
    }

    #[test]
    fn nominal_dvfs_state_is_an_exact_clone() {
        for s in presets::all_servers() {
            let nominal = s.at_dvfs_state(s.dvfs.nominal).unwrap();
            assert_eq!(nominal, s, "{}: nominal re-clock must be bitwise-identical", s.name);
            assert_eq!(s.dvfs_state_index(), Some(s.dvfs.nominal));
        }
    }

    #[test]
    fn single_state_curve_covers_custom_specs() {
        let c = DvfsCurve::single(2600);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.state_of(2600), Some(0));
        assert_eq!(c.state_of(2000), None);
        assert_eq!(c.power_ratio(0), 1.0);
    }
}
